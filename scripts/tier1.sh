#!/usr/bin/env bash
# Tier-1 verification gate: the exact build + test sequence CI runs.
#
# The workspace is hermetic — no registry access is needed, so everything
# runs with --offline to catch any accidentally reintroduced dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
