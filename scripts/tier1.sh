#!/usr/bin/env bash
# Tier-1 verification gate: the exact build + test sequence CI runs.
#
# The workspace is hermetic — no registry access is needed, so everything
# runs with --offline to catch any accidentally reintroduced dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline

# Lint gate: the workspace is kept clippy-clean, warnings are errors.
# Fail fast with a clear message when the clippy component is missing —
# otherwise cargo emits a confusing "no such command" late in the run.
if ! cargo clippy --version >/dev/null 2>&1; then
  echo "error: 'cargo clippy' is not available in this toolchain." >&2
  echo "Install it with: rustup component add clippy" >&2
  exit 1
fi
cargo clippy --workspace --all-targets --offline -- -D warnings

# Kernel determinism gate: the oracle-differential suite sweeps every
# dispatch tier (MSD_KERNEL_FORCE) x thread count against the naive
# reference oracles; the golden-loss digests pin end-to-end training
# numerics bit-for-bit. Neither may ever be filtered out.
cargo test -p msd-tensor --test kernels_differential -q --offline
cargo test -p msd-harness --test golden_losses -q --offline

# Run the failure-injection suite explicitly: it is the gate on the
# training runtime's divergence-recovery guarantees (NaN-safe optimiser,
# rollback/backoff, honest reporting) and must never be filtered out.
cargo test -p msd-harness --test failure_injection -q --offline

# Crash-safety gate: checkpoint/resume bit-identity and the corrupt-file
# corpus (torn writes, bit flips, stale magic) must never be filtered out.
cargo test -p msd-harness --test checkpoint_resume -q --offline

# Telemetry smoke: a seconds-long training run with an injected NaN batch;
# asserts the recovery path end-to-end and leaves a JSONL event log (CI
# uploads it as an artifact). Override the path with MSD_TELEMETRY_OUT.
TELEMETRY_OUT="${MSD_TELEMETRY_OUT:-target/telemetry-smoke.jsonl}"
rm -f "$TELEMETRY_OUT"
cargo run --release --offline -p msd-harness --bin msd-experiment -- \
  smoke --telemetry "$TELEMETRY_OUT"
test -s "$TELEMETRY_OUT" || { echo "telemetry smoke wrote no events" >&2; exit 1; }
grep -q '"event":"rollback"' "$TELEMETRY_OUT" || {
  echo "telemetry smoke recorded no recovery" >&2; exit 1;
}
# The JSONL log must read crash-tolerantly: only count *complete* lines
# (a killed run may leave one torn final line, which readers must skip).
COMPLETE_EVENTS=$(grep -c '^{.*}$' "$TELEMETRY_OUT" || true)
[ "$COMPLETE_EVENTS" -gt 0 ] || { echo "no complete telemetry events" >&2; exit 1; }
echo "telemetry smoke OK: $COMPLETE_EVENTS events in $TELEMETRY_OUT"

# Kill-and-resume smoke: run a seeded deterministic training job, kill it
# mid-epoch via fault injection, resume from the durable checkpoint, and
# require the final parameters to be byte-identical to an uninterrupted
# run of the same seed.
CKPT_DIR=target/ckpt-smoke
REF_PARAMS=target/ckpt-smoke-ref.params
RES_PARAMS=target/ckpt-smoke-resumed.params
rm -rf "$CKPT_DIR" "$REF_PARAMS" "$RES_PARAMS"
cargo run --release --offline -p msd-harness --bin msd-experiment -- \
  ckpt-smoke --save-params "$REF_PARAMS"
cargo run --release --offline -p msd-harness --bin msd-experiment -- \
  ckpt-smoke --checkpoint-dir "$CKPT_DIR" --checkpoint-every 2 --kill-after 5
MSD_KILL_AFTER= cargo run --release --offline -p msd-harness --bin msd-experiment -- \
  ckpt-smoke --checkpoint-dir "$CKPT_DIR" --resume --save-params "$RES_PARAMS" \
  | tee target/ckpt-smoke-resume.out
grep -q 'resumed=true' target/ckpt-smoke-resume.out || {
  echo "resume run did not actually resume from a checkpoint" >&2; exit 1;
}
cmp "$REF_PARAMS" "$RES_PARAMS" || {
  echo "kill-and-resume run is not bit-identical to the uninterrupted run" >&2; exit 1;
}
echo "kill-and-resume smoke OK: resumed run bit-identical"

# Serving gate: the in-process 1000-request smoke (zero lost, zero
# corrupted, every response bit-identical to sequential predict) and the
# batch-composition property test across MSD_NUM_THREADS settings. These
# are the serving runtime's contract and must never be filtered out.
cargo test -p msd-serve -q --offline
cargo test -p msd-harness --test predict_batch_bitident -q --offline

# Compiled-plan gate: every zoo model's AOT plan must stay bit-identical to
# per-sample predict across batch compositions, MSD_NUM_THREADS settings,
# and kernel dispatch tiers — serving runs plans by default, so this is the
# contract that makes that default safe. Also re-run the plan suite with
# kernels pinned to the scalar tier: plan execution re-reads
# MSD_KERNEL_FORCE per dispatch exactly like the tape, and a regression
# there would only show up under the pin.
cargo test -p msd-harness --test plan_bitident -q --offline
MSD_KERNEL_FORCE=scalar cargo test -p msd-harness --test plan_bitident -q --offline

# Quantization gate: the error-budget suite (every zoo model at f16/int8
# must hold the declared mse/smape/label-agreement budgets against the f32
# reference) and the int8-lowering bit-identity sweep (lowered plans are
# bit-identical across kernel tiers, thread counts, and batch
# compositions). Both re-run with kernels pinned to the scalar tier, since
# the int8 row kernels dispatch per call exactly like the f32 ones.
cargo test -p msd-harness --test quant_budget -q --offline
cargo test -p msd-harness --test plan_int8 -q --offline
MSD_KERNEL_FORCE=scalar cargo test -p msd-harness --test quant_budget -q --offline
MSD_KERNEL_FORCE=scalar cargo test -p msd-harness --test plan_int8 -q --offline

# Quant bench: artifact bytes per model and per-sample serve latency per
# precision tier, every served response byte-compared against the tier's
# sequential reference first. Enforces the compression floors (f16 >= 1.9x,
# int8 >= 3.5x smaller than f32). Appends JSONL to target/BENCH_quant.json
# (CI artifact); the floors are size ratios, not timings, so no retry.
rm -f target/BENCH_quant.json
cargo run --release --offline -p msd-harness --bin msd-quant-bench -- \
  --requests 64 --out target/BENCH_quant.json
test -s target/BENCH_quant.json || { echo "quant bench wrote no report" >&2; exit 1; }
grep -q '"int8_ratio"' target/BENCH_quant.json || {
  echo "quant report missing compression ratios" >&2; exit 1;
}
echo "quant bench OK: report in target/BENCH_quant.json"

# Serving benchmark: open-loop load through msd-serve, every response
# byte-compared against sequential predict, report appended as JSONL (CI
# uploads it as an artifact). The speedup floor here is modest because CI
# runners may expose a single core, where only the batching win is
# available; on >=4 cores the same configuration clears 3x. A throughput
# floor is inherently sensitive to transient machine load, so one failure
# earns a single retry; failing twice fails the gate.
serve_bench() {
  rm -f target/BENCH_serve.json
  cargo run --release --offline -p msd-harness --bin msd-serve-bench -- \
    --requests 256 --min-speedup 1.1 --out target/BENCH_serve.json
}
serve_bench || {
  echo "serve bench below speedup floor; retrying once on a quieter machine" >&2
  serve_bench
}
test -s target/BENCH_serve.json || { echo "serve bench wrote no report" >&2; exit 1; }
grep -q '"p99_us"' target/BENCH_serve.json || {
  echo "serve report missing latency percentiles" >&2; exit 1;
}
echo "serve smoke OK: report in target/BENCH_serve.json"

# Kernel throughput bench: SIMD dispatch kernels vs their naive oracles
# (byte-compared before timing), plus epoch time and serve-path latency.
# The bench itself enforces the single-core-safe >=1.1x floor on the fused
# LayerNorm/GELU kernels; on >=4 cores the same kernels clear 2x. Like the
# serve bench, a throughput floor is load-sensitive, so one failure earns a
# single retry. Appends JSONL to target/BENCH_kernels.json (CI artifact).
kernel_bench() {
  rm -f target/BENCH_kernels.json
  cargo bench --offline -p msd-bench --bench extra_kernel_throughput
}
kernel_bench || {
  echo "kernel bench below speedup floor; retrying once on a quieter machine" >&2
  kernel_bench
}
test -s target/BENCH_kernels.json || { echo "kernel bench wrote no report" >&2; exit 1; }
grep -q '"kind":"epoch"' target/BENCH_kernels.json || {
  echo "kernel report missing epoch timing" >&2; exit 1;
}
echo "kernel bench OK: report in target/BENCH_kernels.json"

# Plan latency bench: plan-vs-tape single-sample latency per zoo model,
# byte-compared before timing. The bench enforces a 1.1x geometric-mean
# floor (and plans-never-slower per model) — the margin serving's
# plans-by-default decision is predicated on. Load-sensitive like the other
# throughput floors, so one failure earns a single retry. Appends JSONL
# rows to target/BENCH_kernels.json (CI artifact).
plan_bench() {
  cargo bench --offline -p msd-bench --bench extra_plan_latency
}
plan_bench || {
  echo "plan bench below speedup floor; retrying once on a quieter machine" >&2
  plan_bench
}
grep -q '"kind":"plan_latency"' target/BENCH_kernels.json || {
  echo "kernel report missing plan latency rows" >&2; exit 1;
}
echo "plan bench OK: rows in target/BENCH_kernels.json"

# Gateway smoke: a real msd-gateway process on an ephemeral port serving the
# two-model demo fleet, then 500 mixed requests over 4 TCP connections at a
# sustained paced rate with a hot-swap landing mid-run, followed by a second
# sweep at double the rate. The load generator rebuilds the demo models in
# its own process and byte-compares every response against sequential
# predict for the version each response's header names; it exits non-zero on
# any lost request, any byte mismatch, or any status outside {200, 429}.
# Appends RPS-vs-latency rows to target/BENCH_gateway.json (CI artifact).
rm -f target/gw.addr target/BENCH_gateway.json
cargo run --release --offline -p msd-harness --bin msd-gateway -- \
  --demo --addr-file target/gw.addr --replicas 2 --run-secs 120 &
GW_PID=$!
trap 'kill "$GW_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 200); do [ -f target/gw.addr ] && break; sleep 0.1; done
test -f target/gw.addr || { echo "gateway never published its address" >&2; exit 1; }
cargo run --release --offline -p msd-harness --bin msd-gateway-loadgen -- \
  --target "$(cat target/gw.addr)" --requests 500 --connections 4 \
  --rates 800,1600 --swap-after-ms 150
kill "$GW_PID" 2>/dev/null || true
wait "$GW_PID" 2>/dev/null || true
trap - EXIT
test -s target/BENCH_gateway.json || { echo "gateway smoke wrote no report" >&2; exit 1; }
if grep -qE '"lost":[1-9]' target/BENCH_gateway.json; then
  echo "gateway smoke lost requests" >&2; exit 1
fi
echo "gateway smoke OK: report in target/BENCH_gateway.json"

# Quantized-tier gateway smoke: the same real-process drill with the demo
# fleet published from int8 artifacts. The load generator requires every
# 200 to carry X-Msd-Tier: int8 (a silent fall back to f32 is as fatal as
# wrong bytes) and byte-compares each response against the int8 lowered-plan
# reference it computes in its own process; the mid-run hot-swap posts a v2
# int8 artifact with the tier declared in the request header.
rm -f target/gw-int8.addr
cargo run --release --offline -p msd-harness --bin msd-gateway -- \
  --demo --tier int8 --addr-file target/gw-int8.addr --replicas 2 --run-secs 120 &
GW_PID=$!
trap 'kill "$GW_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 200); do [ -f target/gw-int8.addr ] && break; sleep 0.1; done
test -f target/gw-int8.addr || { echo "int8 gateway never published its address" >&2; exit 1; }
cargo run --release --offline -p msd-harness --bin msd-gateway-loadgen -- \
  --target "$(cat target/gw-int8.addr)" --requests 300 --connections 4 \
  --expect-tier int8 --swap-after-ms 150
kill "$GW_PID" 2>/dev/null || true
wait "$GW_PID" 2>/dev/null || true
trap - EXIT
echo "int8 gateway smoke OK: every response tier-tagged and byte-checked"

# Chaos smoke: the same real-gateway drill under a seeded deterministic
# fault plan (worker panics, worker stalls, connection drops). The load
# generator retries with a budget of 3, tags every request with a deadline,
# tolerates only the *typed* degradation statuses {429, 500, 503, 504},
# and closes by asserting every replica's request ledger balances
# (completed + failed + rejected + expired == submitted) via GET /stats.
# Lost requests, byte mismatches, or an untyped status remain fatal — the
# fault plan may cost latency and retries, never answers. Fired faults are
# appended to target/chaos-events.jsonl (CI artifact); rows written by this
# sweep carry the fault plan in their "fault_plan" column so a chaos run
# can never be compared against a clean baseline by accident.
rm -f target/gw-chaos.addr target/chaos-events.jsonl
MSD_CHAOS="seed:42,worker_panic:0.02,worker_stall:0.02,worker_stall_ms:40,conn_drop:0.02" \
MSD_CHAOS_LOG=target/chaos-events.jsonl \
cargo run --release --offline -p msd-harness --bin msd-gateway -- \
  --demo --addr-file target/gw-chaos.addr --replicas 2 --run-secs 120 &
GW_PID=$!
trap 'kill "$GW_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 200); do [ -f target/gw-chaos.addr ] && break; sleep 0.1; done
test -f target/gw-chaos.addr || { echo "chaos gateway never published its address" >&2; exit 1; }
MSD_CHAOS="seed:42,worker_panic:0.02,worker_stall:0.02,worker_stall_ms:40,conn_drop:0.02" \
cargo run --release --offline -p msd-harness --bin msd-gateway-loadgen -- \
  --target "$(cat target/gw-chaos.addr)" --requests 500 --connections 4 \
  --retry-budget 3 --deadline-ms 2000 --tolerate-faults --check-ledger
kill "$GW_PID" 2>/dev/null || true
wait "$GW_PID" 2>/dev/null || true
trap - EXIT
test -s target/chaos-events.jsonl || {
  echo "chaos smoke fired no faults (plan not armed?)" >&2; exit 1;
}
if grep -qE '"lost":[1-9]' target/BENCH_gateway.json; then
  echo "chaos smoke lost requests" >&2; exit 1
fi
echo "chaos smoke OK: fired $(grep -c '^{.*}$' target/chaos-events.jsonl) faults, zero lost"

# Streaming gate: the stream crate's suites (ring/Welford contracts, the
# in-process replay gate, warm-retrain bit-identity) run explicitly and
# must never be filtered out.
cargo test -p msd-stream -q --offline

# Streaming replay determinism across processes: the harness bin runs the
# seeded drift scenario twice — warmup, base train, online scoring, drift
# trigger, warm retrain, hot-swap — and the two runs' score and event logs
# must be byte-identical. The bin itself exits non-zero on zero drift
# events, a missing hot-swap, any lost request, or no point-adjusted F1
# improvement after adaptation, so this gate also covers the "zero dropped
# requests" and "adaptation helps" contracts.
rm -rf target/stream-run1 target/stream-run2
cargo run --release --offline -p msd-stream -- --out-dir target/stream-run1
cargo run --release --offline -p msd-stream -- --out-dir target/stream-run2
cmp target/stream-run1/scores.jsonl target/stream-run2/scores.jsonl || {
  echo "streaming score logs are not byte-identical between replays" >&2; exit 1;
}
cmp target/stream-run1/events.jsonl target/stream-run2/events.jsonl || {
  echo "streaming event logs are not byte-identical between replays" >&2; exit 1;
}
grep -q '"event":"drift"' target/stream-run1/events.jsonl || {
  echo "streaming event log recorded no drift" >&2; exit 1;
}
grep -q '"event":"swap"' target/stream-run1/events.jsonl || {
  echo "streaming event log recorded no swap" >&2; exit 1;
}
cp target/stream-run1/events.jsonl target/stream-events.jsonl
echo "streaming replay OK: logs byte-identical across runs"

# Stream throughput bench: samples/sec and windows/sec through the full
# ingestion -> standardization -> gateway-scored pipeline plus score-latency
# percentiles. Appends JSONL to target/BENCH_stream.json (CI artifact);
# pure reporting, no timing floor, so no retry.
rm -f target/BENCH_stream.json
cargo bench --offline -p msd-bench --bench extra_stream_throughput
test -s target/BENCH_stream.json || { echo "stream bench wrote no report" >&2; exit 1; }
grep -q '"windows_per_sec"' target/BENCH_stream.json || {
  echo "stream report missing throughput" >&2; exit 1;
}
echo "stream bench OK: report in target/BENCH_stream.json"
