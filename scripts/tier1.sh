#!/usr/bin/env bash
# Tier-1 verification gate: the exact build + test sequence CI runs.
#
# The workspace is hermetic — no registry access is needed, so everything
# runs with --offline to catch any accidentally reintroduced dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline

# Run the failure-injection suite explicitly: it is the gate on the
# training runtime's divergence-recovery guarantees (NaN-safe optimiser,
# rollback/backoff, honest reporting) and must never be filtered out.
cargo test -p msd-harness --test failure_injection -q --offline

# Telemetry smoke: a seconds-long training run with an injected NaN batch;
# asserts the recovery path end-to-end and leaves a JSONL event log (CI
# uploads it as an artifact). Override the path with MSD_TELEMETRY_OUT.
TELEMETRY_OUT="${MSD_TELEMETRY_OUT:-target/telemetry-smoke.jsonl}"
rm -f "$TELEMETRY_OUT"
cargo run --release --offline -p msd-harness --bin msd-experiment -- \
  smoke --telemetry "$TELEMETRY_OUT"
test -s "$TELEMETRY_OUT" || { echo "telemetry smoke wrote no events" >&2; exit 1; }
grep -q '"event":"rollback"' "$TELEMETRY_OUT" || {
  echo "telemetry smoke recorded no recovery" >&2; exit 1;
}
echo "telemetry smoke OK: $(wc -l < "$TELEMETRY_OUT") events in $TELEMETRY_OUT"
