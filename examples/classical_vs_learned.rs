//! Domain scenario: how far do classical statistical forecasters get
//! against the learned models on M4-style short-term forecasting? Runs
//! Naive / Naive2 / Holt–Winters / AR(p) / N-BEATS / MSD-Mixer on the
//! Hourly subset and reports SMAPE / MASE / OWA — the lineage from the
//! paper's related-work discussion (Sec. II) in one table.
//!
//! ```sh
//! cargo run --release -p msd-harness --example classical_vs_learned
//! ```

use msd_baselines::ar::ArModel;
use msd_baselines::ets::holt_winters_forecast;
use msd_baselines::naive::{naive2, naive_last};
use msd_harness::experiments::short_term::{run_single, score_forecasts};
use msd_harness::{ModelSpec, Scale};
use msd_mixer::variants::Variant;

fn main() {
    println!("== Classical vs learned forecasting (M4-like Hourly, horizon 48) ==\n");
    let spec = msd_data::m4_subsets()
        .into_iter()
        .find(|s| s.name == "Hourly")
        .expect("registry contains Hourly");
    let col = spec.generate();
    let m = spec.periodicity;

    println!("{:<22} {:>8} {:>8} {:>8}", "method", "SMAPE", "MASE", "OWA");
    println!("{}", "-".repeat(50));

    let report = |name: &str, score: msd_metrics::M4Score| {
        println!(
            "{name:<22} {:>8.3} {:>8.3} {:>8.3}",
            score.smape, score.mase, score.owa
        );
    };

    // Classical methods forecast from the full history.
    report(
        "Naive (last value)",
        score_forecasts(&col, |w| naive_last(w, spec.horizon)),
    );
    report(
        "Naive2 (deseasonal)",
        score_forecasts(&col, |w| naive2(w, spec.horizon, m)),
    );
    report(
        "Holt-Winters",
        score_forecasts(&col, |w| {
            holt_winters_forecast(w, spec.horizon, m, 0.3, 0.05, 0.3)
        }),
    );
    report(
        "AR(24) least squares",
        score_forecasts(&col, |w| match ArModel::fit(w, 24.min(w.len() / 3)) {
            Some(model) => model.forecast(w, spec.horizon),
            None => naive_last(w, spec.horizon),
        }),
    );

    // Learned models (trained on the subset's pooled windows).
    for model in [
        ModelSpec::NBeats,
        ModelSpec::NHits,
        ModelSpec::MsdMixer(Variant::Full),
    ] {
        let score = run_single(&col, model, Scale::Fast);
        report(model.name(), score);
    }

    println!();
    println!("OWA < 1 beats the M4 Naive2 reference (Eq. 8 of the paper).");
    println!("The classical methods are strong on cleanly seasonal series; the");
    println!("learned models pull ahead by sharing structure across all series.");
}
