//! Domain scenario: day-ahead load forecasting on an Electricity-like feed
//! (the workload that motivates the paper's intro). Compares MSD-Mixer
//! against the linear and hierarchical baselines at two horizons and shows
//! a sample forecast as ASCII sparklines.
//!
//! ```sh
//! cargo run --release -p msd-harness --example electricity_forecast
//! ```

use msd_data::{long_term_datasets, LongRangeSpec, SlidingWindows, Split, StandardScaler};
use msd_harness::{evaluate_forecast, fit, ForecastSource, ModelSpec, TrainConfig};
use msd_mixer::variants::Variant;
use msd_nn::{ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-6);
    values
        .iter()
        .map(|&v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    // A smaller Electricity-like feed so the example finishes in seconds.
    let spec = LongRangeSpec {
        channels: 12,
        total_steps: 2500,
        ..long_term_datasets()
            .into_iter()
            .find(|s| s.name == "Electricity")
            .expect("registry contains Electricity")
    };
    println!("== Day-ahead load forecasting on {} ({} feeders) ==\n", spec.name, spec.channels);
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, (spec.total_steps as f32 * 0.7) as usize);
    let data = scaler.transform(&raw);

    let input_len = 96;
    for horizon in [24usize, 96] {
        println!("--- horizon {horizon} steps ---");
        let train = ForecastSource::new(
            SlidingWindows::new(&data, input_len, horizon, Split::Train),
            192,
        );
        let test_windows = SlidingWindows::new(&data, input_len, horizon, Split::Test);
        let test = ForecastSource::new(
            SlidingWindows::new(&data, input_len, horizon, Split::Test),
            96,
        );
        for model_spec in [
            ModelSpec::MsdMixer(Variant::Full),
            ModelSpec::DLinear,
            ModelSpec::NHits,
        ] {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from(11);
            let model = model_spec.build(
                &mut store,
                &mut rng,
                spec.channels,
                input_len,
                Task::Forecast { horizon },
                16,
            );
            fit(
                &model,
                &mut store,
                &train,
                None,
                &TrainConfig {
                    epochs: 4,
                    lr: model_spec.default_lr(),
                    ..TrainConfig::default()
                },
            );
            let (mse, mae) = evaluate_forecast(&model, &store, &test, 32);
            println!("  {:<10} MSE {mse:.3}  MAE {mae:.3}", model_spec.name());

            if model_spec == ModelSpec::MsdMixer(Variant::Full) && horizon == 96 {
                // Show feeder 0 of the first test window: history, truth,
                // and the model's forecast.
                let (x, y) = test_windows.get(0);
                let pred = model.predict(&store, &x.reshape(&[1, spec.channels, input_len]));
                let hist: Vec<f32> = (0..input_len).map(|t| x.at(&[0, t])).collect();
                let truth: Vec<f32> = (0..horizon).map(|t| y.at(&[0, t])).collect();
                let fcst: Vec<f32> = (0..horizon).map(|t| pred.at(&[0, 0, t])).collect();
                println!("    history : {}", sparkline(&hist));
                println!("    truth   : {}", sparkline(&truth));
                println!("    forecast: {}", sparkline(&fcst));
                let _ = Tensor::zeros(&[1]);
            }
        }
        println!();
    }
    println!("Lower is better; errors are in standardised units.");
}
