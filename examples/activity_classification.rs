//! Domain scenario: series-level classification (think human-activity
//! recognition from wearables, Sec. IV-F) on a UWGL-like gesture dataset.
//!
//! ```sh
//! cargo run --release -p msd-harness --example activity_classification
//! ```

use msd_baselines::MiniRocketClassifier;
use msd_data::{classification_datasets, ClassSpec};
use msd_harness::experiments::classification::run_single;
use msd_harness::{ModelSpec, Scale};
use msd_metrics::accuracy;
use msd_mixer::variants::Variant;

fn main() {
    println!("== Gesture classification (UWGL-like, 8 classes) ==\n");
    let spec = ClassSpec {
        ..classification_datasets()
            .into_iter()
            .find(|s| s.name == "UWGL")
            .expect("registry contains UWGL")
    };
    println!(
        "dataset: {} channels x {} steps, {} classes, {} train / {} test series\n",
        spec.channels, spec.series_len, spec.classes, spec.train_size, spec.test_size
    );

    let chance = 1.0 / spec.classes as f32;
    for model in [
        ModelSpec::MsdMixer(Variant::Full),
        ModelSpec::PatchTst,
        ModelSpec::DLinear,
        ModelSpec::NHits,
    ] {
        let acc = run_single(&spec, model, Scale::Fast);
        println!(
            "  {:<10} accuracy {:>5.1}%  ({}x chance)",
            model.name(),
            acc * 100.0,
            (acc / chance).round() as usize
        );
    }
    // The statistical task-specific baseline of Table XI.
    let data = spec.generate();
    let clf = MiniRocketClassifier::fit(&data.train_x, &data.train_y, spec.classes, 48, 20);
    let acc = accuracy(&clf.predict(&data.test_x), &data.test_y);
    println!(
        "  {:<10} accuracy {:>5.1}%  ({}x chance)  [statistical, Table XI]",
        "MiniRocket",
        acc * 100.0,
        (acc / chance).round() as usize
    );

    println!("\nClass identity is encoded at several timescales (base frequency,");
    println!("harmonics, envelope, channel pattern), so multi-scale patch modeling");
    println!("is what separates the models here — the paper's Sec. IV-F argument.");
}
