//! Quickstart: train MSD-Mixer to forecast a small synthetic multivariate
//! series and print test errors.
//!
//! ```sh
//! cargo run --release -p msd-harness --example quickstart
//! ```

use msd_data::{long_term_datasets, SlidingWindows, Split, StandardScaler};
use msd_harness::{evaluate_forecast, fit, ForecastSource, ModelSpec, TrainConfig};
use msd_mixer::variants::Variant;
use msd_nn::{ParamStore, Task};
use msd_tensor::rng::Rng;

fn main() {
    // 1. Data: an ETTh1-like synthetic series, standardised on the train
    //    split (see DESIGN.md §2 for how the stand-ins mirror the paper's
    //    benchmarks).
    let spec = long_term_datasets()
        .into_iter()
        .find(|s| s.name == "ETTh1")
        .expect("registry contains ETTh1");
    println!("dataset: {} ({} channels, {} steps)", spec.name, spec.channels, spec.total_steps);
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, (spec.total_steps as f32 * 0.7) as usize);
    let data = scaler.transform(&raw);

    // 2. Sliding windows: look back 96 steps, forecast 96.
    let (input_len, horizon) = (96, 96);
    let train = ForecastSource::new(
        SlidingWindows::new(&data, input_len, horizon, Split::Train),
        256,
    );
    let val = ForecastSource::new(
        SlidingWindows::new(&data, input_len, horizon, Split::Val),
        96,
    );
    let test = ForecastSource::new(
        SlidingWindows::new(&data, input_len, horizon, Split::Test),
        192,
    );

    // 3. Model: MSD-Mixer with the paper's patch sizes {24, 12, 4, 2, 1}.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(42);
    let model_spec = ModelSpec::MsdMixer(Variant::Full);
    let model = model_spec.build(
        &mut store,
        &mut rng,
        spec.channels,
        input_len,
        Task::Forecast { horizon },
        16,
    );
    println!("model: {} ({} parameters)", model.name(), store.num_scalars());

    // 4. Train with Adam + early stopping on the validation split.
    let report = fit(
        &model,
        &mut store,
        &train,
        Some(&val),
        &TrainConfig {
            epochs: 5,
            lr: model_spec.default_lr(),
            ..TrainConfig::default()
        },
    );
    println!("trained {} epochs; train losses: {:?}", report.epochs_run, report.train_losses);

    // 5. Evaluate on the held-out test windows.
    let (mse, mae) = evaluate_forecast(&model, &store, &test, 32);
    println!("test MSE = {mse:.3}, MAE = {mae:.3} (standardised space)");
    println!("(predicting zeros would score MSE ≈ 1.0 on this data)");
}
