//! Domain scenario: interpretable multi-scale decomposition (the paper's
//! Figure 4 / Sec. IV-H). Trains MSD-Mixer on ETTh1-like data, decomposes a
//! window into its learned components, and renders them as sparklines with
//! residual whiteness diagnostics.
//!
//! ```sh
//! cargo run --release -p msd-harness --example decompose_series
//! ```

use msd_data::{long_term_datasets, SlidingWindows, Split, StandardScaler};
use msd_harness::{fit, AnyModel, ForecastSource, TrainConfig};
use msd_mixer::{decompose, MsdMixer, MsdMixerConfig};
use msd_nn::{ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::stats::white_noise_bound;

fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-6);
    values
        .iter()
        .map(|&v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    println!("== Learned multi-scale decomposition (Figure 4 setup) ==\n");
    let spec = long_term_datasets()
        .into_iter()
        .find(|s| s.name == "ETTh1")
        .expect("registry contains ETTh1");
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, (spec.total_steps as f32 * 0.7) as usize);
    let data = scaler.transform(&raw);

    // The paper's case-study configuration: L = 96 at hourly sampling,
    // patch sizes {24, 12, 6, 2, 1} = 1 day / half day / 6 h / 2 h / 1 h.
    let patch_sizes = vec![24, 12, 6, 2, 1];
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(4);
    let cfg = MsdMixerConfig {
        in_channels: spec.channels,
        input_len: 96,
        patch_sizes: patch_sizes.clone(),
        d_model: 16,
        hidden_ratio: 2,
        drop_path: 0.0,
        alpha: 2.0,
        lambda: 1.0,
        magnitude_only: false,
        task: Task::Forecast { horizon: 96 },
    };
    let mixer = MsdMixer::new(&mut store, &mut rng, &cfg);
    let model = AnyModel::Mixer(mixer);

    let train = ForecastSource::new(SlidingWindows::new(&data, 96, 96, Split::Train), 256);
    println!("training MSD-Mixer (λ = 1.0, 5 epochs)...\n");
    fit(
        &model,
        &mut store,
        &train,
        None,
        &TrainConfig {
            epochs: 5,
            lr: 5e-3,
            ..TrainConfig::default()
        },
    );

    let AnyModel::Mixer(mixer) = &model else {
        unreachable!()
    };
    let test_w = SlidingWindows::new(&data, 96, 96, Split::Test);
    let (x, _) = test_w.get(0);
    let d = decompose(mixer, &store, &x);

    // Channel 0, rendered per component.
    let series = |t: &msd_tensor::Tensor| -> Vec<f32> { (0..96).map(|i| t.at(&[0, i])).collect() };
    println!("input (channel 0)        : {}", sparkline(&series(&d.input)));
    for (i, (s, p)) in d.components.iter().zip(&patch_sizes).enumerate() {
        let sd = s.var_all().sqrt();
        println!(
            "component S{} (p={p:>2}, σ={sd:.2}): {}",
            i + 1,
            sparkline(&series(s))
        );
    }
    println!("residual Z_k             : {}", sparkline(&series(&d.residual)));

    println!();
    println!("decomposition consistent (ΣSᵢ + Z = X): {}", d.is_consistent(1e-3));
    println!("explained energy: {:.1}%", d.explained_energy() * 100.0);
    println!("residual energy : {:.4}", d.residual_energy());
    println!(
        "residual ACF outside ±2/√L (= ±{:.3}): {:.1}% of lags",
        white_noise_bound(96),
        d.residual_acf_violation() * 100.0
    );
    println!("\nThe components separate timescales (coarse patches capture slow");
    println!("structure, fine patches the fast wiggles) while the Residual Loss");
    println!("keeps the leftover close to white noise — the paper's Figure 4.");
}
