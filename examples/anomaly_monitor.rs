//! Domain scenario: unsupervised anomaly monitoring on an SMD-like server
//! telemetry stream — train MSD-Mixer to reconstruct normal behaviour, then
//! flag test windows whose reconstruction error spikes (Sec. IV-E).
//!
//! ```sh
//! cargo run --release -p msd-harness --example anomaly_monitor
//! ```

use msd_data::anomaly_datasets;
use msd_data::AnomalySpec;
use msd_harness::experiments::anomaly::run_single;
use msd_harness::{ModelSpec, Scale};
use msd_mixer::variants::Variant;

fn main() {
    println!("== Unsupervised anomaly monitoring (reconstruction-based) ==\n");
    let spec = AnomalySpec {
        train_steps: 2000,
        test_steps: 2000,
        channels: 12,
        ..anomaly_datasets()
            .into_iter()
            .find(|s| s.name == "SMD")
            .expect("registry contains SMD")
    };
    println!(
        "stream: {}-like, {} channels, {} normal steps for training,",
        spec.name, spec.channels, spec.train_steps
    );
    println!(
        "{} test steps contaminated with ~{:.1}% anomalous points\n",
        spec.test_steps,
        spec.anomaly_ratio * 100.0
    );

    for model in [
        ModelSpec::MsdMixer(Variant::Full),
        ModelSpec::DLinear,
        ModelSpec::LightTs,
    ] {
        let scores = run_single(&spec, model, Scale::Fast);
        println!(
            "  {:<10} precision {:>5.1}%  recall {:>5.1}%  F1 {:>5.1}%",
            model.name(),
            scores.precision * 100.0,
            scores.recall * 100.0,
            scores.f1 * 100.0
        );
    }
    println!("\nScores use the point-adjust convention: an anomalous event counts as");
    println!("detected when any point inside it is flagged (Sec. IV-E protocol).");
}
