//! End-to-end decomposition integration: the Figure 4 claim — training
//! with the Residual Loss produces a whiter, smaller residual than without.

use msd_data::{long_term_datasets, LongRangeSpec, SlidingWindows, Split, StandardScaler};
use msd_harness::{fit, AnyModel, ForecastSource, TrainConfig};
use msd_mixer::{decompose, MsdMixer, MsdMixerConfig};
use msd_nn::{store, ParamStore, Task};
use msd_tensor::rng::Rng;

fn spec() -> LongRangeSpec {
    LongRangeSpec {
        total_steps: 1200,
        channels: 4,
        ..long_term_datasets()
            .into_iter()
            .find(|s| s.name == "ETTh1")
            .unwrap()
    }
}

fn train_mixer(lambda: f32) -> (ParamStore, MsdMixer, msd_tensor::Tensor) {
    let spec = spec();
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, 840);
    let data = scaler.transform(&raw);
    let train_src = ForecastSource::new(SlidingWindows::new(&data, 96, 48, Split::Train), 192);
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(7);
    let cfg = MsdMixerConfig {
        in_channels: spec.channels,
        input_len: 96,
        patch_sizes: vec![24, 12, 6, 2, 1],
        d_model: 8,
        hidden_ratio: 2,
        drop_path: 0.0,
        alpha: 2.0,
        lambda,
        magnitude_only: false,
        task: Task::Forecast { horizon: 48 },
    };
    let mixer = MsdMixer::new(&mut store, &mut rng, &cfg);
    let model = AnyModel::Mixer(mixer);
    fit(
        &model,
        &mut store,
        &train_src,
        None,
        &TrainConfig {
            epochs: 4,
            lr: 5e-3,
            ..TrainConfig::default()
        },
    );
    let AnyModel::Mixer(mixer) = model else {
        unreachable!()
    };
    let test_w = SlidingWindows::new(&data, 96, 48, Split::Test);
    let (x, _) = test_w.get(0);
    (store, mixer, x)
}

#[test]
fn residual_loss_shrinks_the_residual() {
    let (store_with, mixer_with, x) = train_mixer(1.0);
    let (store_without, mixer_without, _) = train_mixer(0.0);
    let d_with = decompose(&mixer_with, &store_with, &x);
    let d_without = decompose(&mixer_without, &store_without, &x);

    assert!(d_with.is_consistent(1e-3));
    assert!(d_without.is_consistent(1e-3));
    // The Figure 4 claim: with the Residual Loss, far less energy is left
    // in the residual.
    assert!(
        d_with.residual_energy() < d_without.residual_energy() * 0.8,
        "residual energy with={} without={}",
        d_with.residual_energy(),
        d_without.residual_energy()
    );
    assert!(d_with.explained_energy() > d_without.explained_energy());
}

#[test]
fn checkpoint_round_trip_preserves_decomposition() {
    let (mut store, mixer, x) = train_mixer(1.0);
    let before = decompose(&mixer, &store, &x);
    let mut buf = Vec::new();
    store::save(&store, &mut buf).unwrap();
    // Perturb all params, then restore.
    for i in 0..store.len() {
        let t = store.get_mut(i);
        let noise = msd_tensor::Tensor::full(t.shape(), 0.1);
        t.add_assign(&noise);
    }
    store::load(&mut store, &mut buf.as_slice()).unwrap();
    let after = decompose(&mixer, &store, &x);
    assert!(msd_tensor::allclose(&before.residual, &after.residual, 1e-5));
    for (a, b) in before.components.iter().zip(&after.components) {
        assert!(msd_tensor::allclose(a, b, 1e-5));
    }
}
