//! End-to-end classification integration: labeled data generation,
//! cross-entropy training, accuracy evaluation.

use msd_data::{classification_datasets, ClassSpec};
use msd_harness::experiments::classification::run_single;
use msd_harness::{ModelSpec, Scale};
use msd_mixer::variants::Variant;

fn easy_spec() -> ClassSpec {
    ClassSpec {
        train_size: 72,
        test_size: 72,
        noise: 0.3,
        ..classification_datasets()
            .into_iter()
            .find(|s| s.name == "CR")
            .unwrap()
    }
}

#[test]
fn mixer_classifies_above_chance() {
    let spec = easy_spec();
    let acc = run_single(&spec, ModelSpec::MsdMixer(Variant::Full), Scale::Smoke);
    let chance = 1.0 / spec.classes as f32;
    assert!(acc > chance * 1.5, "accuracy {acc} vs chance {chance}");
}

#[test]
fn harder_noise_reduces_accuracy_or_ties() {
    let clean = run_single(&easy_spec(), ModelSpec::DLinear, Scale::Smoke);
    let noisy_spec = ClassSpec {
        noise: 2.5,
        ..easy_spec()
    };
    let noisy = run_single(&noisy_spec, ModelSpec::DLinear, Scale::Smoke);
    assert!(
        noisy <= clean + 0.15,
        "noise {noisy} should not beat clean {clean}"
    );
}
