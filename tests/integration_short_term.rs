//! End-to-end short-term forecasting integration: M4-like generation,
//! pooled training, Naive2-referenced OWA scoring.

use msd_baselines::naive::naive2;
use msd_data::M4Spec;
use msd_harness::experiments::short_term::{run_single, score_forecasts};
use msd_harness::{ModelSpec, Scale};
use msd_mixer::variants::Variant;

fn tiny_hourly() -> msd_data::M4Collection {
    M4Spec {
        name: "TinyHourly",
        horizon: 12,
        input_len: 24,
        periodicity: 12,
        num_series: 32,
        seed: 77,
    }
    .generate()
}

#[test]
fn naive2_scores_owa_one_against_itself() {
    // Scoring Naive2 itself must give OWA == 1 exactly (Eq. 8 is
    // self-normalising).
    let col = tiny_hourly();
    let score = score_forecasts(&col, |w| {
        // score_forecasts hands the model the input window; Naive2 in the
        // denominator uses the full history, so feed the same window-based
        // forecast both ways by using the full-history variant here.
        let hist = col
            .insample
            .iter()
            .find(|h| &h[h.len() - w.len()..] == w)
            .expect("window belongs to a series");
        naive2(hist, col.spec.horizon, col.spec.periodicity)
    });
    assert!((score.owa - 1.0).abs() < 1e-5, "owa {}", score.owa);
}

#[test]
fn trained_mixer_beats_naive2_on_seasonal_subset() {
    let col = tiny_hourly();
    let score = run_single(&col, ModelSpec::MsdMixer(Variant::Full), Scale::Fast);
    assert!(
        score.owa < 1.0,
        "MSD-Mixer OWA {} should beat Naive2 on seasonal data",
        score.owa
    );
    assert!(score.smape > 0.0 && score.smape < 200.0);
}

#[test]
fn learned_models_generalise_across_series() {
    // The pooled protocol trains one model on all series; it must not
    // collapse to a per-series memoriser: evaluate on a *fresh* collection
    // from a different seed with the same structure.
    let col = tiny_hourly();
    let score_same = run_single(&col, ModelSpec::DLinear, Scale::Fast);
    assert!(score_same.owa.is_finite());
    // The same spec with another seed gives a disjoint set of series.
    let other = M4Spec {
        seed: 78,
        ..col.spec.clone()
    }
    .generate();
    let score_other = run_single(&other, ModelSpec::DLinear, Scale::Fast);
    assert!(
        score_other.owa < score_same.owa * 2.0 + 0.5,
        "cross-seed degradation too large: {} vs {}",
        score_other.owa,
        score_same.owa
    );
}
