//! End-to-end forecasting integration: data generation → scaling →
//! windowing → training → evaluation, across crates.

use msd_data::{long_term_datasets, LongRangeSpec, SlidingWindows, Split, StandardScaler};
use msd_harness::{evaluate_forecast, fit, ForecastSource, ModelSpec, TrainConfig};
use msd_mixer::variants::Variant;
use msd_nn::{ParamStore, Task};
use msd_tensor::rng::Rng;

fn small_etth1() -> LongRangeSpec {
    LongRangeSpec {
        total_steps: 1000,
        channels: 4,
        ..long_term_datasets()
            .into_iter()
            .find(|s| s.name == "ETTh1")
            .unwrap()
    }
}

fn train_eval(spec: &LongRangeSpec, model_spec: ModelSpec, epochs: usize) -> (f32, f32) {
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, (spec.total_steps as f32 * 0.7) as usize);
    let data = scaler.transform(&raw);
    let train_src = ForecastSource::new(SlidingWindows::new(&data, 96, 24, Split::Train), 192);
    let test_src = ForecastSource::new(SlidingWindows::new(&data, 96, 24, Split::Test), 96);
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(1);
    let model = model_spec.build(
        &mut store,
        &mut rng,
        spec.channels,
        96,
        Task::Forecast { horizon: 24 },
        8,
    );
    fit(
        &model,
        &mut store,
        &train_src,
        None,
        &TrainConfig {
            epochs,
            lr: model_spec.default_lr(),
            ..TrainConfig::default()
        },
    );
    evaluate_forecast(&model, &store, &test_src, 32)
}

#[test]
fn msd_mixer_beats_flat_forecast() {
    // On standardised seasonal data, the flat zero forecast has MSE ≈ 1;
    // a trained MSD-Mixer must do much better.
    let (mse, mae) = train_eval(&small_etth1(), ModelSpec::MsdMixer(Variant::Full), 4);
    assert!(mse < 0.8, "MSD-Mixer mse {mse}");
    assert!(mae < 0.8, "MSD-Mixer mae {mae}");
}

#[test]
fn mixer_and_linear_baseline_land_in_same_regime() {
    // The reproduction claim is about ordering at full budget; at this tiny
    // budget we assert both models train sanely (within 2x of each other).
    let (mixer_mse, _) = train_eval(&small_etth1(), ModelSpec::MsdMixer(Variant::Full), 4);
    let (dlinear_mse, _) = train_eval(&small_etth1(), ModelSpec::DLinear, 4);
    assert!(mixer_mse.is_finite() && dlinear_mse.is_finite());
    assert!(
        mixer_mse < dlinear_mse * 2.0 && dlinear_mse < mixer_mse * 2.0,
        "mixer {mixer_mse} vs dlinear {dlinear_mse}"
    );
}

#[test]
fn random_walk_data_favours_level_aware_models() {
    // On Exchange-like random walks the naive continuation is near-optimal;
    // NLinear (last-value anchored) must stay close to MSE of the optimal
    // flat continuation, and far below exploding.
    let spec = LongRangeSpec {
        total_steps: 1200,
        ..long_term_datasets()
            .into_iter()
            .find(|s| s.name == "Exchange")
            .unwrap()
    };
    let (mse, _) = train_eval(&spec, ModelSpec::NLinear, 4);
    assert!(mse < 1.0, "NLinear on random walk mse {mse}");
}

#[test]
fn longer_horizons_are_harder() {
    let spec = small_etth1();
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, 700);
    let data = scaler.transform(&raw);
    let mut errs = Vec::new();
    for h in [12usize, 96] {
        let train_src = ForecastSource::new(SlidingWindows::new(&data, 96, h, Split::Train), 128);
        let test_src = ForecastSource::new(SlidingWindows::new(&data, 96, h, Split::Test), 64);
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let model = ModelSpec::DLinear.build(
            &mut store,
            &mut rng,
            spec.channels,
            96,
            Task::Forecast { horizon: h },
            8,
        );
        fit(
            &model,
            &mut store,
            &train_src,
            None,
            &TrainConfig {
                epochs: 4,
                lr: 1e-2,
                ..TrainConfig::default()
            },
        );
        let (mse, _) = evaluate_forecast(&model, &store, &test_src, 32);
        errs.push(mse);
    }
    assert!(
        errs[1] > errs[0] * 0.8,
        "h=96 ({}) should not be much easier than h=12 ({})",
        errs[1],
        errs[0]
    );
}
