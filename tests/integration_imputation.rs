//! End-to-end imputation integration: masking → training with the
//! magnitude-only Residual Loss → masked-position evaluation.

use msd_data::{long_term_datasets, LongRangeSpec, SlidingWindows, Split, StandardScaler};
use msd_harness::{evaluate_forecast, fit, ImputationSource, ModelSpec, TrainConfig};
use msd_mixer::variants::Variant;
use msd_nn::{ParamStore, Task};
use msd_tensor::rng::Rng;

fn spec() -> LongRangeSpec {
    LongRangeSpec {
        total_steps: 1000,
        channels: 4,
        ..long_term_datasets()
            .into_iter()
            .find(|s| s.name == "ETTm1")
            .unwrap()
    }
}

fn run(model_spec: ModelSpec, ratio: f32) -> f32 {
    let spec = spec();
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, 700);
    let data = scaler.transform(&raw);
    let train_src =
        ImputationSource::new(SlidingWindows::new(&data, 96, 0, Split::Train), 160, ratio, 5);
    let test_src =
        ImputationSource::new(SlidingWindows::new(&data, 96, 0, Split::Test), 64, ratio, 6);
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(3);
    let model = model_spec.build_with(
        &mut store,
        &mut rng,
        spec.channels,
        96,
        Task::Reconstruct,
        8,
        true,
    );
    fit(
        &model,
        &mut store,
        &train_src,
        None,
        &TrainConfig {
            epochs: 4,
            lr: model_spec.default_lr(),
            ..TrainConfig::default()
        },
    );
    let (mse, _) = evaluate_forecast(&model, &store, &test_src, 32);
    mse
}

#[test]
fn imputation_beats_zero_fill() {
    // Zero-filling missing values scores MSE ≈ 1 on standardised data.
    let mse = run(ModelSpec::MsdMixer(Variant::Full), 0.25);
    assert!(mse < 0.7, "imputation mse {mse}");
}

#[test]
fn higher_missing_ratio_is_harder() {
    let low = run(ModelSpec::DLinear, 0.125);
    let high = run(ModelSpec::DLinear, 0.5);
    assert!(
        high > low * 0.9,
        "50% missing ({high}) should not be easier than 12.5% ({low})"
    );
}
