//! End-to-end anomaly-detection integration: reconstruction training on
//! normal data, thresholded scoring, and point-adjusted evaluation.

use msd_data::{anomaly_datasets, AnomalySpec};
use msd_harness::experiments::anomaly::run_single;
use msd_harness::{ModelSpec, Scale};
use msd_mixer::variants::Variant;

fn small_spec() -> AnomalySpec {
    AnomalySpec {
        train_steps: 1500,
        test_steps: 1500,
        channels: 8,
        ..anomaly_datasets()
            .into_iter()
            .find(|s| s.name == "SMD")
            .unwrap()
    }
}

#[test]
fn mixer_detects_injected_anomalies() {
    let scores = run_single(&small_spec(), ModelSpec::MsdMixer(Variant::Full), Scale::Smoke);
    assert!(scores.f1 > 0.3, "F1 {} too low", scores.f1);
    assert!(scores.precision > 0.0 && scores.recall > 0.0);
}

#[test]
fn scores_are_valid_probabilities() {
    let scores = run_single(&small_spec(), ModelSpec::LightTs, Scale::Smoke);
    for v in [scores.precision, scores.recall, scores.f1] {
        assert!((0.0..=1.0).contains(&v), "score {v} out of range");
    }
    // F1 is the harmonic mean of P and R.
    let expect = if scores.precision + scores.recall > 0.0 {
        2.0 * scores.precision * scores.recall / (scores.precision + scores.recall)
    } else {
        0.0
    };
    assert!((scores.f1 - expect).abs() < 1e-5);
}
