//! Labeled series collections — stand-ins for the ten UEA classification
//! subsets of Table X.
//!
//! Class identity is encoded at several timescales simultaneously — base
//! frequency, harmonic content, amplitude envelope, and the channel mixing
//! pattern — so that multi-scale sub-series modeling (the paper's claim)
//! genuinely matters. Within a class, series vary in phase, amplitude and
//! noise, so memorisation does not suffice.

use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Specification of one classification dataset.
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Dataset abbreviation, matching Table X.
    pub name: &'static str,
    /// Channel count (capped where the original is very wide).
    pub channels: usize,
    /// Series length (capped where the original is very long).
    pub series_len: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Noise level (higher = harder).
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

/// A generated dataset: series stacked as `[N, C, L]` plus labels.
pub struct LabeledDataset {
    /// The generating spec.
    pub spec: ClassSpec,
    /// Training series `[train_size, C, L]`.
    pub train_x: Tensor,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test series `[test_size, C, L]`.
    pub test_x: Tensor,
    /// Test labels.
    pub test_y: Vec<usize>,
}

impl ClassSpec {
    /// Generates the dataset. Deterministic per seed.
    pub fn generate(&self) -> LabeledDataset {
        let mut rng = Rng::seed_from(self.seed);
        // Class prototypes: frequency, harmonic weight, envelope period, and
        // per-channel gain pattern.
        struct Proto {
            base_freq: f32,
            harmonic: f32,
            envelope_period: f32,
            channel_gain: Vec<f32>,
            chirp: f32,
            /// Class-specific phase lag between adjacent channels. Two
            /// classes can share a frequency yet differ only in this lag —
            /// a discriminator that is *invisible* to channel-independent
            /// models (each channel alone has a uniformly random phase),
            /// rewarding cross-channel modeling as in the paper's Sec. IV-F
            /// argument.
            channel_lag: f32,
        }
        // Class frequencies are spaced geometrically: the discriminative
        // signal in frequency-derived statistics scales with the frequency
        // *ratio* between classes (within-class amplitude/frequency jitter is
        // multiplicative), so additive spacing would make high-k classes
        // progressively harder to tell apart. The ratio is capped so the top
        // class's first harmonic stays below Nyquist for every registry spec.
        let protos: Vec<Proto> = (0..self.classes)
            .map(|k| Proto {
                base_freq: 2.0 * 1.3f32.powi(k as i32) * (1.0 + 0.1 * rng.uniform()),
                harmonic: 0.2 + 0.6 * rng.uniform(),
                envelope_period: self.series_len as f32 / (1.0 + (k % 3) as f32),
                channel_gain: (0..self.channels)
                    .map(|c| if (c + k) % 2 == 0 { 1.0 } else { 0.35 } + 0.2 * rng.normal())
                    .collect(),
                chirp: 0.3 * ((k % 2) as f32),
                channel_lag: 0.4 + 2.2 * ((k as f32 * 0.618) % 1.0),
            })
            .collect();

        let gen_split = |n: usize, rng: &mut Rng| -> (Tensor, Vec<usize>) {
            let mut xs = Vec::with_capacity(n * self.channels * self.series_len);
            let mut ys = Vec::with_capacity(n);
            for i in 0..n {
                let k = i % self.classes; // balanced
                let p = &protos[k];
                let phase = rng.uniform() * std::f32::consts::TAU;
                let amp = 0.7 + 0.6 * rng.uniform();
                for ch in 0..self.channels {
                    let gain = p.channel_gain[ch] * amp;
                    let ch_phase = phase + p.channel_lag * ch as f32;
                    for t in 0..self.series_len {
                        let u = t as f32 / self.series_len as f32;
                        let freq = p.base_freq * (1.0 + p.chirp * u);
                        let carrier = (std::f32::consts::TAU * freq * u + ch_phase).sin()
                            + p.harmonic
                                * (2.0 * std::f32::consts::TAU * freq * u + ch_phase).sin();
                        let envelope =
                            0.6 + 0.4 * (std::f32::consts::TAU * t as f32 / p.envelope_period).cos();
                        xs.push(gain * envelope * carrier + self.noise * rng.normal());
                    }
                }
                ys.push(k);
            }
            (
                Tensor::from_vec(&[n, self.channels, self.series_len], xs),
                ys,
            )
        };

        let (train_x, train_y) = gen_split(self.train_size, &mut rng);
        let (test_x, test_y) = gen_split(self.test_size, &mut rng);
        LabeledDataset {
            spec: self.clone(),
            train_x,
            train_y,
            test_x,
            test_y,
        }
    }
}

/// The ten UEA-like classification datasets of Table X. Very wide or very
/// long originals are capped (FD 144→16 ch, MI 3000→256 len, CR 1197→320
/// len, …); class counts and the train/test balance character are kept.
pub fn classification_datasets() -> Vec<ClassSpec> {
    vec![
        ClassSpec { name: "AWR", channels: 9, series_len: 144, classes: 10, train_size: 150, test_size: 150, noise: 0.4, seed: 401 },
        ClassSpec { name: "AF", channels: 2, series_len: 160, classes: 3, train_size: 30, test_size: 30, noise: 0.7, seed: 402 },
        ClassSpec { name: "CT", channels: 3, series_len: 120, classes: 8, train_size: 240, test_size: 240, noise: 0.35, seed: 403 },
        ClassSpec { name: "CR", channels: 6, series_len: 160, classes: 6, train_size: 108, test_size: 72, noise: 0.4, seed: 404 },
        ClassSpec { name: "FD", channels: 16, series_len: 62, classes: 2, train_size: 300, test_size: 200, noise: 0.9, seed: 405 },
        ClassSpec { name: "FM", channels: 12, series_len: 50, classes: 2, train_size: 160, test_size: 100, noise: 0.8, seed: 406 },
        ClassSpec { name: "MI", channels: 16, series_len: 256, classes: 2, train_size: 140, test_size: 100, noise: 1.0, seed: 407 },
        ClassSpec { name: "SCP1", channels: 6, series_len: 224, classes: 2, train_size: 134, test_size: 146, noise: 0.5, seed: 408 },
        ClassSpec { name: "SCP2", channels: 7, series_len: 288, classes: 2, train_size: 100, test_size: 90, noise: 0.9, seed: 409 },
        ClassSpec { name: "UWGL", channels: 3, series_len: 160, classes: 8, train_size: 120, test_size: 160, noise: 0.45, seed: 410 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_x_rows() {
        let specs = classification_datasets();
        assert_eq!(specs.len(), 10);
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["AWR", "AF", "CT", "CR", "FD", "FM", "MI", "SCP1", "SCP2", "UWGL"]
        );
        // Uncapped dims preserved.
        assert_eq!(specs[0].channels, 9);
        assert_eq!(specs[9].classes, 8);
    }

    #[test]
    fn shapes_and_label_ranges() {
        for spec in classification_datasets().into_iter().take(3) {
            let d = spec.generate();
            assert_eq!(
                d.train_x.shape(),
                &[spec.train_size, spec.channels, spec.series_len]
            );
            assert_eq!(d.test_y.len(), spec.test_size);
            assert!(d.train_y.iter().all(|&y| y < spec.classes));
            assert!(d.test_y.iter().all(|&y| y < spec.classes));
        }
    }

    #[test]
    fn labels_are_balanced() {
        let spec = classification_datasets()[2].clone(); // CT, 8 classes
        let d = spec.generate();
        let mut counts = vec![0usize; spec.classes];
        for &y in &d.train_y {
            counts[y] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced classes: {counts:?}");
    }

    #[test]
    fn classes_are_separable_by_a_simple_statistic() {
        // A nearest-centroid classifier in a crude spectral feature space
        // should beat chance comfortably — i.e. class signal exists.
        let spec = ClassSpec {
            noise: 0.3,
            ..classification_datasets()[3].clone() // CR
        };
        let d = spec.generate();
        let (n, c, l) = (spec.train_size, spec.channels, spec.series_len);
        // Feature: mean |first difference| per channel (frequency proxy).
        let feat = |x: &Tensor, i: usize| -> Vec<f32> {
            (0..c)
                .map(|ch| {
                    let base = (i * c + ch) * l;
                    let row = &x.data()[base..base + l];
                    row.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f32>() / (l - 1) as f32
                })
                .collect()
        };
        // Class centroids from train.
        let mut centroids = vec![vec![0.0f32; c]; spec.classes];
        let mut counts = vec![0usize; spec.classes];
        for i in 0..n {
            let f = feat(&d.train_x, i);
            for (acc, v) in centroids[d.train_y[i]].iter_mut().zip(&f) {
                *acc += v;
            }
            counts[d.train_y[i]] += 1;
        }
        for (cent, &cnt) in centroids.iter_mut().zip(&counts) {
            for v in cent.iter_mut() {
                *v /= cnt.max(1) as f32;
            }
        }
        // Evaluate on test.
        let mut correct = 0;
        for i in 0..spec.test_size {
            let f = feat(&d.test_x, i);
            let pred = (0..spec.classes)
                .min_by(|&a, &b| {
                    let da: f32 = centroids[a].iter().zip(&f).map(|(x, y)| (x - y) * (x - y)).sum();
                    let db: f32 = centroids[b].iter().zip(&f).map(|(x, y)| (x - y) * (x - y)).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if pred == d.test_y[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / spec.test_size as f32;
        let chance = 1.0 / spec.classes as f32;
        assert!(acc > chance * 2.0, "accuracy {acc} vs chance {chance}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = classification_datasets()[0].clone();
        assert_eq!(spec.generate().train_x, spec.generate().train_x);
    }
}
