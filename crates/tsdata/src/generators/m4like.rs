//! M4-like univariate short-term forecasting collections — stand-ins for
//! the six M4 competition subsets of Table V.
//!
//! Each subset keeps the competition's forecast horizon and seasonal
//! periodicity; series counts are scaled down from the 100k-series archive.
//! Every series has its own trend/level/seasonality/noise draw, so models
//! must learn *general* temporal patterns across heterogeneous series, as in
//! the competition.

use msd_tensor::rng::Rng;

/// Specification of one M4-like frequency subset.
#[derive(Clone, Debug)]
pub struct M4Spec {
    /// Subset name (Yearly, Quarterly, …), matching Table V.
    pub name: &'static str,
    /// Forecast horizon `H` (the competition's, also Table V's "series
    /// length" column).
    pub horizon: usize,
    /// Model look-back window (the 2×H convention of the benchmark suite).
    pub input_len: usize,
    /// Seasonal periodicity `m` used by MASE and Naive2.
    pub periodicity: usize,
    /// Number of series generated (scaled down from Table V).
    pub num_series: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One generated subset: per-series history and future.
pub struct M4Collection {
    /// The generating spec.
    pub spec: M4Spec,
    /// Per-series in-sample history (length `input_len + horizon` history
    /// beyond the input is kept for MASE scaling).
    pub insample: Vec<Vec<f32>>,
    /// Per-series future ground truth (length `horizon`).
    pub future: Vec<Vec<f32>>,
}

impl M4Spec {
    /// Generates the subset. Deterministic per seed.
    pub fn generate(&self) -> M4Collection {
        let mut rng = Rng::seed_from(self.seed);
        let hist_len = self.input_len + self.horizon; // extra history for MASE
        let mut insample = Vec::with_capacity(self.num_series);
        let mut future = Vec::with_capacity(self.num_series);
        for _ in 0..self.num_series {
            let total = hist_len + self.horizon;
            let level = 2.0 + 8.0 * rng.uniform();
            let slope = 0.01 * rng.normal();
            let curvature = 0.00005 * rng.normal();
            let m = self.periodicity.max(1) as f32;
            let seasonal_amp = if self.periodicity > 1 {
                0.3 + 0.7 * rng.uniform()
            } else {
                0.0
            };
            let phase = rng.uniform() * std::f32::consts::TAU;
            // Second harmonic makes the shape non-sinusoidal.
            let h2_amp = seasonal_amp * 0.4 * rng.uniform();
            let noise = 0.05 + 0.15 * rng.uniform();
            let mut series = Vec::with_capacity(total);
            for t in 0..total {
                let tf = t as f32;
                let trend = level + slope * tf + curvature * tf * tf;
                let season = if self.periodicity > 1 {
                    seasonal_amp * (std::f32::consts::TAU * tf / m + phase).sin()
                        + h2_amp * (2.0 * std::f32::consts::TAU * tf / m + phase).sin()
                } else {
                    0.0
                };
                series.push(trend * (1.0 + 0.1 * season) + noise * rng.normal());
            }
            let fut = series.split_off(hist_len);
            insample.push(series);
            future.push(fut);
        }
        M4Collection {
            spec: self.clone(),
            insample,
            future,
        }
    }
}

impl M4Collection {
    /// The model input for series `i`: the last `input_len` points of the
    /// history.
    pub fn input_window(&self, i: usize) -> &[f32] {
        let s = &self.insample[i];
        &s[s.len() - self.spec.input_len..]
    }
}

/// The six frequency subsets of Table V with the competition's horizons and
/// periodicities; series counts scaled for CPU training.
pub fn m4_subsets() -> Vec<M4Spec> {
    vec![
        M4Spec { name: "Yearly", horizon: 6, input_len: 12, periodicity: 1, num_series: 160, seed: 201 },
        M4Spec { name: "Quarterly", horizon: 8, input_len: 16, periodicity: 4, num_series: 160, seed: 202 },
        M4Spec { name: "Monthly", horizon: 18, input_len: 36, periodicity: 12, num_series: 160, seed: 203 },
        M4Spec { name: "Weekly", horizon: 13, input_len: 26, periodicity: 1, num_series: 80, seed: 204 },
        M4Spec { name: "Daily", horizon: 14, input_len: 28, periodicity: 1, num_series: 100, seed: 205 },
        M4Spec { name: "Hourly", horizon: 48, input_len: 96, periodicity: 24, num_series: 60, seed: 206 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_v_horizons() {
        let specs = m4_subsets();
        let horizons: Vec<usize> = specs.iter().map(|s| s.horizon).collect();
        assert_eq!(horizons, vec![6, 8, 18, 13, 14, 48]);
        let periods: Vec<usize> = specs.iter().map(|s| s.periodicity).collect();
        assert_eq!(periods, vec![1, 4, 12, 1, 1, 24]);
    }

    #[test]
    fn generated_lengths_are_consistent() {
        for spec in m4_subsets() {
            let col = spec.generate();
            assert_eq!(col.insample.len(), spec.num_series);
            assert_eq!(col.future.len(), spec.num_series);
            for (h, f) in col.insample.iter().zip(&col.future) {
                assert_eq!(h.len(), spec.input_len + spec.horizon);
                assert_eq!(f.len(), spec.horizon);
            }
            assert_eq!(col.input_window(0).len(), spec.input_len);
        }
    }

    #[test]
    fn series_are_heterogeneous() {
        let col = m4_subsets()[2].generate(); // Monthly
        let mean = |s: &[f32]| s.iter().sum::<f32>() / s.len() as f32;
        let m0 = mean(&col.insample[0]);
        let m1 = mean(&col.insample[1]);
        assert!((m0 - m1).abs() > 0.05, "series levels too similar: {m0} vs {m1}");
    }

    #[test]
    fn seasonal_subsets_show_periodicity() {
        let spec = m4_subsets()
            .into_iter()
            .find(|s| s.name == "Hourly")
            .unwrap();
        let col = spec.generate();
        // Average lag-24 autocorrelation across series should be positive.
        let mut total = 0.0f32;
        for s in col.insample.iter().take(20) {
            let coeffs = msd_tensor::stats::acf(s, 24);
            total += coeffs[23];
        }
        assert!(total / 20.0 > 0.1, "avg lag-24 acf {}", total / 20.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = m4_subsets()[0].clone();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.insample[0], b.insample[0]);
        assert_eq!(a.future[5], b.future[5]);
    }
}
