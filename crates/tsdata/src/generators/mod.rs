//! Synthetic dataset generators, one module per paper benchmark family.

pub mod anomaly;
pub mod classification;
pub mod longrange;
pub mod m4like;

use msd_tensor::rng::Rng;

/// Shared building block: a sum of sinusoids with the given periods and
/// per-component amplitudes/phases, sampled at integer steps.
pub(crate) fn seasonal_mix(
    t: usize,
    periods: &[f32],
    amplitudes: &[f32],
    phases: &[f32],
) -> f32 {
    let mut v = 0.0f32;
    for ((&p, &a), &ph) in periods.iter().zip(amplitudes).zip(phases) {
        v += a * (2.0 * std::f32::consts::PI * t as f32 / p + ph).sin();
    }
    v
}

/// Smooth piecewise-linear trend with occasional slope changes, emulating
/// the regime drifts of real operational series.
pub(crate) struct RegimeTrend {
    slope: f32,
    level: f32,
    steps_left: usize,
    slope_scale: f32,
    segment: usize,
    rng_seed: u64,
    counter: u64,
}

impl RegimeTrend {
    pub fn new(slope_scale: f32, segment: usize, seed: u64) -> Self {
        Self {
            slope: 0.0,
            level: 0.0,
            steps_left: 0,
            slope_scale,
            segment,
            rng_seed: seed,
            counter: 0,
        }
    }

    /// Advances one step and returns the current trend level. The level is
    /// mean-reverting (weak pull toward zero) so train and test regions stay
    /// on comparable levels, as in de-trended operational data — a pure
    /// random walk would make the held-out split systematically offset.
    pub fn next(&mut self, rng: &mut Rng) -> f32 {
        if self.steps_left == 0 {
            self.slope = rng.normal() * self.slope_scale;
            self.steps_left = self.segment / 2 + rng.below(self.segment.max(1));
            self.counter = self.counter.wrapping_add(self.rng_seed);
        }
        self.steps_left -= 1;
        self.level = 0.995 * self.level + self.slope;
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_mix_is_periodic() {
        let periods = [24.0];
        let amps = [1.0];
        let phases = [0.3];
        let a = seasonal_mix(5, &periods, &amps, &phases);
        let b = seasonal_mix(5 + 24, &periods, &amps, &phases);
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn regime_trend_moves() {
        let mut rng = Rng::seed_from(1);
        let mut trend = RegimeTrend::new(0.05, 50, 1);
        let path: Vec<f32> = (0..500).map(|_| trend.next(&mut rng)).collect();
        let range = path.iter().copied().fold(f32::NEG_INFINITY, f32::max)
            - path.iter().copied().fold(f32::INFINITY, f32::min);
        assert!(range > 0.1, "trend should wander, range {range}");
    }
}
