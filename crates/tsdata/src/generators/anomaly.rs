//! Anomaly-detection streams — stand-ins for the five benchmark datasets of
//! Table VIII (SMD, MSL, SMAP, SWaT, PSM).
//!
//! Each stream has a *normal* regime (multi-period seasonal dynamics with
//! channel coupling and noise) used for training, and a test segment
//! contaminated with labelled anomalies of four kinds: point spikes, level
//! shifts, variance bursts, and correlation breaks. This matches the
//! reconstruction-based protocol (Sec. IV-E): train on normal data only,
//! flag test points whose reconstruction error is large.

use super::seasonal_mix;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Specification of one anomaly benchmark stream.
#[derive(Clone, Debug)]
pub struct AnomalySpec {
    /// Dataset name, matching Table VIII.
    pub name: &'static str,
    /// Channel count (capped vs the paper where large).
    pub channels: usize,
    /// Training steps (normal regime only).
    pub train_steps: usize,
    /// Test steps (contaminated).
    pub test_steps: usize,
    /// Fraction of test points that are anomalous.
    pub anomaly_ratio: f32,
    /// Seasonal periods of the normal dynamics.
    pub periods: Vec<f32>,
    /// Observation noise.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

/// A generated stream: train split (normal), test split, and point labels.
pub struct AnomalyStream {
    /// The generating spec.
    pub spec: AnomalySpec,
    /// Normal training data `[C, train_steps]`.
    pub train: Tensor,
    /// Contaminated test data `[C, test_steps]`.
    pub test: Tensor,
    /// Per-time-step truth labels for the test split.
    pub labels: Vec<bool>,
}

impl AnomalySpec {
    /// Generates the stream. Deterministic per seed.
    pub fn generate(&self) -> AnomalyStream {
        let mut rng = Rng::seed_from(self.seed);
        let c = self.channels;
        let total = self.train_steps + self.test_steps;

        // Normal dynamics: channel-specific seasonal mixtures + noise.
        let mut phases = Vec::with_capacity(c);
        let mut amps = Vec::with_capacity(c);
        for _ in 0..c {
            phases.push(
                self.periods
                    .iter()
                    .map(|_| rng.uniform() * std::f32::consts::TAU)
                    .collect::<Vec<f32>>(),
            );
            amps.push(
                self.periods
                    .iter()
                    .map(|_| 0.5 + rng.uniform())
                    .collect::<Vec<f32>>(),
            );
        }
        let mut data = vec![0.0f32; c * total];
        for ch in 0..c {
            for t in 0..total {
                data[ch * total + t] =
                    seasonal_mix(t, &self.periods, &amps[ch], &phases[ch])
                        + self.noise * rng.normal();
            }
        }

        // Inject anomalies into the test region only.
        let mut labels = vec![false; self.test_steps];
        let target_points = (self.test_steps as f32 * self.anomaly_ratio) as usize;
        let mut injected = 0usize;
        while injected < target_points {
            let kind = rng.below(4);
            let len = match kind {
                0 => 1,                      // point spike
                1 => 10 + rng.below(30),     // level shift
                2 => 10 + rng.below(20),     // variance burst
                _ => 10 + rng.below(20),     // correlation break
            };
            let start = rng.below(self.test_steps.saturating_sub(len).max(1));
            let affected: Vec<usize> = {
                // Anomalies hit a subset of channels.
                let k = 1 + rng.below(c.max(1));
                let mut chs: Vec<usize> = (0..c).collect();
                rng.shuffle(&mut chs);
                chs.truncate(k.min(3));
                chs
            };
            for dt in 0..len {
                let t = self.train_steps + start + dt;
                for &ch in &affected {
                    let v = &mut data[ch * total + t];
                    match kind {
                        0 => *v += (4.0 + 4.0 * rng.uniform()) * if rng.uniform() < 0.5 { 1.0 } else { -1.0 },
                        1 => *v += 3.0,
                        2 => *v += 3.0 * rng.normal(),
                        _ => *v = -*v + 2.0 * rng.normal(),
                    }
                }
                if !labels[start + dt] {
                    labels[start + dt] = true;
                    injected += 1;
                }
            }
        }

        // Split.
        let mut train = vec![0.0f32; c * self.train_steps];
        let mut test = vec![0.0f32; c * self.test_steps];
        for ch in 0..c {
            train[ch * self.train_steps..(ch + 1) * self.train_steps]
                .copy_from_slice(&data[ch * total..ch * total + self.train_steps]);
            test[ch * self.test_steps..(ch + 1) * self.test_steps]
                .copy_from_slice(&data[ch * total + self.train_steps..(ch + 1) * total]);
        }
        AnomalyStream {
            spec: self.clone(),
            train: Tensor::from_vec(&[c, self.train_steps], train),
            test: Tensor::from_vec(&[c, self.test_steps], test),
            labels,
        }
    }
}

/// The five anomaly benchmarks of Table VIII as synthetic stand-ins.
/// Channel counts follow the paper (MSL 55→24, SWaT 51→24 capped); lengths
/// are scaled down; anomaly ratios approximate the originals.
pub fn anomaly_datasets() -> Vec<AnomalySpec> {
    vec![
        AnomalySpec { name: "SMD", channels: 24, train_steps: 4000, test_steps: 4000, anomaly_ratio: 0.042, periods: vec![50.0, 200.0], noise: 0.25, seed: 301 },
        AnomalySpec { name: "MSL", channels: 24, train_steps: 3000, test_steps: 3000, anomaly_ratio: 0.105, periods: vec![40.0, 160.0], noise: 0.35, seed: 302 },
        AnomalySpec { name: "SMAP", channels: 25, train_steps: 3500, test_steps: 3500, anomaly_ratio: 0.128, periods: vec![60.0, 240.0], noise: 0.3, seed: 303 },
        AnomalySpec { name: "SWaT", channels: 24, train_steps: 4000, test_steps: 4000, anomaly_ratio: 0.121, periods: vec![100.0, 25.0], noise: 0.2, seed: 304 },
        AnomalySpec { name: "PSM", channels: 25, train_steps: 3500, test_steps: 3000, anomaly_ratio: 0.278, periods: vec![80.0, 20.0], noise: 0.3, seed: 305 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_viii_rows() {
        let specs = anomaly_datasets();
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["SMD", "MSL", "SMAP", "SWaT", "PSM"]);
    }

    #[test]
    fn shapes_and_labels_consistent() {
        for spec in anomaly_datasets() {
            let s = spec.generate();
            assert_eq!(s.train.shape(), &[spec.channels, spec.train_steps]);
            assert_eq!(s.test.shape(), &[spec.channels, spec.test_steps]);
            assert_eq!(s.labels.len(), spec.test_steps);
        }
    }

    #[test]
    fn anomaly_ratio_is_approximately_respected() {
        let spec = anomaly_datasets()[0].clone();
        let s = spec.generate();
        let ratio = s.labels.iter().filter(|&&l| l).count() as f32 / s.labels.len() as f32;
        assert!(
            (ratio - spec.anomaly_ratio).abs() < 0.02,
            "ratio {ratio} vs spec {}",
            spec.anomaly_ratio
        );
    }

    #[test]
    fn anomalous_points_deviate_more_than_normal() {
        let spec = anomaly_datasets()[0].clone();
        let s = spec.generate();
        let t = spec.test_steps;
        // Mean |value| at anomalous vs normal test positions (channel max).
        let mut anom = 0.0f32;
        let mut anom_n = 0;
        let mut norm = 0.0f32;
        let mut norm_n = 0;
        for (ti, &lbl) in s.labels.iter().enumerate() {
            let m = (0..spec.channels)
                .map(|c| s.test.data()[c * t + ti].abs())
                .fold(0.0f32, f32::max);
            if lbl {
                anom += m;
                anom_n += 1;
            } else {
                norm += m;
                norm_n += 1;
            }
        }
        let anom_mean = anom / anom_n.max(1) as f32;
        let norm_mean = norm / norm_n.max(1) as f32;
        assert!(
            anom_mean > norm_mean * 1.1,
            "anomalies not distinguishable: {anom_mean} vs {norm_mean}"
        );
    }

    #[test]
    fn train_split_is_label_free_normal_data() {
        // The train region must look like the normal regime: bounded values.
        let spec = anomaly_datasets()[1].clone();
        let s = spec.generate();
        let max = s.train.abs().max_all();
        // Normal regime: seasonal amplitudes ≤ ~2.5 sum + noise.
        assert!(max < 8.0, "train split contains outliers: max {max}");
    }
}
