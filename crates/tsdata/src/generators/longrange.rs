//! Long-range multivariate datasets — stand-ins for the eight long-term
//! forecasting benchmarks of Table III (ETTm1/m2, ETTh1/h2, Electricity,
//! Traffic, Weather, Exchange).
//!
//! Each generator produces one long `[C, T]` series combining: multi-scale
//! seasonality (the sampling-frequency analogue of daily/weekly cycles),
//! regime trend, cross-channel coupling through a random mixing matrix,
//! channel-specific phase/amplitude diversity, and observation noise.
//! Exchange is intentionally different: a correlated random walk with no
//! seasonality, matching the character of exchange-rate data (linear/naive
//! methods are competitive there — a crossover the paper's Table IV shows).

use super::{seasonal_mix, RegimeTrend};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Specification of one long-range dataset.
#[derive(Clone, Debug)]
pub struct LongRangeSpec {
    /// Dataset name, matching the paper's Table III rows.
    pub name: &'static str,
    /// Channel count. Electricity/Traffic are capped versus the paper's
    /// 321/862 for CPU-budget reasons (documented in EXPERIMENTS.md).
    pub channels: usize,
    /// Total time steps generated (scaled down from Table III).
    pub total_steps: usize,
    /// Human-readable sampling frequency (informational, from Table III).
    pub frequency: &'static str,
    /// Seasonal periods in steps (e.g. daily cycle at 15-min sampling = 96).
    pub periods: Vec<f32>,
    /// Seasonal amplitude scale.
    pub seasonal_amp: f32,
    /// Trend slope scale (0 disables trend).
    pub trend_scale: f32,
    /// Observation noise standard deviation.
    pub noise: f32,
    /// Cross-channel coupling strength in [0, 1].
    pub coupling: f32,
    /// Pure random walk instead of seasonal structure (Exchange).
    pub random_walk: bool,
    /// Number of alternating seasonal regimes. Real operational series
    /// (ETT load, traffic) switch between patterns (weekday/weekend,
    /// heating/cooling seasons); with ≥2 regimes the *conditional* forecast
    /// depends nonlinearly on which pattern the window shows, so purely
    /// linear models fit the regime-average while nonlinear multi-channel
    /// models can do better — the behaviour Table IV exercises.
    pub regimes: usize,
    /// Mean regime duration in steps (regime boundaries are shared across
    /// channels, rewarding cross-channel inference).
    pub regime_len: usize,
    /// RNG seed so every run regenerates identical data.
    pub seed: u64,
}

impl LongRangeSpec {
    /// Generates the `[C, T]` series for this spec. Deterministic per seed.
    pub fn generate(&self) -> Tensor {
        let mut rng = Rng::seed_from(self.seed);
        let c = self.channels;
        let t_total = self.total_steps;

        if self.random_walk {
            return self.generate_random_walk(&mut rng);
        }

        // Hidden regime sequence, shared across channels.
        let n_regimes = self.regimes.max(1);
        let regime_at: Vec<usize> = {
            let mut seq = Vec::with_capacity(t_total);
            let mut current = 0usize;
            let mut remaining = 0usize;
            while seq.len() < t_total {
                if remaining == 0 {
                    current = rng.below(n_regimes);
                    remaining = self.regime_len / 2 + rng.below(self.regime_len.max(1));
                }
                seq.push(current);
                remaining -= 1;
            }
            seq
        };

        // Latent factors: a couple of shared seasonal/trend drivers that
        // channels mix, producing realistic cross-channel correlation. Each
        // factor has regime-specific phases and amplitudes.
        let n_factors = 3.min(c.max(1));
        let mut factor_series = vec![vec![0.0f32; t_total]; n_factors];
        for (fi, series) in factor_series.iter_mut().enumerate() {
            let regime_params: Vec<(Vec<f32>, Vec<f32>)> = (0..n_regimes)
                .map(|_| {
                    let phases: Vec<f32> = self
                        .periods
                        .iter()
                        .map(|_| rng.uniform() * std::f32::consts::TAU)
                        .collect();
                    let amps: Vec<f32> = self
                        .periods
                        .iter()
                        .enumerate()
                        .map(|(i, _)| {
                            self.seasonal_amp * (0.4 + 1.2 * rng.uniform())
                                / (1.0 + 0.5 * i as f32)
                        })
                        .collect();
                    (phases, amps)
                })
                .collect();
            let mut trend = RegimeTrend::new(self.trend_scale, 200, self.seed + fi as u64);
            for (t, v) in series.iter_mut().enumerate() {
                let (phases, amps) = &regime_params[regime_at[t]];
                *v = seasonal_mix(t, &self.periods, amps, phases) + trend.next(&mut rng);
            }
        }

        let mut data = vec![0.0f32; c * t_total];
        for ch in 0..c {
            // Channel-specific seasonal component, also regime-dependent.
            let regime_params: Vec<(Vec<f32>, Vec<f32>)> = (0..n_regimes)
                .map(|_| {
                    let phases: Vec<f32> = self
                        .periods
                        .iter()
                        .map(|_| rng.uniform() * std::f32::consts::TAU)
                        .collect();
                    let amps: Vec<f32> = self
                        .periods
                        .iter()
                        .map(|_| self.seasonal_amp * (0.5 + rng.uniform()))
                        .collect();
                    (phases, amps)
                })
                .collect();
            // Mixing weights over latent factors.
            let weights: Vec<f32> = (0..n_factors).map(|_| rng.normal()).collect();
            let own_scale = 1.0 - self.coupling;
            let offset = rng.normal() * 2.0;
            let row = &mut data[ch * t_total..(ch + 1) * t_total];
            for (t, v) in row.iter_mut().enumerate() {
                let (phases, amps) = &regime_params[regime_at[t]];
                let own = seasonal_mix(t, &self.periods, amps, phases);
                let shared: f32 = weights
                    .iter()
                    .zip(&factor_series)
                    .map(|(w, f)| w * f[t])
                    .sum::<f32>()
                    / (n_factors as f32).sqrt();
                *v = offset + own_scale * own + self.coupling * shared + self.noise * rng.normal();
            }
        }
        Tensor::from_vec(&[c, t_total], data)
    }

    fn generate_random_walk(&self, rng: &mut Rng) -> Tensor {
        let c = self.channels;
        let t_total = self.total_steps;
        let mut data = vec![0.0f32; c * t_total];
        // A shared drift factor couples the walks, like co-moving FX rates.
        let shared: Vec<f32> = {
            let mut level = 0.0f32;
            (0..t_total)
                .map(|_| {
                    level += 0.01 * rng.normal();
                    level
                })
                .collect()
        };
        for ch in 0..c {
            let w = self.coupling * rng.normal();
            let mut level = rng.normal();
            let row = &mut data[ch * t_total..(ch + 1) * t_total];
            for (t, v) in row.iter_mut().enumerate() {
                level += self.noise * 0.1 * rng.normal();
                *v = level + w * shared[t];
            }
        }
        Tensor::from_vec(&[c, t_total], data)
    }
}

/// The eight long-term forecasting datasets of Table III, as synthetic
/// stand-ins. Channel counts for Electricity and Traffic are capped (321→32,
/// 862→32); total lengths are scaled to keep CPU training tractable while
/// preserving several thousand sliding windows per dataset.
pub fn long_term_datasets() -> Vec<LongRangeSpec> {
    vec![
        LongRangeSpec {
            name: "ETTm1",
            channels: 7,
            total_steps: 6000,
            frequency: "15 mins",
            periods: vec![96.0, 672.0, 24.0],
            seasonal_amp: 1.0,
            trend_scale: 0.004,
            noise: 0.3,
            coupling: 0.5,
            random_walk: false,
            regimes: 3,
            regime_len: 2200,
            seed: 101,
        },
        LongRangeSpec {
            name: "ETTm2",
            channels: 7,
            total_steps: 6000,
            frequency: "15 mins",
            periods: vec![96.0, 672.0],
            seasonal_amp: 0.8,
            trend_scale: 0.008,
            noise: 0.5,
            coupling: 0.4,
            random_walk: false,
            regimes: 2,
            regime_len: 2000,
            seed: 102,
        },
        LongRangeSpec {
            name: "ETTh1",
            channels: 7,
            total_steps: 4000,
            frequency: "1 hour",
            periods: vec![24.0, 168.0, 12.0],
            seasonal_amp: 1.0,
            trend_scale: 0.005,
            noise: 0.35,
            coupling: 0.5,
            random_walk: false,
            regimes: 3,
            regime_len: 1400,
            seed: 103,
        },
        LongRangeSpec {
            name: "ETTh2",
            channels: 7,
            total_steps: 4000,
            frequency: "1 hour",
            periods: vec![24.0, 168.0],
            seasonal_amp: 0.7,
            trend_scale: 0.01,
            noise: 0.6,
            coupling: 0.4,
            random_walk: false,
            regimes: 2,
            regime_len: 1300,
            seed: 104,
        },
        LongRangeSpec {
            name: "Electricity",
            channels: 32, // paper: 321 (capped; see EXPERIMENTS.md)
            total_steps: 4000,
            frequency: "10 mins",
            periods: vec![144.0, 1008.0, 72.0],
            seasonal_amp: 1.2,
            trend_scale: 0.002,
            noise: 0.25,
            coupling: 0.6,
            random_walk: false,
            regimes: 3,
            regime_len: 1500,
            seed: 105,
        },
        LongRangeSpec {
            name: "Traffic",
            channels: 32, // paper: 862 (capped; see EXPERIMENTS.md)
            total_steps: 4000,
            frequency: "1 hour",
            periods: vec![24.0, 168.0],
            seasonal_amp: 1.5,
            trend_scale: 0.001,
            noise: 0.3,
            coupling: 0.7,
            random_walk: false,
            regimes: 2,
            regime_len: 1400,
            seed: 106,
        },
        LongRangeSpec {
            name: "Weather",
            channels: 21,
            total_steps: 5000,
            frequency: "10 mins",
            periods: vec![144.0, 36.0],
            seasonal_amp: 0.9,
            trend_scale: 0.006,
            noise: 0.45,
            coupling: 0.45,
            random_walk: false,
            regimes: 3,
            regime_len: 1600,
            seed: 107,
        },
        LongRangeSpec {
            name: "Exchange",
            channels: 8,
            total_steps: 4000,
            frequency: "1 day",
            periods: vec![],
            seasonal_amp: 0.0,
            trend_scale: 0.0,
            noise: 1.0,
            coupling: 0.5,
            random_walk: true,
            regimes: 1,
            regime_len: 1000,
            seed: 108,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_tensor::stats::acf;

    #[test]
    fn registry_matches_table_iii_structure() {
        let specs = long_term_datasets();
        assert_eq!(specs.len(), 8);
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["ETTm1", "ETTm2", "ETTh1", "ETTh2", "Electricity", "Traffic", "Weather", "Exchange"]
        );
        // Paper channel counts preserved where uncapped.
        assert_eq!(specs[0].channels, 7);
        assert_eq!(specs[6].channels, 21);
        assert_eq!(specs[7].channels, 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &long_term_datasets()[0];
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn shapes_match_spec() {
        for spec in long_term_datasets() {
            let data = spec.generate();
            assert_eq!(data.shape(), &[spec.channels, spec.total_steps], "{}", spec.name);
            assert!(data.data().iter().all(|v| v.is_finite()), "{}", spec.name);
        }
    }

    #[test]
    fn seasonal_datasets_have_periodic_acf() {
        let spec = long_term_datasets()
            .into_iter()
            .find(|s| s.name == "ETTh1")
            .unwrap();
        let data = spec.generate();
        let t = spec.total_steps;
        let ch0 = &data.data()[..t];
        let coeffs = acf(&ch0[..2000], 30);
        // A daily (24-step) cycle shows up as positive ACF at lag 24.
        assert!(coeffs[23] > 0.2, "lag-24 acf {}", coeffs[23]);
    }

    #[test]
    fn exchange_is_nonstationary_random_walk() {
        let spec = long_term_datasets()
            .into_iter()
            .find(|s| s.name == "Exchange")
            .unwrap();
        let data = spec.generate();
        let t = spec.total_steps;
        let ch0 = &data.data()[..t];
        // Random walks have ACF ≈ 1 at small lags (nonstationary).
        let coeffs = acf(ch0, 5);
        assert!(coeffs[0] > 0.95, "lag-1 acf {}", coeffs[0]);
    }

    #[test]
    fn channels_are_correlated_when_coupled() {
        let spec = long_term_datasets()
            .into_iter()
            .find(|s| s.name == "Traffic")
            .unwrap();
        let data = spec.generate();
        let t = spec.total_steps;
        // Average |corr| between first channels should be clearly nonzero.
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let ma = a.iter().sum::<f32>() / a.len() as f32;
            let mb = b.iter().sum::<f32>() / b.len() as f32;
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (&x, &y) in a.iter().zip(b) {
                num += (x - ma) * (y - mb);
                da += (x - ma) * (x - ma);
                db += (y - mb) * (y - mb);
            }
            num / (da.sqrt() * db.sqrt() + 1e-9)
        };
        let mut total = 0.0f32;
        let mut count = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                total += corr(
                    &data.data()[i * t..(i + 1) * t],
                    &data.data()[j * t..(j + 1) * t],
                )
                .abs();
                count += 1;
            }
        }
        let avg = total / count as f32;
        assert!(avg > 0.1, "average |corr| {avg}");
    }
}
