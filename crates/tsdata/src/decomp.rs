//! Classical moving-average series decomposition — the trend/seasonal
//! baseline the paper contrasts with learned decomposition (Sec. IV-H), and
//! the building block of the DLinear baseline.

/// Centred moving average of `series` with the given (odd or even) window;
/// edges are padded by repeating the boundary values, matching the padding
/// convention of the Autoformer/DLinear series-decomposition block.
pub fn moving_average(series: &[f32], window: usize) -> Vec<f32> {
    assert!(window >= 1, "window must be >= 1");
    let n = series.len();
    if n == 0 {
        return vec![];
    }
    let front = (window - 1) / 2;
    let back = window - 1 - front;
    // Padded view: front copies of the first value, back copies of the last.
    let get = |i: isize| -> f32 {
        if i < 0 {
            series[0]
        } else if i as usize >= n {
            series[n - 1]
        } else {
            series[i as usize]
        }
    };
    let mut out = Vec::with_capacity(n);
    // Running-sum sliding window over the padded sequence.
    let mut sum = 0.0f64;
    for k in -(front as isize)..=(back as isize) {
        sum += get(k) as f64;
    }
    out.push((sum / window as f64) as f32);
    for t in 1..n {
        sum += get(t as isize + back as isize) as f64;
        sum -= get(t as isize - 1 - front as isize) as f64;
        out.push((sum / window as f64) as f32);
    }
    out
}

/// Splits a series into `(trend, remainder)` with a moving average — the
/// "series decomposition" of DLinear/Autoformer.
pub fn trend_remainder(series: &[f32], window: usize) -> (Vec<f32>, Vec<f32>) {
    let trend = moving_average(series, window);
    let remainder = series.iter().zip(&trend).map(|(&x, &t)| x - t).collect();
    (trend, remainder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let s = vec![1.0, 5.0, 2.0];
        assert_eq!(moving_average(&s, 1), s);
    }

    #[test]
    fn constant_series_unchanged() {
        let s = vec![3.0; 10];
        let t = moving_average(&s, 5);
        assert!(t.iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn smooths_an_alternating_series() {
        let s: Vec<f32> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let t = moving_average(&s, 4);
        // Interior values average to 0.
        assert!(t[10].abs() < 0.3, "t[10]={}", t[10]);
    }

    #[test]
    fn running_sum_matches_naive() {
        let s: Vec<f32> = (0..30).map(|i| ((i * 37) % 11) as f32).collect();
        let fast = moving_average(&s, 7);
        // Naive recomputation.
        let n = s.len();
        let front = 3isize;
        #[allow(clippy::needless_range_loop)]
        for t in 0..n {
            let mut sum = 0.0f32;
            for k in -front..=3 {
                let idx = (t as isize + k).clamp(0, n as isize - 1) as usize;
                sum += s[idx];
            }
            assert!((fast[t] - sum / 7.0).abs() < 1e-4, "t={t}");
        }
    }

    #[test]
    fn trend_plus_remainder_reconstructs() {
        let s: Vec<f32> = (0..50).map(|i| (i as f32 * 0.3).sin() + 0.1 * i as f32).collect();
        let (trend, rem) = trend_remainder(&s, 9);
        for ((&x, &t), &r) in s.iter().zip(&trend).zip(&rem) {
            assert!((x - (t + r)).abs() < 1e-5);
        }
    }

    #[test]
    fn trend_captures_slow_component() {
        // trend of (linear + fast sine) stays close to the linear part.
        let s: Vec<f32> = (0..100)
            .map(|i| 0.1 * i as f32 + (i as f32 * 2.0).sin())
            .collect();
        let (trend, _) = trend_remainder(&s, 25);
        let mid_err: f32 = (30..70)
            .map(|i| (trend[i] - 0.1 * i as f32).abs())
            .sum::<f32>()
            / 40.0;
        assert!(mid_err < 0.3, "trend error {mid_err}");
    }
}
