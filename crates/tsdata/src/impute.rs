//! Classical imputation references: linear interpolation and mean fill.
//! Lower bounds for the learned imputers of Table VII.

use msd_tensor::Tensor;

/// Fills missing positions (mask 0) of each row of `data` (`[C, T]` or any
/// `[..., T]`) by linear interpolation between the nearest observed
/// neighbours; leading/trailing gaps repeat the nearest observed value.
/// Rows with no observations are filled with zeros.
pub fn linear_interpolate(data: &Tensor, observed_mask: &Tensor) -> Tensor {
    assert_eq!(data.shape(), observed_mask.shape(), "mask shape mismatch");
    let t = *data.shape().last().expect("scalar input");
    let mut out = data.clone();
    let rows = data.len() / t;
    for r in 0..rows {
        let mask = &observed_mask.data()[r * t..(r + 1) * t];
        let row = &mut out.data_mut()[r * t..(r + 1) * t];
        let observed: Vec<usize> = (0..t).filter(|&i| mask[i] != 0.0).collect();
        if observed.is_empty() {
            row.iter_mut().for_each(|v| *v = 0.0);
            continue;
        }
        for i in 0..t {
            if mask[i] != 0.0 {
                continue;
            }
            // Nearest observed neighbours on each side.
            let left = observed.iter().rev().find(|&&j| j < i).copied();
            let right = observed.iter().find(|&&j| j > i).copied();
            row[i] = match (left, right) {
                (Some(l), Some(rr)) => {
                    let frac = (i - l) as f32 / (rr - l) as f32;
                    row[l] * (1.0 - frac) + row[rr] * frac
                }
                (Some(l), None) => row[l],
                (None, Some(rr)) => row[rr],
                (None, None) => unreachable!("observed nonempty"),
            };
        }
    }
    out
}

/// Fills missing positions with the per-row mean of the observed values.
pub fn mean_fill(data: &Tensor, observed_mask: &Tensor) -> Tensor {
    assert_eq!(data.shape(), observed_mask.shape(), "mask shape mismatch");
    let t = *data.shape().last().expect("scalar input");
    let mut out = data.clone();
    let rows = data.len() / t;
    for r in 0..rows {
        let mask = &observed_mask.data()[r * t..(r + 1) * t];
        let row = &mut out.data_mut()[r * t..(r + 1) * t];
        let (mut sum, mut n) = (0.0f32, 0usize);
        for i in 0..t {
            if mask[i] != 0.0 {
                sum += row[i];
                n += 1;
            }
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f32 };
        for i in 0..t {
            if mask[i] == 0.0 {
                row[i] = mean;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_neighbours() {
        let data = Tensor::from_vec(&[1, 5], vec![0.0, 999.0, 999.0, 3.0, 4.0]);
        let mask = Tensor::from_vec(&[1, 5], vec![1.0, 0.0, 0.0, 1.0, 1.0]);
        let filled = linear_interpolate(&data, &mask);
        assert!((filled.data()[1] - 1.0).abs() < 1e-6);
        assert!((filled.data()[2] - 2.0).abs() < 1e-6);
        // Observed values untouched.
        assert_eq!(filled.data()[0], 0.0);
        assert_eq!(filled.data()[3], 3.0);
    }

    #[test]
    fn edges_repeat_nearest() {
        let data = Tensor::from_vec(&[1, 4], vec![9.0, 5.0, 9.0, 9.0]);
        let mask = Tensor::from_vec(&[1, 4], vec![0.0, 1.0, 0.0, 0.0]);
        let filled = linear_interpolate(&data, &mask);
        assert_eq!(filled.data(), &[5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn all_missing_row_becomes_zero() {
        let data = Tensor::from_vec(&[1, 3], vec![7.0, 7.0, 7.0]);
        let mask = Tensor::zeros(&[1, 3]);
        assert_eq!(linear_interpolate(&data, &mask).data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_fill_uses_observed_mean() {
        let data = Tensor::from_vec(&[1, 4], vec![2.0, 0.0, 4.0, 0.0]);
        let mask = Tensor::from_vec(&[1, 4], vec![1.0, 0.0, 1.0, 0.0]);
        let filled = mean_fill(&data, &mask);
        assert_eq!(filled.data(), &[2.0, 3.0, 4.0, 3.0]);
    }
}
