//! Sliding-window sampling and mini-batch iteration.

use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// A chronological split of one long series, in the 70/10/20
/// train/validation/test convention of the benchmark suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// First 70 % of windows.
    Train,
    /// Next 10 %.
    Val,
    /// Final 20 %.
    Test,
}

/// Enumerates `(input, target)` sliding windows over a long series
/// `[C, T]`: inputs of length `input_len`, targets of the following
/// `horizon` steps, at stride 1, split chronologically.
pub struct SlidingWindows<'a> {
    data: &'a Tensor,
    input_len: usize,
    horizon: usize,
    /// Start offsets of the windows belonging to the selected split.
    starts: Vec<usize>,
}

impl<'a> SlidingWindows<'a> {
    /// Builds the window index for `split` over `data` of shape `[C, T]`.
    ///
    /// # Panics
    /// Panics if the series is too short for even one window.
    pub fn new(data: &'a Tensor, input_len: usize, horizon: usize, split: Split) -> Self {
        assert_eq!(data.ndim(), 2, "expected [C, T]");
        let t_total = data.shape()[1];
        assert!(
            t_total >= input_len + horizon,
            "series of length {t_total} too short for {input_len}+{horizon} windows"
        );
        let num_windows = t_total - input_len - horizon + 1;
        let train_end = (num_windows as f32 * 0.7) as usize;
        let val_end = (num_windows as f32 * 0.8) as usize;
        let range = match split {
            Split::Train => 0..train_end,
            Split::Val => train_end..val_end,
            Split::Test => val_end..num_windows,
        };
        Self {
            data,
            input_len,
            horizon,
            starts: range.collect(),
        }
    }

    /// Number of windows in this split.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Materialises window `i` as `(x of [C, input_len], y of [C, horizon])`.
    pub fn get(&self, i: usize) -> (Tensor, Tensor) {
        let start = self.starts[i];
        let x = self.data.narrow(1, start, self.input_len);
        let y = self.data.narrow(1, start + self.input_len, self.horizon);
        (x, y)
    }

    /// Stacks the windows at `indices` into batched `([B, C, L], [B, C, H])`.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let c = self.data.shape()[0];
        let mut xs = Vec::with_capacity(indices.len() * c * self.input_len);
        let mut ys = Vec::with_capacity(indices.len() * c * self.horizon);
        for &i in indices {
            let (x, y) = self.get(i);
            xs.extend_from_slice(x.data());
            ys.extend_from_slice(y.data());
        }
        (
            Tensor::from_vec(&[indices.len(), c, self.input_len], xs),
            Tensor::from_vec(&[indices.len(), c, self.horizon], ys),
        )
    }
}

/// Shuffled mini-batch index iterator (one epoch).
pub struct Batcher {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Batcher {
    /// Creates an epoch over `n` samples with the given batch size,
    /// shuffled when `rng` is provided.
    pub fn new(n: usize, batch_size: usize, rng: Option<&mut Rng>) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..n).collect();
        if let Some(rng) = rng {
            rng.shuffle(&mut order);
        }
        Self {
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Resumes a partially consumed epoch from a checkpointed shuffle
    /// `order`, skipping the first `next_batch` batches. The remaining
    /// batches are exactly those an uninterrupted iteration would have
    /// produced, which is what makes mid-epoch training resume
    /// bit-identical.
    pub fn resume(order: Vec<usize>, batch_size: usize, next_batch: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let cursor = (next_batch * batch_size).min(order.len());
        Self {
            order,
            batch_size,
            cursor,
        }
    }

    /// The epoch's (possibly shuffled) sample order, for checkpointing.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Index of the next batch this iterator will yield.
    pub fn next_batch_index(&self) -> usize {
        self.cursor / self.batch_size
    }
}

impl Iterator for Batcher {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(t: usize) -> Tensor {
        Tensor::from_vec(&[2, t], (0..2 * t).map(|i| i as f32).collect())
    }

    #[test]
    fn batcher_resume_yields_exactly_the_remaining_batches() {
        let mut rng = Rng::seed_from(17);
        let full = Batcher::new(23, 4, Some(&mut rng));
        let order = full.order().to_vec();
        let all: Vec<Vec<usize>> = full.collect();
        for skip in 0..=all.len() {
            let resumed: Vec<Vec<usize>> =
                Batcher::resume(order.clone(), 4, skip).collect();
            assert_eq!(resumed, all[skip..].to_vec(), "skip {skip}");
        }
        // A cursor past the end yields nothing rather than panicking.
        assert_eq!(Batcher::resume(order, 4, 99).count(), 0);
    }

    #[test]
    fn split_sizes_partition_windows() {
        let data = series(120);
        let n_total = 120 - 24 - 12 + 1;
        let train = SlidingWindows::new(&data, 24, 12, Split::Train);
        let val = SlidingWindows::new(&data, 24, 12, Split::Val);
        let test = SlidingWindows::new(&data, 24, 12, Split::Test);
        assert_eq!(train.len() + val.len() + test.len(), n_total);
        assert!(train.len() > val.len());
        assert!(test.len() > val.len());
    }

    #[test]
    fn windows_are_chronological_and_contiguous() {
        let data = series(60);
        let w = SlidingWindows::new(&data, 10, 5, Split::Train);
        let (x, y) = w.get(0);
        // Channel 0 starts at value 0; window 0 covers steps 0..10 then 10..15.
        assert_eq!(x.at(&[0, 0]), 0.0);
        assert_eq!(x.at(&[0, 9]), 9.0);
        assert_eq!(y.at(&[0, 0]), 10.0);
        let (x1, _) = w.get(1);
        assert_eq!(x1.at(&[0, 0]), 1.0);
    }

    #[test]
    fn test_split_comes_after_train() {
        let data = series(100);
        let train = SlidingWindows::new(&data, 10, 5, Split::Train);
        let test = SlidingWindows::new(&data, 10, 5, Split::Test);
        let (x_last_train, _) = train.get(train.len() - 1);
        let (x_first_test, _) = test.get(0);
        assert!(x_first_test.at(&[0, 0]) > x_last_train.at(&[0, 0]));
    }

    #[test]
    fn batch_stacks_windows() {
        let data = series(60);
        let w = SlidingWindows::new(&data, 10, 5, Split::Train);
        let (x, y) = w.batch(&[0, 2]);
        assert_eq!(x.shape(), &[2, 2, 10]);
        assert_eq!(y.shape(), &[2, 2, 5]);
        assert_eq!(x.at(&[1, 0, 0]), 2.0);
    }

    #[test]
    fn batcher_covers_every_index_once() {
        let mut rng = Rng::seed_from(5);
        let batches: Vec<Vec<usize>> = Batcher::new(10, 3, Some(&mut rng)).collect();
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batcher_unshuffled_is_ordered() {
        let batches: Vec<Vec<usize>> = Batcher::new(5, 2, None).collect();
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_too_short_series() {
        let data = series(10);
        let _ = SlidingWindows::new(&data, 10, 5, Split::Train);
    }
}
