//! Per-channel standardisation, fit on the training portion only — the
//! preprocessing convention of the benchmark suite (losses and metrics are
//! computed in standardised space).

use msd_tensor::Tensor;

/// Z-score scaler with per-channel mean and standard deviation.
#[derive(Clone, Debug)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits on the first `fit_steps` time steps of `data` (`[C, T]`) — pass
    /// the training-split length to avoid test leakage.
    pub fn fit(data: &Tensor, fit_steps: usize) -> Self {
        assert_eq!(data.ndim(), 2, "expected [C, T]");
        let (c, t_total) = (data.shape()[0], data.shape()[1]);
        let n = fit_steps.min(t_total).max(1);
        let mut mean = Vec::with_capacity(c);
        let mut std = Vec::with_capacity(c);
        for ch in 0..c {
            let row = &data.data()[ch * t_total..ch * t_total + n];
            let m = row.iter().sum::<f32>() / n as f32;
            let v = row.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / n as f32;
            mean.push(m);
            std.push(v.sqrt().max(1e-6));
        }
        Self { mean, std }
    }

    /// Standardises `data` of shape `[C, T]` (or `[B, C, T]`).
    pub fn transform(&self, data: &Tensor) -> Tensor {
        let shape = data.shape().to_vec();
        let (c_axis, t) = match shape.len() {
            2 => (0, shape[1]),
            3 => (1, shape[2]),
            _ => panic!("expected [C, T] or [B, C, T], got {shape:?}"),
        };
        assert_eq!(shape[c_axis], self.mean.len(), "channel count mismatch");
        let mut out = data.clone();
        let c = self.mean.len();
        let rows = out.len() / t;
        for r in 0..rows {
            let ch = r % c;
            let row = &mut out.data_mut()[r * t..(r + 1) * t];
            let (m, s) = (self.mean[ch], self.std[ch]);
            for v in row {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Inverts [`StandardScaler::transform`].
    pub fn inverse(&self, data: &Tensor) -> Tensor {
        let shape = data.shape().to_vec();
        let (c_axis, t) = match shape.len() {
            2 => (0, shape[1]),
            3 => (1, shape[2]),
            _ => panic!("expected [C, T] or [B, C, T], got {shape:?}"),
        };
        assert_eq!(shape[c_axis], self.mean.len(), "channel count mismatch");
        let mut out = data.clone();
        let c = self.mean.len();
        let rows = out.len() / t;
        for r in 0..rows {
            let ch = r % c;
            let row = &mut out.data_mut()[r * t..(r + 1) * t];
            let (m, s) = (self.mean[ch], self.std[ch]);
            for v in row {
                *v = *v * s + m;
            }
        }
        out
    }

    /// Per-channel means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Per-channel standard deviations.
    pub fn std(&self) -> &[f32] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_tensor::rng::Rng;

    #[test]
    fn transform_standardises_fit_region() {
        let mut rng = Rng::seed_from(9);
        let data = Tensor::randn(&[3, 500], 4.0, &mut rng).add_scalar(10.0);
        let scaler = StandardScaler::fit(&data, 500);
        let z = scaler.transform(&data);
        for ch in 0..3 {
            let row = &z.data()[ch * 500..(ch + 1) * 500];
            let m = row.iter().sum::<f32>() / 500.0;
            let v = row.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 500.0;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-3, "var {v}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = Rng::seed_from(10);
        let data = Tensor::randn(&[2, 100], 3.0, &mut rng).add_scalar(-5.0);
        let scaler = StandardScaler::fit(&data, 70);
        let z = scaler.transform(&data);
        let back = scaler.inverse(&z);
        assert!(msd_tensor::allclose(&back, &data, 1e-4));
    }

    #[test]
    fn fit_ignores_test_region() {
        // A huge shift in the tail must not affect the statistics.
        let mut data = Tensor::ones(&[1, 100]);
        for v in &mut data.data_mut()[70..] {
            *v = 1000.0;
        }
        let scaler = StandardScaler::fit(&data, 70);
        assert!((scaler.mean()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transform_handles_batched_input() {
        let data = Tensor::from_vec(&[2, 4], vec![0.0, 2.0, 0.0, 2.0, 10.0, 14.0, 10.0, 14.0]);
        let scaler = StandardScaler::fit(&data, 4);
        let batch = data.reshape(&[1, 2, 4]);
        let z = scaler.transform(&batch);
        assert_eq!(z.shape(), &[1, 2, 4]);
        assert!((z.at(&[0, 0, 0]) + 1.0).abs() < 1e-5);
        assert!((z.at(&[0, 1, 1]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_channel_does_not_divide_by_zero() {
        let data = Tensor::full(&[1, 50], 7.0);
        let scaler = StandardScaler::fit(&data, 50);
        let z = scaler.transform(&data);
        assert!(z.data().iter().all(|v| v.is_finite()));
    }
}
