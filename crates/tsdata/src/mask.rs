//! Observation masks for the imputation task (Sec. IV-D): random positions
//! are marked missing and replaced by zeros at the model input; the model is
//! scored on how well it recovers them.

use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Draws a random observation mask of the given shape: 1 = observed,
/// 0 = missing, with `missing_ratio` of positions missing in expectation.
pub fn random_observed_mask(shape: &[usize], missing_ratio: f32, rng: &mut Rng) -> Tensor {
    assert!(
        (0.0..=1.0).contains(&missing_ratio),
        "missing ratio in [0,1]"
    );
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|_| if rng.uniform() < missing_ratio { 0.0 } else { 1.0 })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Applies a mask: observed positions keep their value, missing positions
/// become zero — the model-input convention of the benchmark suite.
pub fn apply_mask(data: &Tensor, observed_mask: &Tensor) -> Tensor {
    data.mul(observed_mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ratio_is_approximate() {
        let mut rng = Rng::seed_from(11);
        let mask = random_observed_mask(&[100, 100], 0.25, &mut rng);
        let missing = mask.data().iter().filter(|&&m| m == 0.0).count() as f32 / 10_000.0;
        assert!((missing - 0.25).abs() < 0.02, "missing fraction {missing}");
    }

    #[test]
    fn mask_is_binary() {
        let mut rng = Rng::seed_from(12);
        let mask = random_observed_mask(&[50], 0.5, &mut rng);
        assert!(mask.data().iter().all(|&m| m == 0.0 || m == 1.0));
    }

    #[test]
    fn apply_mask_zeroes_missing() {
        let data = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let mask = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
        let masked = apply_mask(&data, &mask);
        assert_eq!(masked.data(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn zero_ratio_keeps_everything() {
        let mut rng = Rng::seed_from(13);
        let mask = random_observed_mask(&[64], 0.0, &mut rng);
        assert!(mask.data().iter().all(|&m| m == 1.0));
    }
}
