#![warn(missing_docs)]

//! # msd-data
//!
//! Synthetic time-series datasets and data utilities for the MSD-Mixer
//! reproduction.
//!
//! The paper evaluates on 26 public datasets (Tables III, V, VIII, X). Those
//! archives are not available offline, so this crate generates synthetic
//! stand-ins that preserve the *structural* properties each task stresses —
//! multi-scale seasonality, trend, channel coupling, regime noise, anomaly
//! contamination, and class-discriminative temporal patterns — at the same
//! (occasionally capped) dimensionalities. DESIGN.md §2 documents each
//! substitution.
//!
//! Contents:
//!
//! * [`generators`] — one module per paper benchmark family;
//! * [`window`] — sliding-window samplers and batch iterators;
//! * [`scaler`] — per-channel standardisation fit on the train split;
//! * [`mask`] — random observation masks for the imputation task;
//! * [`decomp`] — classical moving-average decomposition (case-study
//!   reference).

pub mod decomp;
pub mod impute;
pub mod generators;
pub mod mask;
pub mod scaler;
pub mod window;

pub use generators::anomaly::{anomaly_datasets, AnomalySpec, AnomalyStream};
pub use generators::classification::{classification_datasets, ClassSpec, LabeledDataset};
pub use generators::longrange::{long_term_datasets, LongRangeSpec};
pub use generators::m4like::{m4_subsets, M4Collection, M4Spec};
pub use mask::{apply_mask, random_observed_mask};
pub use scaler::StandardScaler;
pub use window::{Batcher, SlidingWindows, Split};
