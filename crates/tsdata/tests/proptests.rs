//! Property-based tests for the dataset substrate.

use msd_data::decomp::{moving_average, trend_remainder};
use msd_data::{
    random_observed_mask, Batcher, LongRangeSpec, SlidingWindows, Split, StandardScaler,
};
use msd_tensor::{rng::Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn splits_partition_and_order(t_total in 60usize..400, input in 8usize..24, horizon in 1usize..16) {
        let data = Tensor::from_vec(&[1, t_total], (0..t_total).map(|i| i as f32).collect());
        if t_total < input + horizon { return Ok(()); }
        let train = SlidingWindows::new(&data, input, horizon, Split::Train);
        let val = SlidingWindows::new(&data, input, horizon, Split::Val);
        let test = SlidingWindows::new(&data, input, horizon, Split::Test);
        let n_total = t_total - input - horizon + 1;
        prop_assert_eq!(train.len() + val.len() + test.len(), n_total);
        // Chronological: last train window starts before first test window.
        if !train.is_empty() && !test.is_empty() {
            let (a, _) = train.get(train.len() - 1);
            let (b, _) = test.get(0);
            prop_assert!(a.at(&[0, 0]) < b.at(&[0, 0]));
        }
    }

    #[test]
    fn window_xy_are_contiguous(t_total in 60usize..200, seed in 0u64..500) {
        let (input, horizon) = (10usize, 5usize);
        let mut rng = Rng::seed_from(seed);
        let data = Tensor::randn(&[2, t_total], 1.0, &mut rng);
        let w = SlidingWindows::new(&data, input, horizon, Split::Train);
        if w.is_empty() { return Ok(()); }
        let i = seed as usize % w.len();
        let (x, y) = w.get(i);
        // y starts exactly where x ends in the source series.
        // Find x's start by matching channel 0 value.
        prop_assert_eq!(x.shape(), &[2, input]);
        prop_assert_eq!(y.shape(), &[2, horizon]);
    }

    #[test]
    fn scaler_inverse_is_exact(c in 1usize..5, t in 20usize..100, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let data = Tensor::randn(&[c, t], 3.0, &mut rng).add_scalar(5.0);
        let scaler = StandardScaler::fit(&data, t * 7 / 10);
        let z = scaler.transform(&data);
        prop_assert!(msd_tensor::allclose(&scaler.inverse(&z), &data, 1e-3));
    }

    #[test]
    fn mask_ratio_concentrates(ratio in 0.05f32..0.95, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let mask = random_observed_mask(&[4000], ratio, &mut rng);
        let missing = mask.data().iter().filter(|&&m| m == 0.0).count() as f32 / 4000.0;
        prop_assert!((missing - ratio).abs() < 0.05);
    }

    #[test]
    fn batcher_is_partition(n in 1usize..200, bs in 1usize..32, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let mut seen: Vec<usize> = Batcher::new(n, bs, Some(&mut rng)).flatten().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn moving_average_bounded_by_input_range(n in 4usize..100, w in 1usize..12, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let s: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let lo = s.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for v in moving_average(&s, w) {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    #[test]
    fn trend_plus_remainder_reconstructs_exactly(n in 4usize..80, w in 1usize..10, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let s: Vec<f32> = (0..n).map(|_| rng.normal() * 3.0).collect();
        let (trend, rem) = trend_remainder(&s, w);
        for ((&x, &t), &r) in s.iter().zip(&trend).zip(&rem) {
            prop_assert!((x - (t + r)).abs() < 1e-4);
        }
    }

    #[test]
    fn long_range_generation_bounded_and_finite(seed in 0u64..200) {
        let spec = LongRangeSpec {
            name: "prop",
            channels: 3,
            total_steps: 400,
            frequency: "test",
            periods: vec![24.0],
            seasonal_amp: 1.0,
            trend_scale: 0.01,
            noise: 0.3,
            coupling: 0.5,
            random_walk: false,
            regimes: 2,
            regime_len: 150,
            seed,
        };
        let data = spec.generate();
        prop_assert!(data.data().iter().all(|v| v.is_finite()));
        // Mean-reverting trend keeps magnitudes sane.
        prop_assert!(data.abs().max_all() < 50.0);
    }
}
