//! End-to-end gateway tests over real sockets: endpoint behaviour,
//! byte-identity of predictions with sequential `Model::predict`, routing
//! determinism, typed overload, all-or-nothing swap, drained shutdown, and
//! the seeded hot-swap-under-load property (zero lost, byte-identical per
//! admitted version).

use std::time::Duration;

use msd_gateway::http::Client;
use msd_gateway::loadgen::{run_tcp_open_loop, TcpLoadSpec, TcpRequest};
use msd_gateway::router::route;
use msd_gateway::{wire, Gateway, GatewayConfig, ModelFactory};
use msd_nn::{Ctx, DynModel, Linear, Model, ModelOutput, ParamStore, Task};
use msd_serve::ServeConfig;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// A linear forecaster over the flattened input — the same shape of test
/// model the serve suite uses, with a parameterised init seed so distinct
/// "versions" of the same architecture have distinct numbers.
struct Affine {
    task: Task,
    lin: Linear,
    out_channels: usize,
    in_len: usize,
}

const CHANNELS: usize = 2;
const LEN: usize = 6;
const HORIZON: usize = 4;

impl Affine {
    fn new(store: &mut ParamStore, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        Affine {
            task: Task::Forecast { horizon: HORIZON },
            lin: Linear::new(
                store,
                &mut rng,
                "affine",
                CHANNELS * LEN,
                CHANNELS * HORIZON,
            ),
            out_channels: CHANNELS,
            in_len: CHANNELS * LEN,
        }
    }
}

impl Model for Affine {
    fn name(&self) -> &str {
        "affine"
    }
    fn task(&self) -> &Task {
        &self.task
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        let b = x.shape()[0];
        let v = ctx.g.input(x.reshape(&[b, self.in_len]));
        let y = self.lin.forward(ctx, v);
        ModelOutput::pred_only(ctx.g.reshape(y, &[b, self.out_channels, HORIZON]))
    }
}

/// [`Affine`] with a per-sample delay, for queue-pressure tests.
struct SlowAffine(Affine, Duration);

impl Model for SlowAffine {
    fn name(&self) -> &str {
        "slow-affine"
    }
    fn task(&self) -> &Task {
        self.0.task()
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        std::thread::sleep(self.1);
        self.0.forward(ctx, x)
    }
}

fn affine_factory(seed: u64) -> ModelFactory {
    Box::new(move || {
        let mut store = ParamStore::new();
        let model = Affine::new(&mut store, seed);
        (Box::new(model) as DynModel, store)
    })
}

fn slow_factory(seed: u64, delay: Duration) -> ModelFactory {
    Box::new(move || {
        let mut store = ParamStore::new();
        let model = SlowAffine(Affine::new(&mut store, seed), delay);
        (Box::new(model) as DynModel, store)
    })
}

/// An encoded parameter blob for the Affine architecture at `seed`.
fn params_blob(seed: u64) -> Vec<u8> {
    let mut store = ParamStore::new();
    let _ = Affine::new(&mut store, seed);
    msd_nn::store::encode(&store)
}

/// Sequential single-sample reference for the Affine version at `seed`.
fn reference_predict(seed: u64, x: &Tensor) -> Tensor {
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, seed);
    model.predict(&store, x)
}

fn sample(seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(&[1, CHANNELS, LEN], 1.0, &mut rng)
}

fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

fn quick_cfg(replicas: usize) -> GatewayConfig {
    GatewayConfig {
        serve: ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_cap: 256,
            workers: 2,
            events_path: None,
            use_plans: true,
            ..ServeConfig::default()
        },
        replicas,
        ..GatewayConfig::default()
    }
}

#[test]
fn endpoints_answer_and_predictions_are_bit_identical_to_sequential() {
    let gw = Gateway::bind("127.0.0.1:0", quick_cfg(2)).unwrap();
    gw.registry()
        .register("fc", affine_factory(11), None)
        .unwrap();
    let addr = gw.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // Health and listings.
    let health = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(health.status, 200);
    let health_body = String::from_utf8(health.body).unwrap();
    assert!(health_body.contains("\"status\":\"ok\""), "{health_body}");
    assert!(health_body.contains("\"fc\""), "{health_body}");
    let listing = client.request("GET", "/v1/models", &[], b"").unwrap();
    assert_eq!(listing.status, 200);
    let listing_body = String::from_utf8(listing.body).unwrap();
    assert!(
        listing_body.contains("{\"name\":\"fc\",\"version\":1,\"tier\":\"f32\"}"),
        "{listing_body}"
    );

    // Predictions: byte-identical to sequential predict, with the routing
    // contract visible in the replica header.
    for i in 0..16u64 {
        let x = sample(500 + i);
        let key = format!("series-{i}");
        let resp = client
            .request(
                "POST",
                "/v1/models/fc/predict",
                &[("X-Msd-Key", key.as_str())],
                &wire::encode_tensor(&x),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.header("content-type"), Some(wire::CONTENT_TYPE));
        assert_eq!(resp.header("x-msd-model-version"), Some("1"));
        let replica: usize = resp.header("x-msd-replica").unwrap().parse().unwrap();
        assert_eq!(replica, route(key.as_bytes(), 2), "routing contract");
        let y = wire::decode_tensor(&resp.body).unwrap();
        assert_bits_equal(&y, &reference_predict(11, &x), &format!("req {i}"));
    }

    // Stats expose the traffic just driven.
    let stats = client.request("GET", "/stats", &[], b"").unwrap();
    assert_eq!(stats.status, 200);
    let stats_body = String::from_utf8(stats.body).unwrap();
    assert!(stats_body.contains("\"model\":\"fc\""), "{stats_body}");
    assert!(stats_body.contains("\"submitted\":16"), "{stats_body}");

    gw.shutdown();
}

#[test]
fn error_paths_map_to_typed_statuses() {
    let gw = Gateway::bind("127.0.0.1:0", quick_cfg(1)).unwrap();
    gw.registry()
        .register("fc", affine_factory(11), None)
        .unwrap();
    let addr = gw.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let frame = wire::encode_tensor(&sample(1));

    // Unknown model.
    let r = client
        .request("POST", "/v1/models/nope/predict", &[], &frame)
        .unwrap();
    assert_eq!(r.status, 404);
    assert!(String::from_utf8(r.body).unwrap().contains("\"error\""));
    // Unknown paths and unsupported method.
    assert_eq!(client.request("GET", "/nope", &[], b"").unwrap().status, 404);
    assert_eq!(
        client
            .request("POST", "/v1/models//predict", &[], &frame)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client.request("PUT", "/healthz", &[], b"").unwrap().status,
        405
    );
    // Bad frame bytes.
    let r = client
        .request("POST", "/v1/models/fc/predict", &[], b"garbage")
        .unwrap();
    assert_eq!(r.status, 400);
    // Wrong leading batch axis.
    let mut rng = Rng::seed_from(3);
    let batch2 = Tensor::randn(&[2, CHANNELS, LEN], 1.0, &mut rng);
    let r = client
        .request(
            "POST",
            "/v1/models/fc/predict",
            &[],
            &wire::encode_tensor(&batch2),
        )
        .unwrap();
    assert_eq!(r.status, 400);
    // The connection stayed healthy through all of that.
    let r = client
        .request("POST", "/v1/models/fc/predict", &[], &frame)
        .unwrap();
    assert_eq!(r.status, 200);
    gw.shutdown();
}

#[test]
fn swap_is_all_or_nothing_and_versions_are_byte_accurate() {
    let gw = Gateway::bind("127.0.0.1:0", quick_cfg(2)).unwrap();
    gw.registry()
        .register("fc", affine_factory(11), None)
        .unwrap();
    let addr = gw.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let x = sample(900);
    let frame = wire::encode_tensor(&x);

    // A garbage blob is rejected and the old version keeps serving.
    let r = client
        .request("POST", "/v1/models/fc/swap", &[], b"not a param store")
        .unwrap();
    assert_eq!(r.status, 400);
    let r = client
        .request("POST", "/v1/models/fc/predict", &[], &frame)
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-msd-model-version"), Some("1"));
    assert_bits_equal(
        &wire::decode_tensor(&r.body).unwrap(),
        &reference_predict(11, &x),
        "post-failed-swap",
    );

    // Swapping an unknown model is 404.
    let r = client
        .request("POST", "/v1/models/nope/swap", &[], &params_blob(31))
        .unwrap();
    assert_eq!(r.status, 404);

    // A valid blob publishes version 3 (the failed attempt consumed 2) and
    // predictions now match the new parameters bit-for-bit.
    let r = client
        .request("POST", "/v1/models/fc/swap", &[], &params_blob(31))
        .unwrap();
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    let swap_body = String::from_utf8(r.body).unwrap();
    assert!(swap_body.contains("\"model\":\"fc\""), "{swap_body}");
    let r = client
        .request("POST", "/v1/models/fc/predict", &[], &frame)
        .unwrap();
    assert_eq!(r.status, 200);
    assert_bits_equal(
        &wire::decode_tensor(&r.body).unwrap(),
        &reference_predict(31, &x),
        "post-swap",
    );
    gw.shutdown();
}

#[test]
fn overload_answers_429_and_loses_nothing() {
    let mut cfg = quick_cfg(1);
    cfg.serve = ServeConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_cap: 2,
        workers: 1,
        events_path: None,
        use_plans: true,
        ..ServeConfig::default()
    };
    let gw = Gateway::bind("127.0.0.1:0", cfg).unwrap();
    gw.registry()
        .register(
            "slow",
            slow_factory(11, Duration::from_millis(5)),
            None,
        )
        .unwrap();
    let addr = gw.local_addr().to_string();

    let requests: Vec<TcpRequest> = (0..40u64)
        .map(|i| TcpRequest {
            model: "slow".into(),
            key: format!("k{i}"),
            body: wire::encode_tensor(&sample(i)),
        })
        .collect();
    // 8 concurrent connections against queue_cap 2 and one 5 ms/sample
    // worker: admission pressure is guaranteed.
    let outcome = run_tcp_open_loop(
        &addr,
        &requests,
        &TcpLoadSpec {
            rate_rps: 0.0,
            connections: 8,
            seed: 1,
            max_burst: 0,
            ..TcpLoadSpec::default()
        },
    );
    assert_eq!(outcome.lost(), 0, "no request may vanish");
    let ok = outcome.count_status(200);
    let rejected = outcome.count_status(429);
    assert_eq!(ok + rejected, 40, "only 200 and 429 expected");
    assert!(ok > 0, "some requests must get through");
    assert!(rejected > 0, "queue_cap 2 under 8 connections must shed");
    // Shed requests carry the typed JSON error.
    let shed = outcome
        .responses
        .iter()
        .flatten()
        .find(|r| r.status == 429)
        .unwrap();
    assert!(String::from_utf8(shed.body.clone())
        .unwrap()
        .contains("admission queue full"));
    gw.shutdown();
}

#[test]
fn shutdown_drains_the_in_flight_request() {
    let gw = Gateway::bind("127.0.0.1:0", quick_cfg(1)).unwrap();
    gw.registry()
        .register(
            "slow",
            slow_factory(11, Duration::from_millis(80)),
            None,
        )
        .unwrap();
    let addr = gw.local_addr().to_string();
    let x = sample(7);
    let handle = std::thread::spawn(move || {
        let mut client = Client::connect(&addr).unwrap();
        client
            .request(
                "POST",
                "/v1/models/slow/predict",
                &[],
                &wire::encode_tensor(&x),
            )
            .unwrap()
    });
    // Let the request reach the worker, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(30));
    gw.shutdown();
    let resp = handle.join().unwrap();
    assert_eq!(resp.status, 200, "in-flight request must drain, not drop");
    assert_bits_equal(
        &wire::decode_tensor(&resp.body).unwrap(),
        &reference_predict(11, &sample(7)),
        "drained response",
    );
}

/// Satellite 4: the seeded hot-swap property. A sustained paced load runs
/// while the model is swapped mid-flight; zero requests are lost, and every
/// response is byte-identical to sequential `Model::predict` under whichever
/// version the gateway says admitted it.
#[test]
fn hot_swap_under_sustained_load_is_lossless_and_byte_identical() {
    const SEED_V1: u64 = 11;
    const SEED_V2: u64 = 31;
    const REQUESTS: usize = 300;

    let gw = Gateway::bind("127.0.0.1:0", quick_cfg(2)).unwrap();
    gw.registry()
        .register("fc", affine_factory(SEED_V1), None)
        .unwrap();
    let addr = gw.local_addr().to_string();

    let inputs: Vec<Tensor> = (0..REQUESTS as u64).map(|i| sample(3000 + i)).collect();
    let requests: Vec<TcpRequest> = inputs
        .iter()
        .enumerate()
        .map(|(i, x)| TcpRequest {
            model: "fc".into(),
            key: format!("key-{i}"),
            body: wire::encode_tensor(x),
        })
        .collect();

    // ~1.5 s of paced load; the swap lands ~250 ms in, so both versions see
    // real traffic.
    let spec = TcpLoadSpec {
        rate_rps: 200.0,
        connections: 4,
        seed: 42,
        max_burst: 16,
        ..TcpLoadSpec::default()
    };
    let swap_addr = addr.clone();
    let swapper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        let mut client = Client::connect(&swap_addr).unwrap();
        let r = client
            .request("POST", "/v1/models/fc/swap", &[], &params_blob(SEED_V2))
            .unwrap();
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    });
    let outcome = run_tcp_open_loop(&addr, &requests, &spec);
    swapper.join().unwrap();

    assert_eq!(outcome.lost(), 0, "hot swap must not lose a single request");
    let mut seen = [0usize; 2];
    for (i, resp) in outcome.responses.iter().enumerate() {
        let resp = resp.as_ref().unwrap();
        assert_eq!(resp.status, 200, "request {i}");
        let version = resp.version.expect("version header echoed");
        let seed = match version {
            1 => SEED_V1,
            2 => SEED_V2,
            v => panic!("request {i}: impossible version {v}"),
        };
        seen[version as usize - 1] += 1;
        let replica = resp.replica.expect("replica header echoed");
        assert_eq!(
            replica,
            route(format!("key-{i}").as_bytes(), 2),
            "request {i}: routing must stay deterministic across the swap"
        );
        assert_bits_equal(
            &wire::decode_tensor(&resp.body).unwrap(),
            &reference_predict(seed, &inputs[i]),
            &format!("request {i} (version {version})"),
        );
    }
    assert!(
        seen[0] > 0 && seen[1] > 0,
        "both versions must serve real traffic, saw {seen:?}"
    );
    gw.shutdown();
}

/// An encoded Affine parameter blob at an explicit precision tier.
fn tiered_blob(seed: u64, tier: msd_nn::PrecisionTier) -> Vec<u8> {
    let mut store = ParamStore::new();
    let _ = Affine::new(&mut store, seed);
    msd_nn::ArtifactWriter::new(tier)
        .encode(&store)
        .expect("affine weights are finite")
}

/// Sequential reference for the Affine version at `seed` served from a
/// `tier` artifact: predict on the round-tripped store for f32/f16 (plans
/// are bit-identical to predict), a lowered plan for int8 (bit-identical
/// across kernel tiers, thread counts, and batch compositions).
fn tiered_reference(seed: u64, tier: msd_nn::PrecisionTier, x: &Tensor) -> Tensor {
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, seed);
    msd_nn::ArtifactReader::decode(&tiered_blob(seed, tier))
        .and_then(|r| r.load_into(&mut store))
        .unwrap();
    match tier {
        msd_nn::PrecisionTier::Int8 => {
            let mut plan = model.compile_plan(&store, x.shape()).unwrap();
            assert!(plan.lower_int8(&store) > 0, "affine must lower to int8");
            model.predict_plan(&plan, &store, x, &mut msd_autograd::PlanArena::new())
        }
        _ => model.predict(&store, x),
    }
}

#[test]
fn quantized_tiers_round_the_gateway_with_no_silent_fallback() {
    use msd_nn::PrecisionTier;

    let gw = Gateway::bind("127.0.0.1:0", quick_cfg(2)).unwrap();
    gw.registry()
        .register_tiered(
            "fc",
            affine_factory(11),
            Some(&tiered_blob(11, PrecisionTier::Int8)),
            Some(PrecisionTier::Int8),
        )
        .unwrap();
    let addr = gw.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // The listing declares the serving tier.
    let listing = client.request("GET", "/v1/models", &[], b"").unwrap();
    let listing_body = String::from_utf8(listing.body).unwrap();
    assert!(
        listing_body.contains("{\"name\":\"fc\",\"version\":1,\"tier\":\"int8\"}"),
        "{listing_body}"
    );

    // Predictions echo the tier and match the lowered-plan reference bits.
    for i in 0..6u64 {
        let x = sample(700 + i);
        let resp = client
            .request("POST", "/v1/models/fc/predict", &[], &wire::encode_tensor(&x))
            .unwrap();
        assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.header("x-msd-tier"), Some("int8"));
        assert_bits_equal(
            &wire::decode_tensor(&resp.body).unwrap(),
            &tiered_reference(11, PrecisionTier::Int8, &x),
            &format!("int8 req {i}"),
        );
    }

    // Stats carry the per-model tier and the per-tier aggregate.
    let stats = client.request("GET", "/stats", &[], b"").unwrap();
    let stats_body = String::from_utf8(stats.body).unwrap();
    assert!(stats_body.contains("\"tier\":\"int8\""), "{stats_body}");
    assert!(stats_body.contains("\"tiers\":[{\"tier\":\"int8\",\"models\":1"), "{stats_body}");

    // An unknown tier name on swap is a typed 400 before the blob is read.
    let r = client
        .request(
            "POST",
            "/v1/models/fc/swap",
            &[("X-Msd-Tier", "bf16")],
            &tiered_blob(31, PrecisionTier::F16),
        )
        .unwrap();
    assert_eq!(r.status, 400);
    let body = String::from_utf8(r.body).unwrap();
    assert!(body.contains("unknown tier"), "{body}");

    // A declared tier the artifact does not carry is rejected — the old
    // int8 version keeps serving, never a silent fallback.
    let r = client
        .request(
            "POST",
            "/v1/models/fc/swap",
            &[("X-Msd-Tier", "f16")],
            &params_blob(31),
        )
        .unwrap();
    assert_eq!(r.status, 400);
    let body = String::from_utf8(r.body).unwrap();
    assert!(body.contains("precision tier mismatch"), "{body}");
    let x = sample(900);
    let r = client
        .request("POST", "/v1/models/fc/predict", &[], &wire::encode_tensor(&x))
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-msd-tier"), Some("int8"));
    assert_eq!(r.header("x-msd-model-version"), Some("1"));

    // A matching declared tier swaps cleanly and the tier follows.
    let r = client
        .request(
            "POST",
            "/v1/models/fc/swap",
            &[("X-Msd-Tier", "f16")],
            &tiered_blob(31, PrecisionTier::F16),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
    let body = String::from_utf8(r.body).unwrap();
    assert!(body.contains("\"tier\":\"f16\""), "{body}");
    let r = client
        .request("POST", "/v1/models/fc/predict", &[], &wire::encode_tensor(&x))
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-msd-tier"), Some("f16"));
    assert_bits_equal(
        &wire::decode_tensor(&r.body).unwrap(),
        &tiered_reference(31, PrecisionTier::F16, &x),
        "post-tier-swap",
    );

    gw.shutdown();
}
