//! Fault-tolerance integration tests: deadlines end to end, breaker
//! trip/reroute/heal on a sick replica, brownout shedding with known-answer
//! `Retry-After`, and the degradation gate — one replica 100% stalled must
//! cost typed errors and a bounded success tail, never hangs or losses.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msd_gateway::http::Client;
use msd_gateway::loadgen::{run_tcp_open_loop, TcpLoadSpec, TcpRequest};
use msd_gateway::router::{route, route_order};
use msd_gateway::{
    BreakerConfig, BreakerState, BrownoutConfig, Gateway, GatewayConfig, GatewayError,
    ModelFactory, Registry,
};
use msd_nn::{Ctx, DynModel, Linear, Model, ModelOutput, ParamStore, Task};
use msd_serve::ServeConfig;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

const CHANNELS: usize = 2;
const LEN: usize = 6;
const HORIZON: usize = 4;

struct Affine {
    task: Task,
    lin: Linear,
}

impl Affine {
    fn new(store: &mut ParamStore) -> Self {
        let mut rng = Rng::seed_from(7);
        Affine {
            task: Task::Forecast { horizon: HORIZON },
            lin: Linear::new(store, &mut rng, "affine", CHANNELS * LEN, CHANNELS * HORIZON),
        }
    }
}

impl Model for Affine {
    fn name(&self) -> &str {
        "affine"
    }
    fn task(&self) -> &Task {
        &self.task
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        let b = x.shape()[0];
        let v = ctx.g.input(x.reshape(&[b, CHANNELS * LEN]));
        let y = self.lin.forward(ctx, v);
        ModelOutput::pred_only(ctx.g.reshape(y, &[b, CHANNELS, HORIZON]))
    }
}

/// [`Affine`] that stalls `stall` per forward while the shared switch is on.
struct Sickable {
    inner: Affine,
    sick: Arc<AtomicBool>,
    stall: Duration,
}

impl Model for Sickable {
    fn name(&self) -> &str {
        "sickable"
    }
    fn task(&self) -> &Task {
        self.inner.task()
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        if self.sick.load(Ordering::Relaxed) {
            std::thread::sleep(self.stall);
        }
        self.inner.forward(ctx, x)
    }
}

/// A factory whose FIRST build (replica 0 — the registry builds replicas in
/// index order) carries the sick switch; every later build is plain. This
/// pins the fault to exactly one replica of the set.
fn factory_with_sick_replica0(sick: Arc<AtomicBool>, stall: Duration) -> ModelFactory {
    let builds = AtomicUsize::new(0);
    Box::new(move || {
        let mut store = ParamStore::new();
        let inner = Affine::new(&mut store);
        let n = builds.fetch_add(1, Ordering::Relaxed);
        let switch = if n == 0 {
            sick.clone()
        } else {
            Arc::new(AtomicBool::new(false))
        };
        let model = Sickable {
            inner,
            sick: switch,
            stall,
        };
        (Box::new(model) as DynModel, store)
    })
}

fn sample(seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(&[1, CHANNELS, LEN], 1.0, &mut rng)
}

/// A key whose plain FNV route in a `replicas`-wide set is `want`.
fn key_for_replica(want: usize, replicas: usize) -> String {
    (0..)
        .map(|i| format!("k{i}"))
        .find(|k| route(k.as_bytes(), replicas) == want)
        .unwrap()
}

/// Serve config for fault tests: no batching tricks, forward on the hot
/// path so the sick switch is honored per request.
fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_cap: 256,
        workers: 1,
        events_path: None,
        use_plans: false,
        ..ServeConfig::default()
    }
}

#[test]
fn sick_replica_trips_the_breaker_reroutes_and_heals() {
    let sick = Arc::new(AtomicBool::new(false));
    let registry = Registry::with_policies(
        serve_cfg(),
        2,
        BreakerConfig {
            consecutive_errors: 2,
            cooldown: Duration::from_millis(300),
            half_open_successes: 2,
            ..BreakerConfig::default()
        },
        BrownoutConfig::default(),
        None,
    );
    registry
        .register(
            "m",
            factory_with_sick_replica0(sick.clone(), Duration::from_millis(150)),
            None,
        )
        .unwrap();
    let key = key_for_replica(0, 2);
    let deadline = || Some(Instant::now() + Duration::from_millis(60));

    // Healthy: the key lands on replica 0 and succeeds.
    let ok = registry
        .predict("m", key.as_bytes(), sample(1), deadline())
        .unwrap();
    assert_eq!(ok.replica, 0);

    // Sick: two deadline blow-ups trip the breaker on replica 0.
    sick.store(true, Ordering::Relaxed);
    for i in 0..2 {
        match registry.predict("m", key.as_bytes(), sample(2 + i), deadline()) {
            Err(GatewayError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    let set = registry.current_set("m").unwrap();
    assert_eq!(set.health()[0].state(), BreakerState::Open);
    assert!(
        registry.stats_json().contains("\"breaker\":\"open\""),
        "stats must expose the open breaker: {}",
        registry.stats_json()
    );

    // Open: the same key deterministically reroutes to replica 1 and works.
    for i in 0..3 {
        let ok = registry
            .predict("m", key.as_bytes(), sample(10 + i), deadline())
            .unwrap();
        assert_eq!(ok.replica, 1, "open breaker must reroute");
    }

    // Heal: switch off, drain the stalled backlog, wait out the cooldown.
    sick.store(false, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(500));
    for i in 0..2 {
        let ok = registry
            .predict("m", key.as_bytes(), sample(20 + i), deadline())
            .unwrap();
        assert_eq!(ok.replica, 0, "half-open must probe replica 0 again");
    }
    assert_eq!(set.health()[0].state(), BreakerState::Closed);
    registry.shutdown();
}

#[test]
fn all_breakers_open_still_answers_via_least_bad_fail_static() {
    let sick = Arc::new(AtomicBool::new(false));
    let registry = Registry::with_policies(
        serve_cfg(),
        2,
        BreakerConfig {
            consecutive_errors: 1,
            cooldown: Duration::from_secs(60), // no half-open during the test
            ..BreakerConfig::default()
        },
        BrownoutConfig::default(),
        None,
    );
    // Both replicas plain (switch never flipped): we trip the breakers
    // artificially via the health records to isolate the routing behavior.
    registry
        .register(
            "m",
            factory_with_sick_replica0(sick, Duration::ZERO),
            None,
        )
        .unwrap();
    let set = registry.current_set("m").unwrap();
    set.health()[0].on_error();
    set.health()[1].on_error();
    set.health()[1].on_error(); // replica 1 is "worse": longer error streak
    assert_eq!(set.health()[0].state(), BreakerState::Open);
    assert_eq!(set.health()[1].state(), BreakerState::Open);
    // Fail static: the fleet still answers, on the least-bad replica 0 —
    // regardless of where the key would normally route.
    for i in 0..4u64 {
        let key = format!("any-{i}");
        let ok = registry
            .predict("m", key.as_bytes(), sample(40 + i), None)
            .unwrap();
        assert_eq!(ok.replica, 0, "fail-static must pick the least-bad replica");
    }
    registry.shutdown();
}

#[test]
fn brownout_sheds_with_the_known_answer_retry_after() {
    let sick = Arc::new(AtomicBool::new(true)); // replica 0 always slow
    let registry = Registry::with_policies(
        serve_cfg(),
        1,
        BreakerConfig {
            consecutive_errors: 0, // breakers off: this test is about brownout
            ..BreakerConfig::default()
        },
        BrownoutConfig {
            max_in_flight: 1,
            max_ewma_us: 0,
        },
        None,
    );
    registry
        .register(
            "m",
            factory_with_sick_replica0(sick, Duration::from_millis(400)),
            None,
        )
        .unwrap();
    // Occupy the sole replica (in_flight rises to 1), then hit the brownout.
    let reg = &registry;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let _ = reg.predict("m", b"a", sample(1), None);
        });
        std::thread::sleep(Duration::from_millis(100));
        match reg.predict("m", b"b", sample(2), None) {
            Err(GatewayError::Brownout { retry_after_secs }) => {
                // Known answer: 1 s floor + 0 s wait window + 1/256 queues.
                assert_eq!(retry_after_secs, 1);
            }
            other => panic!("expected Brownout, got {other:?}"),
        }
    });
    registry.shutdown();
}

#[test]
fn deadline_and_brownout_surface_as_typed_http_statuses_with_headers() {
    let sick = Arc::new(AtomicBool::new(true));
    let cfg = GatewayConfig {
        serve: serve_cfg(),
        replicas: 1,
        breaker: BreakerConfig {
            consecutive_errors: 0,
            ..BreakerConfig::default()
        },
        brownout: BrownoutConfig {
            max_in_flight: 1,
            max_ewma_us: 0,
        },
        ..GatewayConfig::default()
    };
    let gw = Gateway::bind("127.0.0.1:0", cfg).unwrap();
    gw.registry()
        .register(
            "m",
            factory_with_sick_replica0(sick, Duration::from_millis(400)),
            None,
        )
        .unwrap();
    let addr = gw.local_addr().to_string();
    let body = msd_gateway::wire::encode_tensor(&sample(1));

    // Bad deadline header → typed 400, not a silent unbounded wait.
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .request(
            "POST",
            "/v1/models/m/predict",
            &[("X-Msd-Deadline-Ms", "soon")],
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 400);

    // Wedge the sole replica, then: a deadlined request must 504 and a
    // surplus request must brownout-429 with the known Retry-After.
    let addr2 = addr.clone();
    let body2 = body.clone();
    let hog = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        c.request("POST", "/v1/models/m/predict", &[], &body2)
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    let resp = client
        .request(
            "POST",
            "/v1/models/m/predict",
            &[("X-Msd-Deadline-Ms", "60")],
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 429, "brownout precedes admission");
    assert_eq!(resp.header("retry-after"), Some("1"), "known-answer hint");
    assert_eq!(hog.join().unwrap().status, 200, "the hog still completes");

    // With brownout quiet again, a too-short deadline surfaces as 504.
    let resp = client
        .request(
            "POST",
            "/v1/models/m/predict",
            &[("X-Msd-Deadline-Ms", "60")],
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 504, "blown deadline is a typed gateway timeout");
    gw.shutdown();
}

#[test]
fn degraded_fleet_answers_everything_typed_with_a_bounded_success_tail() {
    // The degradation gate: one of two replicas 100% stalled. Every request
    // must resolve to 200/429/504 (zero lost, zero hangs) and the p99 of
    // *successes* must stay under 3× the healthy-fleet p99.
    let requests: Vec<TcpRequest> = (0..120)
        .map(|i| TcpRequest {
            model: "m".to_string(),
            key: format!("key-{i}"),
            body: msd_gateway::wire::encode_tensor(&sample(1000 + i as u64)),
        })
        .collect();
    let spec = TcpLoadSpec {
        rate_rps: 0.0,
        connections: 4,
        seed: 11,
        retry_budget: 2,
        deadline_ms: Some(150),
        ..TcpLoadSpec::default()
    };
    let run = |sick_now: bool| {
        let sick = Arc::new(AtomicBool::new(sick_now));
        let cfg = GatewayConfig {
            serve: serve_cfg(),
            replicas: 2,
            breaker: BreakerConfig {
                consecutive_errors: 2,
                // Longer than the measured run: no half-open probe lands a
                // fresh 300 ms stall inside the latency measurement.
                cooldown: Duration::from_secs(30),
                half_open_successes: 2,
                ..BreakerConfig::default()
            },
            ..GatewayConfig::default()
        };
        let gw = Gateway::bind("127.0.0.1:0", cfg).unwrap();
        gw.registry()
            .register(
                "m",
                factory_with_sick_replica0(sick, Duration::from_millis(300)),
                None,
            )
            .unwrap();
        let addr = gw.local_addr().to_string();
        if sick_now {
            // Prime the breaker: the fleet pays for discovering the sick
            // replica once (typed 504s), then the measured load sees the
            // degraded steady state the gate is about.
            let mut c = Client::connect(&addr).unwrap();
            let key = key_for_replica(0, 2);
            let body = msd_gateway::wire::encode_tensor(&sample(1));
            for _ in 0..2 {
                let r = c
                    .request(
                        "POST",
                        "/v1/models/m/predict",
                        &[("X-Msd-Key", key.as_str()), ("X-Msd-Deadline-Ms", "60")],
                        &body,
                    )
                    .unwrap();
                assert_eq!(r.status, 504, "priming request must blow its deadline");
            }
        }
        let outcome = run_tcp_open_loop(&addr, &requests, &spec);
        gw.shutdown();
        outcome
    };

    let healthy = run(false);
    assert_eq!(healthy.lost(), 0);
    let healthy_lat = healthy.ok_latencies_sorted();
    assert_eq!(healthy_lat.len(), requests.len(), "healthy fleet answers all");
    let healthy_p99 =
        msd_serve::percentile(&healthy_lat, 99).max(Duration::from_millis(20).as_micros() as u64);

    let started = Instant::now();
    let degraded = run(true);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "degraded run must not wedge"
    );
    assert_eq!(degraded.lost(), 0, "retries must absorb every transport blip");
    for resp in degraded.responses.iter().flatten() {
        assert!(
            matches!(resp.status, 200 | 429 | 504),
            "untyped degraded status {}",
            resp.status
        );
    }
    let ok = degraded.count_status(200);
    assert!(
        ok > requests.len() / 2,
        "rerouting must keep the majority succeeding, got {ok}"
    );
    let degraded_p99 = msd_serve::percentile(&degraded.ok_latencies_sorted(), 99);
    assert!(
        degraded_p99 < 3 * healthy_p99,
        "success tail blew up: degraded p99 {degraded_p99}us vs healthy p99 {healthy_p99}us"
    );
}

#[test]
fn chaos_run_loses_nothing_and_survivors_are_bit_identical() {
    // Worker panics + stalls + mid-response connection drops, all armed.
    // A retrying client must absorb every injected fault: zero lost
    // requests, only typed statuses, every replica ledger balanced, and
    // every 200 body bit-identical to the sequential oracle.
    use msd_serve::{Chaos, FaultPlan};
    let plan = FaultPlan::parse(
        "seed:42,worker_panic:0.03,worker_stall:0.05,worker_stall_ms:20,conn_drop:0.04",
    )
    .unwrap();
    let chaos = Arc::new(Chaos::new(plan));
    let sick = Arc::new(AtomicBool::new(false)); // never flipped: chaos only
    let cfg = GatewayConfig {
        serve: serve_cfg(),
        replicas: 2,
        chaos: Some(chaos.clone()),
        ..GatewayConfig::default()
    };
    let gw = Gateway::bind("127.0.0.1:0", cfg).unwrap();
    gw.registry()
        .register("m", factory_with_sick_replica0(sick, Duration::ZERO), None)
        .unwrap();
    let addr = gw.local_addr().to_string();

    let inputs: Vec<Tensor> = (0..200).map(|i| sample(5000 + i)).collect();
    let requests: Vec<TcpRequest> = inputs
        .iter()
        .enumerate()
        .map(|(i, x)| TcpRequest {
            model: "m".to_string(),
            key: format!("key-{i}"),
            body: msd_gateway::wire::encode_tensor(x),
        })
        .collect();
    let outcome = run_tcp_open_loop(
        &addr,
        &requests,
        &TcpLoadSpec {
            connections: 4,
            seed: 9,
            retry_budget: 3,
            ..TcpLoadSpec::default()
        },
    );
    assert!(!chaos.fired().is_empty(), "the plan must inject something");
    assert_eq!(outcome.lost(), 0, "retries must absorb every injected fault");
    assert!(
        outcome.retries_total > 0,
        "injected faults must have forced retries"
    );

    // The oracle: a fresh build of the same deterministic architecture.
    let mut store = ParamStore::new();
    let oracle = Affine::new(&mut store);
    for (i, resp) in outcome.responses.iter().enumerate() {
        let resp = resp.as_ref().unwrap();
        assert!(
            matches!(resp.status, 200 | 429 | 500 | 504),
            "untyped status {} on request {i}",
            resp.status
        );
        if resp.status == 200 {
            let got = msd_gateway::wire::decode_tensor(&resp.body).unwrap();
            let want = oracle.predict(&store, &inputs[i]);
            assert_eq!(got.shape(), want.shape(), "request {i}: shape");
            for (j, (a, b)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "request {i} element {j}: chaos corrupted a survivor"
                );
            }
        }
    }
    let set = gw.registry().current_set("m").unwrap();
    for (r, st) in set.stats().iter().enumerate() {
        assert!(st.ledger_balanced(), "replica {r} ledger: {st:?}");
    }
    gw.shutdown();
}

#[test]
fn routing_respects_the_deterministic_failover_order_under_an_open_breaker() {
    // End-to-end flavor of the router property tests: with replica 0's
    // breaker open, every key must land exactly on the first non-0 entry of
    // its route_order — the same answer a fresh gateway with the same
    // breaker state would give.
    let sick = Arc::new(AtomicBool::new(false));
    let registry = Registry::with_policies(
        serve_cfg(),
        3,
        BreakerConfig {
            consecutive_errors: 1,
            cooldown: Duration::from_secs(60),
            ..BreakerConfig::default()
        },
        BrownoutConfig::default(),
        None,
    );
    registry
        .register("m", factory_with_sick_replica0(sick, Duration::ZERO), None)
        .unwrap();
    let set = registry.current_set("m").unwrap();
    set.health()[0].on_error();
    for i in 0..20u64 {
        let key = format!("key-{i}");
        let want = *route_order(key.as_bytes(), 3)
            .iter()
            .find(|&&r| r != 0)
            .unwrap();
        let ok = registry
            .predict("m", key.as_bytes(), sample(60 + i), None)
            .unwrap();
        assert_eq!(ok.replica, want, "key {key}");
    }
    registry.shutdown();
}
