//! Multi-connection open-loop TCP load generation against a live gateway.
//!
//! This is the network-path sibling of [`msd_serve::loadgen`]: the same
//! seeded Poisson arrival schedule and the same [`msd_serve::loadgen::Pacer`]
//! honesty metrics (burst caps, scheduled-vs-actual skew), but driven over
//! real sockets through the gateway's HTTP edge instead of in-process
//! `Server::submit`. Requests are sharded round-robin across `connections`
//! keep-alive TCP connections, each paced against the *global* arrival
//! schedule, so concurrency comes from genuinely concurrent sockets rather
//! than pipelining tricks.
//!
//! The driver records every response verbatim — status, version/replica
//! headers, body bytes — so callers can byte-compare each prediction against
//! a sequential [`msd_nn::Model::predict`] reference for the version that
//! admitted it. A request with *no* response (torn connection) is `lost`;
//! the gateway's contract is that `lost` is zero at any concurrency.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use msd_serve::loadgen::{arrival_offsets, LoadSpec, Pacer};
use msd_serve::percentile;

use crate::http::{Client, ClientConfig, ClientResponse};

/// One request to fire at the gateway.
#[derive(Clone, Debug)]
pub struct TcpRequest {
    /// Model name (routes to `POST /v1/models/{model}/predict`).
    pub model: String,
    /// Routing key, sent as `X-Msd-Key`.
    pub key: String,
    /// Request body: an encoded [`crate::wire`] tensor frame.
    pub body: Vec<u8>,
}

/// Pacing, sharding, and the retry policy for one TCP run.
#[derive(Clone, Debug)]
pub struct TcpLoadSpec {
    /// Mean arrival rate across *all* connections, requests/second. Zero
    /// disables pacing (each connection fires as fast as it gets answers).
    pub rate_rps: f64,
    /// Concurrent keep-alive connections (≥ 1).
    pub connections: usize,
    /// Seed for the arrival schedule *and* the retry-jitter stream.
    pub seed: u64,
    /// Per-connection catch-up burst cap (see [`LoadSpec::max_burst`]).
    pub max_burst: usize,
    /// Extra attempts allowed per request beyond the first. `0` (default)
    /// reproduces the pre-retry driver exactly: one attempt, a transport
    /// failure is `lost`. With a budget, transport errors and retryable
    /// statuses (429/500/503/504) are retried under capped exponential
    /// backoff with seeded jitter.
    pub retry_budget: u32,
    /// First backoff step.
    pub backoff_base: Duration,
    /// Backoff ceiling; also caps an honored `Retry-After` so a server
    /// hint can slow the driver down but never park it for seconds.
    pub backoff_cap: Duration,
    /// When set, every request carries `X-Msd-Deadline-Ms: <this>`.
    pub deadline_ms: Option<u64>,
    /// Socket timeouts for every connection the driver opens.
    pub client: ClientConfig,
}

impl Default for TcpLoadSpec {
    fn default() -> Self {
        TcpLoadSpec {
            rate_rps: 0.0,
            connections: 1,
            seed: 1,
            max_burst: 8,
            retry_budget: 0,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            deadline_ms: None,
            client: ClientConfig::default(),
        }
    }
}

/// SplitMix64 — the jitter stream's mixing function. Pure, so a seeded run
/// replays its exact backoff schedule.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The pause before retry number `attempt` (1 = first retry) of request
/// `request`: capped exponential backoff `base · 2^(attempt-1)` scaled by a
/// seeded jitter factor in `[0.5, 1.0]`. Deterministic in
/// `(seed, request, attempt)` and never above `cap`.
pub fn next_backoff(seed: u64, request: u64, attempt: u32, base: Duration, cap: Duration) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let unit = (splitmix64(seed ^ request.wrapping_mul(0x9e37_79b9) ^ attempt as u64) >> 11) as f64
        / (1u64 << 53) as f64;
    exp.min(cap).mul_f64(0.5 + 0.5 * unit)
}

/// What one request got back, verbatim.
#[derive(Clone, Debug)]
pub struct TcpResponse {
    /// HTTP status.
    pub status: u16,
    /// `X-Msd-Model-Version` header, when present (predict successes).
    pub version: Option<u32>,
    /// `X-Msd-Replica` header, when present.
    pub replica: Option<usize>,
    /// `X-Msd-Tier` header, when present (the serving precision tier).
    pub tier: Option<String>,
    /// Response body bytes, untouched.
    pub body: Vec<u8>,
    /// Request latency (write first byte → last body byte), microseconds.
    /// With retries this spans all attempts, backoff pauses included —
    /// it is what the end user of a retrying client experiences.
    pub latency_us: u64,
    /// Attempts this answer took (1 = no retries).
    pub attempts: u32,
}

/// A whole run, responses in request-index order.
pub struct TcpRunOutcome {
    /// Per-request response, `None` when the connection died before an
    /// answer arrived (a *lost* request — the gateway contract says never).
    pub responses: Vec<Option<TcpResponse>>,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Pacer skew: mean lateness, microseconds (worst connection's mean).
    pub skew_mean_us: f64,
    /// Pacer skew: worst single lateness across connections, microseconds.
    pub skew_max_us: u64,
    /// Total schedule re-anchors across connections.
    pub reanchors: u64,
    /// Attempts fired across all requests (= requests when retries are
    /// off or never needed).
    pub attempts_total: u64,
    /// Attempts beyond each request's first.
    pub retries_total: u64,
}

impl TcpRunOutcome {
    /// Requests that never got any response.
    pub fn lost(&self) -> usize {
        self.responses.iter().filter(|r| r.is_none()).count()
    }

    /// Responses with the given status.
    pub fn count_status(&self, status: u16) -> usize {
        self.responses
            .iter()
            .flatten()
            .filter(|r| r.status == status)
            .count()
    }

    /// Sorted latencies of 200 responses, microseconds.
    pub fn ok_latencies_sorted(&self) -> Vec<u64> {
        let mut lat: Vec<u64> = self
            .responses
            .iter()
            .flatten()
            .filter(|r| r.status == 200)
            .map(|r| r.latency_us)
            .collect();
        lat.sort_unstable();
        lat
    }
}

/// Drives `requests` at `addr` on the seeded open-loop schedule.
///
/// Request `i` goes to connection `i % connections`; each connection paces
/// its share against the shared global schedule, so the aggregate arrival
/// process is the same one [`msd_serve::loadgen::run_open_loop`] would
/// produce in-process. Blocks until every connection finishes.
pub fn run_tcp_open_loop(addr: &str, requests: &[TcpRequest], spec: &TcpLoadSpec) -> TcpRunOutcome {
    let connections = spec.connections.max(1);
    let offsets = arrival_offsets(&LoadSpec {
        requests: requests.len(),
        rate_rps: spec.rate_rps,
        seed: spec.seed,
        max_burst: spec.max_burst,
    });
    let start = Instant::now();
    let mut results: Vec<Option<TcpResponse>> = vec![None; requests.len()];
    let mut skew_mean_us = 0.0f64;
    let mut skew_max_us = 0u64;
    let mut reanchors = 0u64;
    let mut attempts_total = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for c in 0..connections {
            let offsets = &offsets;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect_with(addr, spec.client).ok();
                let mut pacer = Pacer::start(if spec.rate_rps > 0.0 { spec.max_burst } else { 0 });
                let mut out: Vec<(usize, Option<TcpResponse>)> = Vec::new();
                let mut attempts_fired = 0u64;
                for i in (c..requests.len()).step_by(connections) {
                    if spec.rate_rps > 0.0 {
                        pacer.pace(offsets[i]);
                    }
                    let resp = drive_one(addr, &requests[i], i, spec, &mut client);
                    attempts_fired += resp.as_ref().map_or(1 + spec.retry_budget, |r| r.attempts)
                        as u64;
                    out.push((i, resp));
                }
                (
                    out,
                    pacer.skew_mean_us(),
                    pacer.skew_max_us,
                    pacer.reanchors,
                    attempts_fired,
                )
            }));
        }
        for h in handles {
            let (out, mean, max, re, fired) =
                h.join().expect("loadgen connection thread panicked");
            for (i, resp) in out {
                results[i] = resp;
            }
            skew_mean_us = skew_mean_us.max(mean);
            skew_max_us = skew_max_us.max(max);
            reanchors += re;
            attempts_total += fired;
        }
    });
    TcpRunOutcome {
        retries_total: attempts_total.saturating_sub(requests.len() as u64),
        responses: results,
        wall_s: start.elapsed().as_secs_f64(),
        skew_mean_us,
        skew_max_us,
        reanchors,
        attempts_total,
    }
}

/// Whether a status is worth retrying: overload (429), worker panic (500),
/// shutdown (503), and deadline (504) are all transient under chaos or a
/// recovering fleet. 4xx protocol errors are not — the same bytes will
/// fail the same way forever.
fn retryable(status: u16) -> bool {
    matches!(status, 429 | 500 | 503 | 504)
}

/// Runs one request to completion under the spec's retry budget. Returns
/// `None` only when every allowed attempt died at the transport layer —
/// with a budget of 0 this is exactly the old single-shot driver.
fn drive_one(
    addr: &str,
    req: &TcpRequest,
    index: usize,
    spec: &TcpLoadSpec,
    client: &mut Option<Client>,
) -> Option<TcpResponse> {
    let path = format!("/v1/models/{}/predict", req.model);
    let deadline_header = spec.deadline_ms.map(|ms| ms.to_string());
    let sent = Instant::now();
    let max_attempts = 1 + spec.retry_budget;
    for attempt in 1..=max_attempts {
        // One reconnect attempt per try: a died connection must not strand
        // the rest of this shard.
        if client.is_none() {
            *client = Client::connect_with(addr, spec.client).ok();
        }
        let result: Option<ClientResponse> = client.as_mut().and_then(|cl| {
            let mut headers: Vec<(&str, &str)> = vec![
                ("X-Msd-Key", req.key.as_str()),
                ("Content-Type", crate::wire::CONTENT_TYPE),
            ];
            if let Some(ms) = deadline_header.as_deref() {
                headers.push(("X-Msd-Deadline-Ms", ms));
            }
            cl.request("POST", &path, &headers, &req.body).ok()
        });
        match result {
            Some(r) if retryable(r.status) && attempt < max_attempts => {
                // Honor the server's Retry-After hint, capped by the
                // backoff ceiling (the hint is in whole seconds; eating it
                // raw would park a 500-request run for minutes).
                let pause = r
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(|secs| Duration::from_secs(secs).min(spec.backoff_cap));
                std::thread::sleep(pause.unwrap_or_else(|| {
                    next_backoff(
                        spec.seed,
                        index as u64,
                        attempt,
                        spec.backoff_base,
                        spec.backoff_cap,
                    )
                }));
            }
            Some(r) => {
                return Some(TcpResponse {
                    status: r.status,
                    version: r.header("x-msd-model-version").and_then(|v| v.parse().ok()),
                    replica: r.header("x-msd-replica").and_then(|v| v.parse().ok()),
                    tier: r.header("x-msd-tier").map(str::to_string),
                    body: r.body,
                    latency_us: sent.elapsed().as_micros() as u64,
                    attempts: attempt,
                });
            }
            None => {
                *client = None; // force reconnect on the next try
                if attempt < max_attempts {
                    std::thread::sleep(next_backoff(
                        spec.seed,
                        index as u64,
                        attempt,
                        spec.backoff_base,
                        spec.backoff_cap,
                    ));
                }
            }
        }
    }
    None
}

/// One sustained-RPS-vs-latency row of `target/BENCH_gateway.json`.
#[derive(Clone, Debug)]
pub struct GatewayBenchRow {
    /// Scenario label (model mix).
    pub scenario: String,
    /// Requests fired.
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Offered rate, requests/second (0 = unpaced).
    pub offered_rps: f64,
    /// Achieved 200-rate, responses/second of wall clock.
    pub achieved_rps: f64,
    /// 200 responses.
    pub ok: usize,
    /// 429 responses (admission shed).
    pub rejected: usize,
    /// Non-200, non-429 responses.
    pub failed: usize,
    /// Requests with no response at all. The contract: always 0.
    pub lost: usize,
    /// Median request latency over 200s, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Mean pacer lateness (worst connection), microseconds.
    pub skew_mean_us: f64,
    /// Worst single pacer lateness, microseconds.
    pub skew_max_us: u64,
    /// Total schedule re-anchors.
    pub reanchors: u64,
    /// Attempts fired (= `requests` when no retries happened).
    pub attempts: u64,
    /// Attempts beyond each request's first.
    pub retries: u64,
    /// Hedged (duplicate speculative) attempts. The driver never hedges
    /// today; the column exists so rows stay comparable if it ever does.
    pub hedges: u64,
    /// The `MSD_CHAOS` fault plan active during the run (empty = none), so
    /// a regression diff never compares a chaos row against a clean one.
    pub fault_plan: String,
}

impl GatewayBenchRow {
    /// Summarises `outcome` into a row.
    pub fn from_outcome(
        scenario: &str,
        spec: &TcpLoadSpec,
        outcome: &TcpRunOutcome,
    ) -> GatewayBenchRow {
        let ok = outcome.count_status(200);
        let rejected = outcome.count_status(429);
        let lost = outcome.lost();
        let failed = outcome.responses.len() - ok - rejected - lost;
        let lat = outcome.ok_latencies_sorted();
        GatewayBenchRow {
            scenario: scenario.to_string(),
            requests: outcome.responses.len(),
            connections: spec.connections,
            offered_rps: spec.rate_rps,
            achieved_rps: ok as f64 / outcome.wall_s.max(1e-9),
            ok,
            rejected,
            failed,
            lost,
            p50_us: percentile(&lat, 50),
            p95_us: percentile(&lat, 95),
            p99_us: percentile(&lat, 99),
            skew_mean_us: outcome.skew_mean_us,
            skew_max_us: outcome.skew_max_us,
            reanchors: outcome.reanchors,
            attempts: outcome.attempts_total,
            retries: outcome.retries_total,
            hedges: 0,
            fault_plan: std::env::var("MSD_CHAOS").unwrap_or_default(),
        }
    }

    /// Renders the row as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(320);
        let _ = write!(
            s,
            "{{\"scenario\":\"{}\",\"requests\":{},\"connections\":{},\
             \"offered_rps\":{:.1},\"achieved_rps\":{:.2},\"ok\":{},\"rejected\":{},\
             \"failed\":{},\"lost\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
             \"skew_mean_us\":{:.1},\"skew_max_us\":{},\"reanchors\":{},\
             \"attempts\":{},\"retries\":{},\"hedges\":{},\"fault_plan\":\"{}\"}}",
            self.scenario,
            self.requests,
            self.connections,
            self.offered_rps,
            self.achieved_rps,
            self.ok,
            self.rejected,
            self.failed,
            self.lost,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.skew_mean_us,
            self.skew_max_us,
            self.reanchors,
            self.attempts,
            self.retries,
            self.hedges,
            crate::http::json_escape(&self.fault_plan)
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_row_serialises_flat_json_and_counts_add_up() {
        let outcome = TcpRunOutcome {
            responses: vec![
                Some(TcpResponse {
                    status: 200,
                    version: Some(1),
                    replica: Some(0),
                    tier: Some("f32".to_string()),
                    body: vec![1, 2],
                    latency_us: 120,
                    attempts: 2,
                }),
                Some(TcpResponse {
                    status: 429,
                    version: None,
                    replica: None,
                    tier: None,
                    body: vec![],
                    latency_us: 15,
                    attempts: 1,
                }),
                None,
            ],
            wall_s: 0.5,
            skew_mean_us: 3.5,
            skew_max_us: 40,
            reanchors: 0,
            attempts_total: 4,
            retries_total: 1,
        };
        assert_eq!(outcome.lost(), 1);
        assert_eq!(outcome.count_status(200), 1);
        assert_eq!(outcome.ok_latencies_sorted(), vec![120]);
        let spec = TcpLoadSpec {
            rate_rps: 100.0,
            connections: 2,
            seed: 7,
            ..TcpLoadSpec::default()
        };
        let row = GatewayBenchRow::from_outcome("mix", &spec, &outcome);
        assert_eq!(row.ok + row.rejected + row.failed + row.lost, row.requests);
        assert_eq!(row.lost, 1);
        assert_eq!(row.attempts, 4);
        assert_eq!(row.retries, 1);
        let json = row.to_json();
        assert!(json.contains("\"lost\":1"), "{json}");
        assert!(json.contains("\"p50_us\":120"), "{json}");
        assert!(json.contains("\"attempts\":4"), "{json}");
        assert!(json.contains("\"fault_plan\":"), "{json}");
        assert_eq!(json.matches('{').count(), 1, "{json}");
    }

    #[test]
    fn backoff_is_seeded_capped_and_grows() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_millis(200);
        // Deterministic: the same (seed, request, attempt) replays exactly.
        for attempt in 1..=8 {
            assert_eq!(
                next_backoff(42, 7, attempt, base, cap),
                next_backoff(42, 7, attempt, base, cap)
            );
        }
        // Bounded: never above the cap, never below half the (capped) step.
        for request in 0..50u64 {
            for attempt in 1..=10 {
                let d = next_backoff(9, request, attempt, base, cap);
                assert!(d <= cap, "{d:?} above cap");
                assert!(d >= base / 2, "{d:?} below base/2");
            }
        }
        // Jitter actually varies across requests.
        let spread: std::collections::BTreeSet<Duration> =
            (0..20).map(|r| next_backoff(1, r, 3, base, cap)).collect();
        assert!(spread.len() > 10, "jitter collapsed: {spread:?}");
    }
}
