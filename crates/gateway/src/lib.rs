#![warn(missing_docs)]

//! # msd-gateway
//!
//! The network-facing serving edge over [`msd_serve::Server`]: a hermetic
//! (std-only, zero external crates) HTTP/1.1 subset on
//! [`std::net::TcpListener`] in front of a multi-model registry with
//! per-model replica pools, deterministic request routing, admission
//! control, and zero-drop hot-swap.
//!
//! The contracts, in order of importance:
//!
//! 1. **Bit-identity across the wire** — a predict response body decodes to
//!    the exact bytes `Model::predict` produces for the model version named
//!    in the `X-Msd-Model-Version` response header. The binary frame
//!    ([`wire`]) round-trips raw f32 bits, so the socket adds nothing.
//! 2. **Zero dropped requests** — every admitted request is answered, even
//!    across a hot-swap: the old version drains while the new one admits
//!    ([`registry`] documents the swap state machine).
//! 3. **Typed backpressure end-to-end** — a full replica queue surfaces as
//!    HTTP `429` (from [`msd_serve::ServeError::Overloaded`]), never a
//!    hang, never a dropped connection.
//! 4. **Deterministic routing** — the serving replica is a pure function
//!    of the client's `X-Msd-Key` header ([`router`]).
//!
//! ## Endpoints
//!
//! | method & path | body | reply |
//! |---|---|---|
//! | `GET /healthz` | — | `200` `{"status":"ok",...}` |
//! | `GET /stats` | — | `200` per-model [`msd_serve::ServeStats`] JSON |
//! | `GET /v1/models` | — | `200` name/version/tier listing |
//! | `POST /v1/models/{m}/predict` | [`wire`] tensor frame | `200` frame + version/replica/tier headers |
//! | `POST /v1/models/{m}/swap` | `msd_nn` artifact blob | `200` `{"model":...,"version":n,"tier":...}` |
//!
//! Artifacts carry a precision tier (`f32`, `f16`, or `int8` — see
//! `msd_nn::artifact`); predict responses echo the serving tier in
//! `X-Msd-Tier`, and a swap request may declare the tier it expects with an
//! `X-Msd-Tier` header — a mismatching or unknown tier is a typed `400`,
//! never a silent fall back to another precision.
//!
//! Predict errors map to `400` (bad frame), `404` (unknown model), `429`
//! (overloaded or brownout, with `Retry-After`), `500` (worker panic),
//! `503` (shutting down), `504` (deadline exceeded). Requests may cap
//! their wait with an `X-Msd-Deadline-Ms` header; DESIGN.md §14 documents
//! the deadline contract, per-replica circuit breakers, brownout, and the
//! deterministic chaos harness (`MSD_CHAOS`).

pub mod health;
pub mod http;
pub mod loadgen;
pub mod registry;
pub mod router;
pub mod wire;

pub use health::{BreakerConfig, BreakerState, BrownoutConfig, ReplicaHealth};
pub use registry::{retry_after_secs, GatewayError, ModelFactory, PredictOk, Registry, ReplicaSet};

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use http::{
    json_escape, read_request, response_head, write_response, write_response_throttled, Request,
    Response,
};
use msd_serve::{Chaos, ServeConfig};

/// Tuning knobs for [`Gateway::bind`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Per-replica serving runtime configuration (queue bound, batcher,
    /// worker pool).
    pub serve: ServeConfig,
    /// Replica `Server`s per model (≥ 1); the router shards keys across
    /// them.
    pub replicas: usize,
    /// Largest accepted request body, bytes. Covers both tensor frames and
    /// swap blobs.
    pub max_body_bytes: usize,
    /// Most simultaneously open client connections; excess connections are
    /// answered `503` and closed.
    pub max_connections: usize,
    /// Per-replica circuit-breaker thresholds (DESIGN.md §14).
    pub breaker: BreakerConfig,
    /// Early load-shedding policy; disabled by default.
    pub brownout: BrownoutConfig,
    /// Deadline applied to predict requests that carry no
    /// `X-Msd-Deadline-Ms` header. `None` (default) = wait indefinitely,
    /// exactly the pre-deadline gateway.
    pub default_deadline: Option<Duration>,
    /// Fault-injection plan for the gateway's own connection handling
    /// (conn drops, slow-loris writes). `None` falls back to the
    /// process-wide `MSD_CHAOS` plan, so one env var arms every layer.
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            serve: ServeConfig::default(),
            replicas: 2,
            max_body_bytes: 64 * 1024 * 1024,
            max_connections: 256,
            breaker: BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
            default_deadline: None,
            chaos: None,
        }
    }
}

/// How often blocked socket reads and the accept loop re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// The running gateway: an accept loop, per-connection handler threads,
/// and the shared model [`Registry`].
pub struct Gateway {
    registry: Arc<Registry>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// an empty registry; register models via [`Gateway::registry`].
    pub fn bind(addr: impl ToSocketAddrs, cfg: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // One chaos plan arms every layer: an explicit config handle wins,
        // then the process-wide MSD_CHAOS plan, then nothing. The serve
        // side inherits the same handle so worker faults and connection
        // faults share one deterministic schedule.
        let chaos = cfg.chaos.clone().or_else(Chaos::from_env);
        let mut serve_cfg = cfg.serve.clone();
        if serve_cfg.chaos.is_none() {
            serve_cfg.chaos = chaos.clone();
        }
        let registry = Arc::new(Registry::with_policies(
            serve_cfg,
            cfg.replicas,
            cfg.breaker.clone(),
            cfg.brownout.clone(),
            cfg.default_deadline,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let accept = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let max_body = cfg.max_body_bytes;
            let max_conns = cfg.max_connections.max(1);
            std::thread::Builder::new()
                .name("msd-gateway-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener, registry, stop, conns, active, max_body, max_conns, chaos,
                    )
                })
                .expect("spawn gateway accept thread")
        };
        Ok(Gateway {
            registry,
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry backing this gateway.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops accepting, lets every open connection finish its in-flight
    /// request, and drains all model servers. Idempotent via `Drop`.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.registry.shutdown();
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    active: Arc<AtomicUsize>,
    max_body: usize,
    max_conns: usize,
    chaos: Option<Arc<Chaos>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if active.load(Ordering::Relaxed) >= max_conns {
                    // Shed the connection with a typed answer rather than a
                    // silent RST: the client sees overload, not a mystery.
                    // The write timeout keeps a dead peer from wedging the
                    // accept loop itself.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let resp = Response::json(
                        503,
                        "{\"error\":\"connection limit reached\"}".to_string(),
                    )
                    .with_retry_after(1);
                    let _ = write_response(&mut stream, &resp, false);
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let active = Arc::clone(&active);
                let chaos = chaos.clone();
                let handle = std::thread::Builder::new()
                    .name("msd-gateway-conn".into())
                    .spawn(move || {
                        let _ =
                            connection_loop(&mut stream, &registry, &stop, max_body, chaos.as_deref());
                        active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn gateway connection thread");
                let mut conns = conns.lock().unwrap_or_else(|p| p.into_inner());
                // Reap finished handlers so a long-lived gateway does not
                // accumulate one dead JoinHandle per past connection.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_finished() {
                        let _ = conns.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                conns.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Serves one client connection until close, error, or shutdown.
fn connection_loop(
    stream: &mut TcpStream,
    registry: &Registry,
    stop: &AtomicBool,
    max_body: usize,
    chaos: Option<&Chaos>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL))?;
    // A dead or unreadably slow peer must not pin this handler thread on a
    // full send buffer.
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut carry = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let req = match read_request(stream, &mut carry, max_body, stop) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // peer closed between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Answer what can be answered, then close: the framing is
                // broken, so resynchronising on this connection is hopeless.
                let resp = error_response(400, &e.to_string());
                let _ = write_response(stream, &resp, false);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let keep_alive = req.keep_alive();
        let resp = handle_request(registry, &req);
        // Connection-level fault injection (only armed under MSD_CHAOS or
        // an explicit plan). The model answer is already computed and
        // accounted — these faults corrupt only the wire, which is exactly
        // what a retrying client must absorb.
        if let Some(c) = chaos {
            if c.conn_drop() {
                // Drop mid-response: half the head, then a hard close.
                let head = response_head(&resp, keep_alive);
                let _ = stream.write_all(&head.as_bytes()[..head.len() / 2]);
                let _ = stream.flush();
                return Ok(());
            }
            if let Some(stall) = c.slow_loris() {
                write_response_throttled(stream, &resp, keep_alive, stall)?;
                if !keep_alive {
                    return Ok(());
                }
                continue;
            }
        }
        write_response(stream, &resp, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        format!("{{\"error\":\"{}\"}}", json_escape(message)),
    )
}

/// Routes one parsed request to the registry. Pure apart from the registry
/// calls, so tests can drive it without a socket.
pub fn handle_request(registry: &Registry, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let names = registry.names();
            let list = names
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(",");
            Response::json(
                200,
                format!("{{\"status\":\"ok\",\"models\":[{list}]}}"),
            )
        }
        ("GET", "/stats") => Response::json(200, registry.stats_json()),
        ("GET", "/v1/models") => {
            let mut rows = Vec::new();
            for name in registry.names() {
                if let Ok(set) = registry.current_set(&name) {
                    rows.push(format!(
                        "{{\"name\":\"{}\",\"version\":{},\"tier\":\"{}\"}}",
                        json_escape(&name),
                        set.version,
                        set.tier
                    ));
                }
            }
            Response::json(200, format!("{{\"models\":[{}]}}", rows.join(",")))
        }
        ("POST", path) => {
            if let Some(name) = strip_route(path, "/predict") {
                predict(registry, name, req)
            } else if let Some(name) = strip_route(path, "/swap") {
                swap(registry, name, req)
            } else {
                error_response(404, &format!("no such endpoint: POST {path}"))
            }
        }
        ("GET", path) => error_response(404, &format!("no such endpoint: GET {path}")),
        (method, _) => error_response(405, &format!("method {method} not supported")),
    }
}

/// `/v1/models/{name}{suffix}` → `Some(name)` (rejecting empty or nested
/// names).
fn strip_route<'a>(path: &'a str, suffix: &str) -> Option<&'a str> {
    let name = path.strip_prefix("/v1/models/")?.strip_suffix(suffix)?;
    if name.is_empty() || name.contains('/') {
        return None;
    }
    Some(name)
}

fn predict(registry: &Registry, name: &str, req: &Request) -> Response {
    let x = match wire::decode_tensor(&req.body) {
        Ok(x) => x,
        Err(msg) => return error_response(400, &format!("bad tensor frame: {msg}")),
    };
    if x.shape().first() != Some(&1) {
        return error_response(
            400,
            &format!(
                "predict takes one sample with a leading batch axis of 1, got {:?}",
                x.shape()
            ),
        );
    }
    let key = req.header("x-msd-key").unwrap_or("");
    // Per-request deadline: X-Msd-Deadline-Ms counts from arrival at this
    // gateway. Absent → the registry's default; malformed → a typed 400
    // (silently ignoring it would grant an unbounded wait the client
    // explicitly tried to cap).
    let deadline = match req.header("x-msd-deadline-ms") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(0) => {
                return error_response(400, "x-msd-deadline-ms must be a positive integer")
            }
            Ok(ms) => Some(Instant::now() + Duration::from_millis(ms)),
            Err(_) => {
                return error_response(
                    400,
                    &format!("bad x-msd-deadline-ms: {v:?} (want milliseconds)"),
                )
            }
        },
    };
    match registry.predict(name, key.as_bytes(), x, deadline) {
        Ok(ok) => {
            let mut resp = Response::new(200, wire::encode_tensor(&ok.y));
            resp.headers
                .push(("Content-Type".into(), wire::CONTENT_TYPE.into()));
            resp.headers
                .push(("X-Msd-Model-Version".into(), ok.version.to_string()));
            resp.headers
                .push(("X-Msd-Replica".into(), ok.replica.to_string()));
            resp.headers
                .push(("X-Msd-Tier".into(), ok.tier.as_str().into()));
            resp
        }
        Err(GatewayError::UnknownModel(name)) => {
            error_response(404, &format!("unknown model {name:?}"))
        }
        Err(GatewayError::Overloaded { retry_after_secs }) => {
            error_response(429, "admission queue full").with_retry_after(retry_after_secs)
        }
        Err(GatewayError::Brownout { retry_after_secs }) => {
            error_response(429, "brownout: load shed before admission")
                .with_retry_after(retry_after_secs)
        }
        Err(GatewayError::DeadlineExceeded) => error_response(504, "request deadline exceeded"),
        Err(GatewayError::Internal(msg)) => error_response(500, &msg),
        Err(GatewayError::ShuttingDown) => {
            error_response(503, "shutting down").with_retry_after(1)
        }
    }
}

fn swap(registry: &Registry, name: &str, req: &Request) -> Response {
    // An X-Msd-Tier request header declares the precision tier the client
    // expects the new artifact to carry. Unknown tier names are a typed 400
    // up front; a well-formed expectation that the artifact fails to meet is
    // rejected by the registry (also a 400) — never a silent f32 fallback.
    let expect = match req.header("x-msd-tier") {
        None => None,
        Some(v) => match msd_nn::PrecisionTier::parse(v) {
            Some(t) => Some(t),
            None => {
                return error_response(
                    400,
                    &format!("unknown tier {v:?} (expected f32, f16, or int8)"),
                )
            }
        },
    };
    match registry.swap_tiered(name, &req.body, expect) {
        Ok(version) => {
            let tier = registry
                .tier(name)
                .map(|t| t.as_str())
                .unwrap_or("f32");
            Response::json(
                200,
                format!(
                    "{{\"model\":\"{}\",\"version\":{version},\"tier\":\"{tier}\"}}",
                    json_escape(name)
                ),
            )
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            error_response(404, &format!("unknown model {name:?}"))
        }
        Err(e) => error_response(400, &format!("swap rejected: {e}")),
    }
}
