//! A hand-rolled HTTP/1.1 subset over blocking `std::net` sockets.
//!
//! Exactly the slice of the protocol the gateway needs, and nothing more:
//! `GET`/`POST`, `Content-Length` bodies (no chunked encoding, no trailers,
//! no 100-continue), keep-alive connections, and byte-exact bodies. The
//! grammar is documented in DESIGN.md §12; anything outside it is rejected
//! with `InvalidData` so the caller can answer `400` and close.
//!
//! Reads poll with a short socket timeout so a blocked connection notices a
//! gateway shutdown instead of pinning its thread forever.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method token, uppercase (`GET`, `POST`).
    pub method: String,
    /// Request target as sent (no query parsing; the gateway routes on the
    /// whole path).
    pub path: String,
    /// Header name/value pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (give it lowercased), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Pulls more bytes from `stream` into `carry`, polling through read
/// timeouts until data arrives, EOF, or `stop` is raised. Returns the bytes
/// read (0 = EOF).
fn fill(stream: &mut TcpStream, carry: &mut Vec<u8>, stop: &AtomicBool) -> io::Result<usize> {
    let mut tmp = [0u8; 4096];
    loop {
        match stream.read(&mut tmp) {
            Ok(n) => {
                carry.extend_from_slice(&tmp[..n]);
                return Ok(n);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop.load(Ordering::Relaxed) {
                    return Err(io::Error::other("gateway shutting down"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Extracts `Content-Length` from a lowercased header list, strictly.
///
/// Stricter than `str::parse::<usize>` on purpose: a leading `+` (which
/// `from_str` accepts) and any non-digit byte are rejected, and a repeated
/// `Content-Length` header is refused outright — mismatched copies are the
/// classic request-smuggling vector, and even matching ones signal a peer
/// whose framing cannot be trusted.
fn parse_content_length(headers: &[(String, String)]) -> io::Result<usize> {
    let mut found: Option<&str> = None;
    for (name, value) in headers {
        if name == "content-length" {
            if found.is_some() {
                return Err(invalid("duplicate content-length header"));
            }
            found = Some(value);
        }
    }
    let Some(v) = found else { return Ok(0) };
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return Err(invalid(format!("bad content-length: {v:?}")));
    }
    v.parse::<usize>()
        .map_err(|_| invalid(format!("bad content-length: {v:?}")))
}

/// Reads one request from `stream`, carrying unconsumed bytes between calls
/// in `carry` (pipelined or keep-alive traffic parks there).
///
/// Returns `Ok(None)` on a clean EOF between requests (the peer hung up),
/// `InvalidData` on anything outside the accepted grammar, and
/// `UnexpectedEof` on a connection torn mid-request.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    max_body: usize,
    stop: &AtomicBool,
) -> io::Result<Option<Request>> {
    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(end) = find_head_end(carry) {
            break end;
        }
        // `>=`, not `>`: a full 16 KiB of headless bytes can never become a
        // valid head (the terminator would have been found above), so reject
        // now — waiting for more bytes pinned the connection forever when a
        // peer sent exactly `MAX_HEAD_BYTES` and stopped.
        if carry.len() >= MAX_HEAD_BYTES {
            return Err(invalid("request head too large"));
        }
        if fill(stream, carry, stop)? == 0 {
            if carry.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(invalid("request head too large"));
    }
    let head = std::str::from_utf8(&carry[..head_end - 4])
        .map_err(|_| invalid("request head is not UTF-8"))?
        .to_string();
    carry.drain(..head_end);

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("malformed request line: {request_line:?}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid(format!("malformed header line: {line:?}")))?;
        if headers.len() >= MAX_HEADERS {
            return Err(invalid("too many headers"));
        }
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = parse_content_length(&headers)?;
    if content_length > max_body {
        return Err(invalid(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    while carry.len() < content_length {
        if fill(stream, carry, stop)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
    }
    let body: Vec<u8> = carry.drain(..content_length).collect();
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// One response about to be written.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Connection` (which the writer
    /// always emits itself).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with no extra headers.
    pub fn new(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
        }
    }

    /// A JSON response (sets `Content-Type: application/json`).
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// Adds a `Retry-After: <secs>` header (for 429/503 shed responses).
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.headers.push(("Retry-After".into(), secs.to_string()));
        self
    }
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialises `resp`'s status line and headers (through the terminating
/// blank line). Factored out of [`write_response`] so the chaos paths can
/// write a deliberately truncated or throttled head from the same bytes a
/// healthy response would use.
pub fn response_head(resp: &Response, keep_alive: bool) -> String {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    head
}

/// Serialises and writes `resp`, flushing before returning.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(response_head(resp, keep_alive).as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// [`write_response`], but slow-loris style: the bytes dribble out in eight
/// slices with `stall / 8` pauses between them (total added latency ≈
/// `stall`). The payload is byte-identical to the healthy write — this
/// fault stresses client read timeouts, not correctness.
pub fn write_response_throttled(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    stall: Duration,
) -> io::Result<()> {
    let mut bytes = response_head(resp, keep_alive).into_bytes();
    bytes.extend_from_slice(&resp.body);
    let slices = 8usize;
    let chunk = bytes.len().div_ceil(slices).max(1);
    for (i, piece) in bytes.chunks(chunk).enumerate() {
        if i > 0 {
            std::thread::sleep(stall / slices as u32);
        }
        stream.write_all(piece)?;
        stream.flush()?;
    }
    Ok(())
}

/// Client-side socket timeouts. Every limit is always on: the old client
/// blocked forever against a listener that accepted and then went silent,
/// which turned one wedged gateway into a wedged load generator.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect limit.
    pub connect_timeout: Duration,
    /// Limit on each *stall* while reading a response (not the whole
    /// response): any single quiet period longer than this errors
    /// `TimedOut`. A slow-but-moving response stays alive.
    pub read_timeout: Duration,
    /// Socket write limit (full send buffer + dead peer).
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// A keep-alive HTTP client over one TCP connection — enough for the load
/// generator, the swap tool, and tests; the server side accepts real
/// clients like `curl` just the same.
pub struct Client {
    stream: TcpStream,
    carry: Vec<u8>,
}

/// A response as seen by [`Client`].
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of lowercased header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:8080"`) with default timeouts.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to `addr` under explicit timeouts. Tries each resolved
    /// address in turn with `connect_timeout`; the returned client's socket
    /// carries the read/write timeouts for its whole lifetime.
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> io::Result<Client> {
        let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
        let mut last = None;
        let mut stream = None;
        for a in addrs {
            match TcpStream::connect_timeout(&a, cfg.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            last.unwrap_or_else(|| {
                io::Error::new(io::ErrorKind::AddrNotAvailable, format!("no address for {addr}"))
            })
        })?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        Ok(Client {
            stream,
            carry: Vec::new(),
        })
    }

    /// Pulls more response bytes into the carry. Unlike the server-side
    /// [`fill`] (which polls through timeouts watching a stop flag), a
    /// client read that hits its socket timeout *is* the failure: the
    /// silent-listener case must surface as `TimedOut`, not a hang.
    fn fill_client(&mut self) -> io::Result<usize> {
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(n) => {
                    self.carry.extend_from_slice(&tmp[..n]);
                    return Ok(n);
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out waiting for response bytes",
                    ));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request and reads the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: msd-gateway\r\n");
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(end) = find_head_end(&self.carry) {
                break end;
            }
            if self.carry.len() >= MAX_HEAD_BYTES {
                return Err(invalid("response head too large"));
            }
            if self.fill_client()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
        };
        let head = std::str::from_utf8(&self.carry[..head_end - 4])
            .map_err(|_| invalid("response head is not UTF-8"))?
            .to_string();
        self.carry.drain(..head_end);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| invalid(format!("malformed status line: {status_line:?}")))?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid(format!("malformed header line: {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = parse_content_length(&headers)?;
        while self.carry.len() < content_length {
            if self.fill_client()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body: Vec<u8> = self.carry.drain(..content_length).collect();
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// Escapes `raw` for inclusion inside a JSON string literal.
pub fn json_escape(raw: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(20)))
                .unwrap();
            let stop = AtomicBool::new(false);
            let mut carry = Vec::new();
            let req = read_request(&mut stream, &mut carry, 1024, &stop)
                .unwrap()
                .unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/models/m/predict");
            assert_eq!(req.header("x-msd-key"), Some("alpha"));
            assert_eq!(req.body, b"payload");
            let mut resp = Response::new(200, b"pong".to_vec());
            resp.headers.push(("X-Msd-Model-Version".into(), "3".into()));
            write_response(&mut stream, &resp, true).unwrap();
            // Second request on the same connection (keep-alive).
            let req2 = read_request(&mut stream, &mut carry, 1024, &stop)
                .unwrap()
                .unwrap();
            assert_eq!(req2.method, "GET");
            assert!(req2.body.is_empty());
            write_response(&mut stream, &Response::json(200, "{}".into()), false).unwrap();
        });
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let resp = client
            .request(
                "POST",
                "/v1/models/m/predict",
                &[("X-Msd-Key", "alpha")],
                b"payload",
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"pong");
        assert_eq!(resp.header("x-msd-model-version"), Some("3"));
        let resp2 = client.request("GET", "/healthz", &[], b"").unwrap();
        assert_eq!(resp2.status, 200);
        server.join().unwrap();
    }

    #[test]
    fn oversized_body_and_garbage_are_rejected_not_hung() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let stop = AtomicBool::new(false);
            // Oversized declared body.
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(20)))
                .unwrap();
            let mut carry = Vec::new();
            let err = read_request(&mut stream, &mut carry, 8, &stop).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            // Garbage request line.
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(20)))
                .unwrap();
            let mut carry = Vec::new();
            let err = read_request(&mut stream, &mut carry, 8, &stop).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        });
        let mut a = TcpStream::connect(addr).unwrap();
        a.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n")
            .unwrap();
        a.flush().unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        b.write_all(b"not http at all\r\n\r\n").unwrap();
        b.flush().unwrap();
        server.join().unwrap();
    }

    /// Accept one connection, apply `read_request`, and return its result —
    /// the server half of every hostile-input test below.
    fn serve_one(
        listener: &TcpListener,
        max_body: usize,
    ) -> io::Result<Option<Request>> {
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(20)))
            .unwrap();
        let stop = AtomicBool::new(false);
        let mut carry = Vec::new();
        read_request(&mut stream, &mut carry, max_body, &stop)
    }

    #[test]
    fn exactly_max_head_bytes_of_valid_head_is_accepted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_one(&listener, 1024));
        // Pad the head to land the terminating blank line exactly on the
        // 16 KiB boundary; the cap is inclusive of a complete head.
        let fixed = "POST /x HTTP/1.1\r\nContent-Length: 7\r\nX-Pad: \r\n\r\n";
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: 7\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES - fixed.len())
        );
        assert_eq!(head.len(), MAX_HEAD_BYTES);
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(head.as_bytes()).unwrap();
        c.write_all(b"payload").unwrap();
        c.flush().unwrap();
        let req = server.join().unwrap().unwrap().unwrap();
        assert_eq!(req.body, b"payload");
    }

    #[test]
    fn max_head_bytes_without_terminator_rejects_instead_of_hanging() {
        // Regression: the cap check was `>`, so a peer that sent exactly
        // MAX_HEAD_BYTES of headless bytes and then went quiet pinned the
        // connection forever waiting for a terminator that cannot fit.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_one(&listener, 1024));
        let mut c = TcpStream::connect(addr).unwrap();
        let junk = format!("GET /{} HTTP/1.1\r\n", "a".repeat(MAX_HEAD_BYTES));
        c.write_all(&junk.as_bytes()[..MAX_HEAD_BYTES]).unwrap();
        c.flush().unwrap();
        // Keep the socket open: the reject must come from the cap, not EOF.
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        drop(c);
    }

    #[test]
    fn content_length_must_be_plain_ascii_digits() {
        // `usize::from_str` accepts a leading `+`; the wire grammar must not.
        for bad in ["+7", "7a", "1e2", "", "٣"] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || serve_one(&listener, 1024));
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(
                format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\npayload").as_bytes(),
            )
            .unwrap();
            c.flush().unwrap();
            let err = server.join().unwrap().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "value {bad:?}");
        }
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Even two *matching* copies: duplicated framing headers are the
        // classic smuggling vector, so the grammar refuses them outright.
        for second in ["7", "8"] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || serve_one(&listener, 1024));
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(
                format!(
                    "POST /x HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: {second}\r\n\r\npayload"
                )
                .as_bytes(),
            )
            .unwrap();
            c.flush().unwrap();
            let err = server.join().unwrap().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "second copy {second:?}");
        }
    }

    #[test]
    fn header_count_cap_boundary() {
        for (count, ok) in [(MAX_HEADERS, true), (MAX_HEADERS + 1, false)] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || serve_one(&listener, 1024));
            let mut head = String::from("GET /x HTTP/1.1\r\n");
            for i in 0..count {
                head.push_str(&format!("x-h{i}: v\r\n"));
            }
            head.push_str("\r\n");
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(head.as_bytes()).unwrap();
            c.flush().unwrap();
            let result = server.join().unwrap();
            if ok {
                assert_eq!(result.unwrap().unwrap().headers.len(), MAX_HEADERS);
            } else {
                assert_eq!(result.unwrap_err().kind(), io::ErrorKind::InvalidData);
            }
        }
    }

    #[test]
    fn silent_listener_times_out_instead_of_hanging_the_client() {
        // Regression: the client reused the server-side fill loop with a
        // stop flag nobody ever raised, so a listener that accepted and
        // then never wrote a byte hung the client forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the socket open, silently, past the client's timeout.
            std::thread::sleep(std::time::Duration::from_millis(500));
            drop(stream);
        });
        let cfg = ClientConfig {
            read_timeout: std::time::Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let mut client = Client::connect_with(&addr.to_string(), cfg).unwrap();
        let err = client.request("GET", "/healthz", &[], b"").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "client took {:?} to notice the silent listener",
            started.elapsed()
        );
    }

    #[test]
    fn throttled_write_is_byte_identical_to_the_plain_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(20)))
                .unwrap();
            let stop = AtomicBool::new(false);
            let mut carry = Vec::new();
            // Consume the request so closing the socket later cannot RST
            // the response out of the client's receive buffer.
            read_request(&mut stream, &mut carry, 1024, &stop)
                .unwrap()
                .unwrap();
            let mut resp = Response::new(200, b"slow but intact".to_vec());
            resp.headers.push(("X-Msd-Replica".into(), "1".into()));
            write_response_throttled(
                &mut stream,
                &resp,
                false,
                std::time::Duration::from_millis(40),
            )
            .unwrap();
        });
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let resp = client.request("GET", "/x", &[], b"").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"slow but intact");
        assert_eq!(resp.header("x-msd-replica"), Some("1"));
        server.join().unwrap();
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        drop(client); // connect then hang up without sending anything
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(20)))
            .unwrap();
        let stop = AtomicBool::new(false);
        let mut carry = Vec::new();
        assert!(read_request(&mut stream, &mut carry, 8, &stop)
            .unwrap()
            .is_none());
    }
}
