//! Deterministic request routing across model replicas.
//!
//! The contract (DESIGN.md §12): the replica serving a request is a pure
//! function of the client-supplied routing key and the replica count —
//! `replica = FNV-1a-64(key) mod n`. Two requests with the same key always
//! land on the same replica of a given deployment, on every machine and in
//! every run; the mapping only changes when the replica count does. An
//! absent key hashes as the empty byte string, so keyless traffic is
//! deterministic too (all of it lands on one replica — callers who want
//! spreading supply keys).
//!
//! FNV-1a was chosen because it is a five-line, dependency-free, endian-
//! independent spec that any client in any language can reimplement
//! byte-for-byte; routing never needs cryptographic strength, it needs an
//! *auditable* constant.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The replica index (`0..replicas`) serving routing key `key`.
///
/// # Panics
/// Panics if `replicas` is zero — an empty replica set is unreachable by
/// construction (the registry never publishes one).
pub fn route(key: &[u8], replicas: usize) -> usize {
    assert!(replicas > 0, "route over an empty replica set");
    (fnv1a64(key) % replicas as u64) as usize
}

/// The full deterministic failover order for `key`: a permutation of
/// `0..replicas` whose first element is exactly [`route`]`(key, replicas)`.
///
/// Degraded routing walks this order skipping open-breaker replicas, so:
/// with every breaker closed the choice *is* the plain FNV route (healthy
/// routing is bit-identical to the pre-breaker gateway); with some open,
/// keys rehash to a fallback that is still a pure function of the key (two
/// gateways observing the same breaker states agree on every assignment);
/// and when a breaker closes again, keys snap back to their original
/// replica — the permutation never changes, only how far down it the
/// walk goes.
///
/// Construction: successive FNV-1a rehashes of the previous hash's
/// little-endian bytes pick from the not-yet-chosen replicas. Like
/// [`route`] itself this is an auditable five-line spec, reimplementable
/// byte-for-byte in any language.
///
/// # Panics
/// Panics if `replicas` is zero, exactly like [`route`].
pub fn route_order(key: &[u8], replicas: usize) -> Vec<usize> {
    assert!(replicas > 0, "route over an empty replica set");
    let mut remaining: Vec<usize> = (0..replicas).collect();
    let mut order = Vec::with_capacity(replicas);
    let mut h = fnv1a64(key);
    while !remaining.is_empty() {
        let pick = (h % remaining.len() as u64) as usize;
        order.push(remaining.remove(pick));
        h = fnv1a64(&h.to_le_bytes());
    }
    order
}

/// The first replica in `key`'s failover order whose breaker is not open
/// (`open[i]` = avoid replica `i`), or `None` when every breaker is open —
/// the caller then fails static to a least-bad replica instead of erroring.
///
/// # Panics
/// Panics if `open` is empty.
pub fn route_healthy(key: &[u8], open: &[bool]) -> Option<usize> {
    route_order(key, open.len())
        .into_iter()
        .find(|&i| !open[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_published_test_vectors() {
        // Golden vectors from the FNV reference implementation.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for replicas in 1..=8usize {
            for key in [&b""[..], b"user-17", b"series/42", b"\x00\xff"] {
                let first = route(key, replicas);
                assert!(first < replicas);
                for _ in 0..3 {
                    assert_eq!(route(key, replicas), first, "unstable route");
                }
            }
        }
    }

    /// A small deterministic key corpus for the degradation properties.
    fn keys() -> Vec<Vec<u8>> {
        let mut ks: Vec<Vec<u8>> = (0..200).map(|i| format!("key-{i}").into_bytes()).collect();
        ks.push(Vec::new());
        ks.push(b"\x00\xff\x00".to_vec());
        ks
    }

    #[test]
    fn route_order_is_a_permutation_seeded_by_the_plain_route() {
        for replicas in 1..=8usize {
            for key in keys() {
                let order = route_order(&key, replicas);
                assert_eq!(order[0], route(&key, replicas), "order starts at the FNV route");
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..replicas).collect::<Vec<_>>(), "not a permutation");
                assert_eq!(order, route_order(&key, replicas), "unstable order");
            }
        }
    }

    #[test]
    fn same_breaker_state_yields_identical_assignments() {
        // Property (a): assignments are a pure function of (key, mask) —
        // replayed sweeps agree on every key for every mask.
        let replicas = 5;
        for mask_bits in 0u32..(1 << replicas) {
            let open: Vec<bool> = (0..replicas).map(|i| mask_bits & (1 << i) != 0).collect();
            for key in keys() {
                let first = route_healthy(&key, &open);
                assert_eq!(first, route_healthy(&key, &open), "mask {open:?}");
                if let Some(r) = first {
                    assert!(!open[r], "routed to an open replica");
                } else {
                    assert!(open.iter().all(|&o| o), "None only when all open");
                }
            }
        }
    }

    #[test]
    fn closing_a_breaker_restores_original_fnv_routing_bit_exactly() {
        // Property (b): degradation is memoryless. After the breaker closes
        // the choice equals the plain FNV route for every key — no residue
        // of the open period.
        for replicas in 2..=6usize {
            for sick in 0..replicas {
                let mut open = vec![false; replicas];
                open[sick] = true;
                for key in keys() {
                    let degraded = route_healthy(&key, &open).unwrap();
                    assert_ne!(degraded, sick, "routed to the open replica");
                    if route(&key, replicas) != sick {
                        assert_eq!(
                            degraded,
                            route(&key, replicas),
                            "unaffected key moved while replica {sick} was open"
                        );
                    }
                }
                let healed = vec![false; replicas];
                for key in keys() {
                    assert_eq!(
                        route_healthy(&key, &healed),
                        Some(route(&key, replicas)),
                        "healed routing differs from plain FNV"
                    );
                }
            }
        }
    }

    #[test]
    fn all_replicas_open_returns_none_for_fail_static() {
        // Property (c), router half: the router reports "no healthy
        // replica" as None — the registry then fails static to the
        // least-bad replica and still answers (asserted end-to-end in the
        // fault-tolerance suite).
        for replicas in 1..=4usize {
            let open = vec![true; replicas];
            for key in keys() {
                assert_eq!(route_healthy(&key, &open), None);
            }
        }
    }

    #[test]
    fn distinct_keys_spread_across_replicas() {
        let replicas = 4;
        let mut hits = [0usize; 4];
        for i in 0..1000 {
            hits[route(format!("key-{i}").as_bytes(), replicas)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 100, "replica {i} starved: {hits:?}");
        }
    }
}
