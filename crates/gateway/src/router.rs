//! Deterministic request routing across model replicas.
//!
//! The contract (DESIGN.md §12): the replica serving a request is a pure
//! function of the client-supplied routing key and the replica count —
//! `replica = FNV-1a-64(key) mod n`. Two requests with the same key always
//! land on the same replica of a given deployment, on every machine and in
//! every run; the mapping only changes when the replica count does. An
//! absent key hashes as the empty byte string, so keyless traffic is
//! deterministic too (all of it lands on one replica — callers who want
//! spreading supply keys).
//!
//! FNV-1a was chosen because it is a five-line, dependency-free, endian-
//! independent spec that any client in any language can reimplement
//! byte-for-byte; routing never needs cryptographic strength, it needs an
//! *auditable* constant.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The replica index (`0..replicas`) serving routing key `key`.
///
/// # Panics
/// Panics if `replicas` is zero — an empty replica set is unreachable by
/// construction (the registry never publishes one).
pub fn route(key: &[u8], replicas: usize) -> usize {
    assert!(replicas > 0, "route over an empty replica set");
    (fnv1a64(key) % replicas as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_published_test_vectors() {
        // Golden vectors from the FNV reference implementation.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for replicas in 1..=8usize {
            for key in [&b""[..], b"user-17", b"series/42", b"\x00\xff"] {
                let first = route(key, replicas);
                assert!(first < replicas);
                for _ in 0..3 {
                    assert_eq!(route(key, replicas), first, "unstable route");
                }
            }
        }
    }

    #[test]
    fn distinct_keys_spread_across_replicas() {
        let replicas = 4;
        let mut hits = [0usize; 4];
        for i in 0..1000 {
            hits[route(format!("key-{i}").as_bytes(), replicas)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 100, "replica {i} starved: {hits:?}");
        }
    }
}
