//! The multi-model registry: named models, replica `Server` sets, and
//! zero-drop hot-swap.
//!
//! Each registered model is a *factory* (architecture + deterministic init)
//! plus an optional parameter blob in [`msd_nn::store`] format. A published
//! version is an [`Arc`]ed set of replica [`Server`]s; the predict path
//! clones the `Arc` out of a short-held lock, so a hot-swap and in-flight
//! traffic never contend for more than a pointer exchange.
//!
//! ## Hot-swap state machine (DESIGN.md §12)
//!
//! ```text
//! BUILD    factory() x replicas, decode new params, start new Servers
//!            | (failure here leaves the old version untouched — swap is
//!            |  all-or-nothing)
//! PUBLISH  swap the Arc under the entry lock: new requests admit to the
//!            new version from this instant; the response's version header
//!            says which version admitted each request
//! DRAIN    the old Arc lives until its last in-flight request completes;
//!            dropping it drains the old Servers (graceful, zero dropped)
//! ```
//!
//! No request is ever lost across a swap: a request holds the version that
//! admitted it for its whole lifetime, and `Server`'s drain-on-drop answers
//! everything already admitted.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use msd_nn::{DynModel, ParamStore};
use msd_serve::{ServeConfig, ServeError, ServeStats, Server};
use msd_tensor::Tensor;

use crate::http::json_escape;
use crate::router::route;

/// Builds one fresh instance of a model: the architecture with its
/// deterministic parameter initialisation. The registry overwrites the
/// returned store's values when a parameter blob is supplied, so the
/// factory fixes *names and shapes*; the blob fixes the numbers.
pub type ModelFactory = Box<dyn Fn() -> (DynModel, ParamStore) + Send + Sync>;

/// One published model version: `replicas` independent serving runtimes
/// over identical parameters.
pub struct ReplicaSet {
    /// Monotonic version number, starting at 1 for the registered model.
    pub version: u32,
    servers: Vec<Server>,
}

impl ReplicaSet {
    /// Number of replica servers in this version.
    pub fn replicas(&self) -> usize {
        self.servers.len()
    }

    /// Live stats snapshots, one per replica.
    pub fn stats(&self) -> Vec<ServeStats> {
        self.servers.iter().map(|s| s.stats()).collect()
    }
}

/// Everything the gateway reports about one answered prediction.
pub struct PredictOk {
    /// The prediction, bit-identical to `Model::predict` on the version's
    /// parameters.
    pub y: Tensor,
    /// Version that admitted (and answered) the request.
    pub version: u32,
    /// Replica index the router chose.
    pub replica: usize,
}

/// Why the registry could not answer a predict call.
#[derive(Debug)]
pub enum GatewayError {
    /// No model registered under that name.
    UnknownModel(String),
    /// The chosen replica's admission queue was full.
    Overloaded,
    /// The replica answered with an internal serving error (worker panic).
    Internal(String),
    /// The replica is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            GatewayError::Overloaded => write!(f, "admission queue full"),
            GatewayError::Internal(msg) => write!(f, "internal error: {msg}"),
            GatewayError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for GatewayError {}

struct Entry {
    factory: ModelFactory,
    current: Mutex<Arc<ReplicaSet>>,
    next_version: AtomicU32,
}

/// Named models and their live replica sets.
pub struct Registry {
    models: RwLock<BTreeMap<String, Arc<Entry>>>,
    serve_cfg: ServeConfig,
    replicas: usize,
}

impl Registry {
    /// An empty registry whose models each run `replicas` servers built
    /// from `serve_cfg`.
    pub fn new(serve_cfg: ServeConfig, replicas: usize) -> Registry {
        Registry {
            models: RwLock::new(BTreeMap::new()),
            serve_cfg,
            replicas: replicas.max(1),
        }
    }

    fn build_set(&self, factory: &ModelFactory, params: Option<&[u8]>, version: u32) -> io::Result<ReplicaSet> {
        let mut servers = Vec::with_capacity(self.replicas);
        for _ in 0..self.replicas {
            let (model, mut store) = factory();
            if let Some(bytes) = params {
                // Validates names/shapes against the factory-built store and
                // commits all-or-nothing; a bad blob aborts the whole build.
                msd_nn::store::decode(&mut store, bytes)?;
            }
            servers.push(Server::start(model, store, self.serve_cfg.clone())?);
        }
        Ok(ReplicaSet { version, servers })
    }

    /// Registers `name` at version 1. `params` optionally overrides the
    /// factory's initial parameters with a stored blob (any format
    /// [`msd_nn::store::decode`] accepts).
    ///
    /// Fails with `AlreadyExists` if the name is taken — use
    /// [`Registry::swap`] to replace a live model.
    pub fn register(&self, name: &str, factory: ModelFactory, params: Option<&[u8]>) -> io::Result<u32> {
        let mut models = self.models.write().unwrap_or_else(|p| p.into_inner());
        if models.contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("model {name:?} is already registered"),
            ));
        }
        let set = self.build_set(&factory, params, 1)?;
        models.insert(
            name.to_string(),
            Arc::new(Entry {
                factory,
                current: Mutex::new(Arc::new(set)),
                next_version: AtomicU32::new(2),
            }),
        );
        Ok(1)
    }

    fn entry(&self, name: &str) -> Result<Arc<Entry>, GatewayError> {
        self.models
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| GatewayError::UnknownModel(name.to_string()))
    }

    /// Hot-swaps `name` to new parameters under traffic.
    ///
    /// All-or-nothing: the new replica set is fully built and serving
    /// before the publish, and any failure (bad blob, shape mismatch)
    /// leaves the old version untouched and still serving. Zero requests
    /// drop across the publish — in-flight requests complete against the
    /// version that admitted them.
    pub fn swap(&self, name: &str, params: &[u8]) -> io::Result<u32> {
        let entry = self
            .entry(name)
            .map_err(|e| io::Error::new(io::ErrorKind::NotFound, e.to_string()))?;
        let version = entry.next_version.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(self.build_set(&entry.factory, Some(params), version)?);
        let old = {
            let mut current = entry.current.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::replace(&mut *current, set)
        };
        // `old` drains here if no request still holds it; otherwise the last
        // in-flight request performs the drain when it drops its clone.
        drop(old);
        Ok(version)
    }

    /// Routes one request: picks the replica deterministically from `key`,
    /// submits, and waits for the answer.
    pub fn predict(&self, name: &str, key: &[u8], x: Tensor) -> Result<PredictOk, GatewayError> {
        let entry = self.entry(name)?;
        // Clone the published version out of the short-held lock; the swap
        // path can publish a successor at any time without affecting us.
        let set = entry
            .current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let replica = route(key, set.servers.len());
        match set.servers[replica].infer(x) {
            Ok(y) => Ok(PredictOk {
                y,
                version: set.version,
                replica,
            }),
            Err(ServeError::Overloaded) => Err(GatewayError::Overloaded),
            Err(ServeError::Internal(msg)) => Err(GatewayError::Internal(msg)),
            Err(ServeError::ShuttingDown) | Err(ServeError::Canceled) => {
                Err(GatewayError::ShuttingDown)
            }
        }
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// The live version number of `name`.
    pub fn version(&self, name: &str) -> Result<u32, GatewayError> {
        let entry = self.entry(name)?;
        let set = entry
            .current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        Ok(set.version)
    }

    /// Per-model, per-replica stats as one JSON object:
    /// `{"models":[{"model":...,"version":...,"submitted":...,"replicas":[...]}]}`.
    pub fn stats_json(&self) -> String {
        let entries: Vec<(String, Arc<ReplicaSet>)> = {
            let models = self.models.read().unwrap_or_else(|p| p.into_inner());
            models
                .iter()
                .map(|(name, e)| {
                    (
                        name.clone(),
                        e.current.lock().unwrap_or_else(|p| p.into_inner()).clone(),
                    )
                })
                .collect()
        };
        let mut s = String::from("{\"models\":[");
        for (i, (name, set)) in entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let stats = set.stats();
            let (mut submitted, mut completed, mut rejected, mut failed) = (0u64, 0u64, 0u64, 0u64);
            for st in &stats {
                submitted += st.submitted;
                completed += st.completed;
                rejected += st.rejected;
                failed += st.failed;
            }
            let _ = write!(
                s,
                "{{\"model\":\"{}\",\"version\":{},\"submitted\":{},\"completed\":{},\
                 \"rejected\":{},\"failed\":{},\"replicas\":[",
                json_escape(name),
                set.version,
                submitted,
                completed,
                rejected,
                failed
            );
            for (j, st) in stats.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&st.to_json());
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Drops every model, draining all replica servers (blocks until every
    /// in-flight request is answered).
    pub fn shutdown(&self) {
        self.models
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}
