//! The multi-model registry: named models, replica `Server` sets, and
//! zero-drop hot-swap.
//!
//! Each registered model is a *factory* (architecture + deterministic init)
//! plus an optional parameter blob in [`msd_nn::store`] format. A published
//! version is an [`Arc`]ed set of replica [`Server`]s; the predict path
//! clones the `Arc` out of a short-held lock, so a hot-swap and in-flight
//! traffic never contend for more than a pointer exchange.
//!
//! ## Hot-swap state machine (DESIGN.md §12)
//!
//! ```text
//! BUILD    factory() x replicas, decode new params, start new Servers
//!            | (failure here leaves the old version untouched — swap is
//!            |  all-or-nothing)
//! PUBLISH  swap the Arc under the entry lock: new requests admit to the
//!            new version from this instant; the response's version header
//!            says which version admitted each request
//! DRAIN    the old Arc lives until its last in-flight request completes;
//!            dropping it drains the old Servers (graceful, zero dropped)
//! ```
//!
//! No request is ever lost across a swap: a request holds the version that
//! admitted it for its whole lifetime, and `Server`'s drain-on-drop answers
//! everything already admitted.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use msd_nn::{DynModel, ParamStore, PrecisionTier};
use msd_serve::{ServeConfig, ServeError, ServeStats, Server};
use msd_tensor::Tensor;

use crate::health::{BreakerConfig, BrownoutConfig, ReplicaHealth};
use crate::http::json_escape;
use crate::router::route_healthy;

/// Builds one fresh instance of a model: the architecture with its
/// deterministic parameter initialisation. The registry overwrites the
/// returned store's values when a parameter blob is supplied, so the
/// factory fixes *names and shapes*; the blob fixes the numbers.
pub type ModelFactory = Box<dyn Fn() -> (DynModel, ParamStore) + Send + Sync>;

/// One published model version: `replicas` independent serving runtimes
/// over identical parameters.
pub struct ReplicaSet {
    /// Monotonic version number, starting at 1 for the registered model.
    pub version: u32,
    /// Precision tier of the published parameters (from the artifact's
    /// declared tier; `F32` when serving the factory's initial values).
    pub tier: PrecisionTier,
    servers: Vec<Server>,
    /// One health record per replica. A freshly published version starts
    /// with every breaker CLOSED: new parameters mean the old error
    /// evidence no longer applies.
    health: Vec<Arc<ReplicaHealth>>,
}

impl ReplicaSet {
    /// Number of replica servers in this version.
    pub fn replicas(&self) -> usize {
        self.servers.len()
    }

    /// Live stats snapshots, one per replica.
    pub fn stats(&self) -> Vec<ServeStats> {
        self.servers.iter().map(|s| s.stats()).collect()
    }

    /// The per-replica health records (breaker state, latency EWMA).
    pub fn health(&self) -> &[Arc<ReplicaHealth>] {
        &self.health
    }

    /// The replica to fail static to when every breaker is open: least-bad
    /// by [`ReplicaHealth::badness`], ties to the lowest index. The fleet
    /// still answers — a fully-open panel means the evidence no longer
    /// discriminates, and refusing all traffic would turn a partial outage
    /// into a total one.
    fn least_bad(&self) -> usize {
        (0..self.health.len())
            .min_by_key(|&i| self.health[i].badness())
            .unwrap_or(0)
    }
}

/// Everything the gateway reports about one answered prediction.
#[derive(Debug)]
pub struct PredictOk {
    /// The prediction, bit-identical to `Model::predict` on the version's
    /// parameters.
    pub y: Tensor,
    /// Version that admitted (and answered) the request.
    pub version: u32,
    /// Precision tier of the version that answered.
    pub tier: PrecisionTier,
    /// Replica index the router chose.
    pub replica: usize,
}

/// Why the registry could not answer a predict call.
#[derive(Debug)]
pub enum GatewayError {
    /// No model registered under that name.
    UnknownModel(String),
    /// The chosen replica's admission queue was full. Carries the
    /// `Retry-After` hint (seconds) the HTTP edge should emit.
    Overloaded {
        /// Suggested client back-off, seconds.
        retry_after_secs: u64,
    },
    /// The brownout policy shed the request before admission (queue depth
    /// or latency EWMA over threshold) — same 429 surface as `Overloaded`,
    /// but the replica never saw the request.
    Brownout {
        /// Suggested client back-off, seconds.
        retry_after_secs: u64,
    },
    /// The request's deadline expired before an answer was produced —
    /// either shed by the replica's batcher or timed out at the gateway's
    /// wait. Maps to HTTP 504.
    DeadlineExceeded,
    /// The replica answered with an internal serving error (worker panic).
    Internal(String),
    /// The replica is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            GatewayError::Overloaded { .. } => write!(f, "admission queue full"),
            GatewayError::Brownout { .. } => write!(f, "brownout: load shed before admission"),
            GatewayError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            GatewayError::Internal(msg) => write!(f, "internal error: {msg}"),
            GatewayError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// The `Retry-After` hint (seconds) for a shed request: one second of
/// floor, plus the batcher's full wait window, plus one second per full
/// queue's worth of requests already in flight, clamped to 30 s so a
/// misconfigured gateway can never tell clients to go away for minutes.
/// Pure so the known-answer test pins the exact values clients see.
pub fn retry_after_secs(in_flight: u64, queue_cap: usize, max_wait: Duration) -> u64 {
    let per_queue = in_flight / (queue_cap.max(1) as u64);
    (1 + max_wait.as_secs() + per_queue).min(30)
}

struct Entry {
    factory: ModelFactory,
    current: Mutex<Arc<ReplicaSet>>,
    next_version: AtomicU32,
}

/// Named models and their live replica sets.
pub struct Registry {
    models: RwLock<BTreeMap<String, Arc<Entry>>>,
    serve_cfg: ServeConfig,
    replicas: usize,
    breaker: BreakerConfig,
    brownout: BrownoutConfig,
    default_deadline: Option<Duration>,
}

impl Registry {
    /// An empty registry whose models each run `replicas` servers built
    /// from `serve_cfg`, with default breaker thresholds, brownout
    /// disabled, and no default deadline.
    pub fn new(serve_cfg: ServeConfig, replicas: usize) -> Registry {
        Registry::with_policies(
            serve_cfg,
            replicas,
            BreakerConfig::default(),
            BrownoutConfig::default(),
            None,
        )
    }

    /// [`Registry::new`] with explicit fault-tolerance policies: breaker
    /// thresholds, the brownout shed policy, and the deadline applied to
    /// requests that do not carry their own.
    pub fn with_policies(
        serve_cfg: ServeConfig,
        replicas: usize,
        breaker: BreakerConfig,
        brownout: BrownoutConfig,
        default_deadline: Option<Duration>,
    ) -> Registry {
        Registry {
            models: RwLock::new(BTreeMap::new()),
            serve_cfg,
            replicas: replicas.max(1),
            breaker,
            brownout,
            default_deadline,
        }
    }

    fn build_set(
        &self,
        factory: &ModelFactory,
        params: Option<&[u8]>,
        expect: Option<PrecisionTier>,
        version: u32,
    ) -> io::Result<ReplicaSet> {
        let mut servers = Vec::with_capacity(self.replicas);
        let mut health = Vec::with_capacity(self.replicas);
        let mut tier = PrecisionTier::F32;
        for i in 0..self.replicas {
            let (model, mut store) = factory();
            if let Some(bytes) = params {
                // Validates names/shapes against the factory-built store and
                // commits all-or-nothing; a bad blob aborts the whole build.
                // Decoding also installs the artifact's precision tier (and
                // quant tables) into the store, which serving lowers onto.
                msd_nn::store::decode(&mut store, bytes)?;
            }
            if i == 0 {
                // Every replica decodes the same bytes, so the first store's
                // tier speaks for the set. A declared expectation must match
                // exactly — never a silent fallback to another tier.
                tier = store.tier();
                if let Some(want) = expect {
                    if tier != want {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "precision tier mismatch: request declared {want}, artifact is {tier}"
                            ),
                        ));
                    }
                }
            }
            servers.push(Server::start(model, store, self.serve_cfg.clone())?);
            health.push(Arc::new(ReplicaHealth::new(self.breaker.clone())));
        }
        Ok(ReplicaSet {
            version,
            tier,
            servers,
            health,
        })
    }

    /// Registers `name` at version 1. `params` optionally overrides the
    /// factory's initial parameters with a stored blob (any format
    /// [`msd_nn::store::decode`] accepts).
    ///
    /// Fails with `AlreadyExists` if the name is taken — use
    /// [`Registry::swap`] to replace a live model.
    pub fn register(&self, name: &str, factory: ModelFactory, params: Option<&[u8]>) -> io::Result<u32> {
        self.register_tiered(name, factory, params, None)
    }

    /// [`Registry::register`] with a declared precision-tier expectation:
    /// the build fails (`InvalidData`) unless the decoded artifact's tier is
    /// exactly `expect`. `None` accepts whatever tier the artifact carries.
    pub fn register_tiered(
        &self,
        name: &str,
        factory: ModelFactory,
        params: Option<&[u8]>,
        expect: Option<PrecisionTier>,
    ) -> io::Result<u32> {
        let mut models = self.models.write().unwrap_or_else(|p| p.into_inner());
        if models.contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("model {name:?} is already registered"),
            ));
        }
        let set = self.build_set(&factory, params, expect, 1)?;
        models.insert(
            name.to_string(),
            Arc::new(Entry {
                factory,
                current: Mutex::new(Arc::new(set)),
                next_version: AtomicU32::new(2),
            }),
        );
        Ok(1)
    }

    fn entry(&self, name: &str) -> Result<Arc<Entry>, GatewayError> {
        self.models
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| GatewayError::UnknownModel(name.to_string()))
    }

    /// Hot-swaps `name` to new parameters under traffic.
    ///
    /// All-or-nothing: the new replica set is fully built and serving
    /// before the publish, and any failure (bad blob, shape mismatch)
    /// leaves the old version untouched and still serving. Zero requests
    /// drop across the publish — in-flight requests complete against the
    /// version that admitted them.
    pub fn swap(&self, name: &str, params: &[u8]) -> io::Result<u32> {
        self.swap_tiered(name, params, None)
    }

    /// [`Registry::swap`] with a declared precision-tier expectation: the
    /// swap is rejected (`InvalidData`, old version untouched) unless the
    /// new artifact's tier is exactly `expect`. `None` accepts any tier.
    pub fn swap_tiered(
        &self,
        name: &str,
        params: &[u8],
        expect: Option<PrecisionTier>,
    ) -> io::Result<u32> {
        let entry = self
            .entry(name)
            .map_err(|e| io::Error::new(io::ErrorKind::NotFound, e.to_string()))?;
        let version = entry.next_version.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(self.build_set(&entry.factory, Some(params), expect, version)?);
        let old = {
            let mut current = entry.current.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::replace(&mut *current, set)
        };
        // `old` drains here if no request still holds it; otherwise the last
        // in-flight request performs the drain when it drops its clone.
        drop(old);
        Ok(version)
    }

    /// Routes one request: picks the first replica in `key`'s deterministic
    /// failover order whose breaker is not open (fail-static to the
    /// least-bad replica when every breaker is open), applies the brownout
    /// policy, submits with the effective deadline, and waits for the
    /// answer.
    ///
    /// `deadline` is the caller-supplied absolute deadline (from the
    /// `X-Msd-Deadline-Ms` header); `None` falls back to the registry's
    /// default. The gateway waits a short grace past the deadline —
    /// `2 × max_wait + 50 ms` — so a batcher-shed request surfaces as the
    /// replica's typed `DeadlineExceeded` rather than a gateway-side
    /// timeout; only a genuinely wedged replica hits the timeout path,
    /// which counts as a breaker error.
    pub fn predict(
        &self,
        name: &str,
        key: &[u8],
        x: Tensor,
        deadline: Option<Instant>,
    ) -> Result<PredictOk, GatewayError> {
        let entry = self.entry(name)?;
        // Clone the published version out of the short-held lock; the swap
        // path can publish a successor at any time without affecting us.
        let set = entry
            .current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let now = Instant::now();
        let open: Vec<bool> = set.health.iter().map(|h| h.route_away(now)).collect();
        let replica = route_healthy(key, &open).unwrap_or_else(|| set.least_bad());
        let health = &set.health[replica];
        let server = &set.servers[replica];

        // Brownout: shed before admission when the chosen replica is
        // already saturated. Cheaper than queueing a request that will
        // blow its deadline anyway.
        let in_flight = server.in_flight();
        let shed_depth = self.brownout.max_in_flight > 0 && in_flight >= self.brownout.max_in_flight;
        let shed_latency =
            self.brownout.max_ewma_us > 0 && health.ewma_us() > self.brownout.max_ewma_us as f64;
        if shed_depth || shed_latency {
            return Err(GatewayError::Brownout {
                retry_after_secs: retry_after_secs(
                    in_flight,
                    self.serve_cfg.queue_cap,
                    self.serve_cfg.max_wait,
                ),
            });
        }

        let deadline = deadline.or_else(|| self.default_deadline.map(|d| now + d));
        let mut pending = match server.submit_with_deadline(x, deadline) {
            Ok(p) => p,
            Err(ServeError::Overloaded) => {
                // Queue-full is backpressure, not sickness: no breaker
                // feedback, just a typed 429 with a back-off hint.
                return Err(GatewayError::Overloaded {
                    retry_after_secs: retry_after_secs(
                        in_flight,
                        self.serve_cfg.queue_cap,
                        self.serve_cfg.max_wait,
                    ),
                });
            }
            Err(e) => return Err(self.fail(health, e)),
        };
        let grace = self.serve_cfg.max_wait * 2 + Duration::from_millis(50);
        let outcome = match deadline {
            Some(d) => {
                let cap = d.saturating_duration_since(Instant::now()) + grace;
                match pending.wait_timeout(cap) {
                    Some(r) => r,
                    None => {
                        // The replica kept the request past its deadline
                        // plus grace: wedged, not merely slow. Dropping the
                        // Pending detaches it; the ledger still balances
                        // because the replica's own shed/complete path
                        // accounts the request.
                        health.on_error();
                        return Err(GatewayError::DeadlineExceeded);
                    }
                }
            }
            None => pending.wait(),
        };
        match outcome {
            Ok(y) => {
                let latency_us = now.elapsed().as_micros().min(u64::MAX as u128) as u64;
                health.on_success(latency_us);
                Ok(PredictOk {
                    y,
                    version: set.version,
                    tier: set.tier,
                    replica,
                })
            }
            Err(e) => Err(self.fail(health, e)),
        }
    }

    /// Maps a replica error to the gateway surface, recording breaker
    /// feedback for the error kinds that indicate replica sickness.
    fn fail(&self, health: &ReplicaHealth, e: ServeError) -> GatewayError {
        match e {
            ServeError::Internal(msg) => {
                health.on_error();
                GatewayError::Internal(msg)
            }
            ServeError::DeadlineExceeded => {
                health.on_error();
                GatewayError::DeadlineExceeded
            }
            ServeError::Overloaded => GatewayError::Overloaded {
                retry_after_secs: retry_after_secs(
                    0,
                    self.serve_cfg.queue_cap,
                    self.serve_cfg.max_wait,
                ),
            },
            // Shutdown/cancel is lifecycle, not sickness.
            ServeError::ShuttingDown | ServeError::Canceled => GatewayError::ShuttingDown,
        }
    }

    /// The live published replica set for `name` (health + stats access
    /// for tests and diagnostics).
    pub fn current_set(&self, name: &str) -> Result<Arc<ReplicaSet>, GatewayError> {
        let entry = self.entry(name)?;
        let set = entry
            .current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        Ok(set)
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// The live version number of `name`.
    pub fn version(&self, name: &str) -> Result<u32, GatewayError> {
        Ok(self.current_set(name)?.version)
    }

    /// The live precision tier of `name`.
    pub fn tier(&self, name: &str) -> Result<PrecisionTier, GatewayError> {
        Ok(self.current_set(name)?.tier)
    }

    /// Per-model, per-replica stats as one JSON object:
    /// `{"models":[{"model":...,"version":...,"tier":...,"submitted":...,
    /// "replicas":[...]}],"tiers":[{"tier":...,"models":...,...}]}` — the
    /// trailing `tiers` array aggregates serve counters over every model
    /// published at that precision tier.
    pub fn stats_json(&self) -> String {
        let entries: Vec<(String, Arc<ReplicaSet>)> = {
            let models = self.models.read().unwrap_or_else(|p| p.into_inner());
            models
                .iter()
                .map(|(name, e)| {
                    (
                        name.clone(),
                        e.current.lock().unwrap_or_else(|p| p.into_inner()).clone(),
                    )
                })
                .collect()
        };
        // Aggregate counters per precision tier while walking the models:
        // [tier, models, submitted, completed, rejected, failed, expired].
        let mut tier_rows: BTreeMap<&'static str, [u64; 6]> = BTreeMap::new();
        let mut s = String::from("{\"models\":[");
        for (i, (name, set)) in entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let stats = set.stats();
            let (mut submitted, mut completed, mut rejected, mut failed, mut expired) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for st in &stats {
                submitted += st.submitted;
                completed += st.completed;
                rejected += st.rejected;
                failed += st.failed;
                expired += st.expired;
            }
            let row = tier_rows.entry(set.tier.as_str()).or_insert([0; 6]);
            for (slot, v) in [1, submitted, completed, rejected, failed, expired]
                .into_iter()
                .enumerate()
            {
                row[slot] += v;
            }
            let _ = write!(
                s,
                "{{\"model\":\"{}\",\"version\":{},\"tier\":\"{}\",\"submitted\":{},\
                 \"completed\":{},\"rejected\":{},\"failed\":{},\"expired\":{},\"replicas\":[",
                json_escape(name),
                set.version,
                set.tier,
                submitted,
                completed,
                rejected,
                failed,
                expired
            );
            for (j, st) in stats.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                // Splice the gateway-side health fields into the replica's
                // serve-stats object so one GET answers both layers.
                let mut obj = st.to_json();
                debug_assert!(obj.ends_with('}'));
                obj.pop();
                let h = &set.health[j];
                let _ = write!(
                    obj,
                    ",\"breaker\":\"{}\",\"ewma_us\":{}}}",
                    h.state().name(),
                    h.ewma_us() as u64
                );
                s.push_str(&obj);
            }
            s.push_str("]}");
        }
        s.push_str("],\"tiers\":[");
        for (i, (tier, row)) in tier_rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"tier\":\"{tier}\",\"models\":{},\"submitted\":{},\"completed\":{},\
                 \"rejected\":{},\"failed\":{},\"expired\":{}}}",
                row[0], row[1], row[2], row[3], row[4], row[5]
            );
        }
        s.push_str("]}");
        s
    }

    /// Drops every model, draining all replica servers (blocks until every
    /// in-flight request is answered).
    pub fn shutdown(&self) {
        self.models
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_known_answers() {
        // Idle gateway, sub-second wait window: the 1 s floor.
        assert_eq!(retry_after_secs(0, 256, Duration::from_micros(200)), 1);
        // A 2 s wait window raises the hint past the window itself.
        assert_eq!(retry_after_secs(0, 256, Duration::from_secs(2)), 3);
        // One extra second per full queue's worth of in-flight work.
        assert_eq!(retry_after_secs(512, 256, Duration::from_micros(200)), 3);
        assert_eq!(retry_after_secs(255, 256, Duration::from_micros(200)), 1);
        // Clamped: a wedged fleet never tells clients "come back in an hour".
        assert_eq!(retry_after_secs(1 << 40, 1, Duration::from_secs(600)), 30);
        // Degenerate queue_cap of 0 must not divide by zero.
        assert_eq!(retry_after_secs(5, 0, Duration::ZERO), 6);
    }
}
