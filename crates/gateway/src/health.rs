//! Per-replica health scoring: circuit breakers and the brownout policy.
//!
//! Every replica of a published [`crate::ReplicaSet`] carries a
//! [`ReplicaHealth`]: a consecutive-error breaker, a latency EWMA, and the
//! classic three-state machine (DESIGN.md §14):
//!
//! ```text
//!            error streak ≥ threshold, or EWMA > latency cap
//!   CLOSED ────────────────────────────────────────────────▶ OPEN
//!     ▲                                                       │
//!     │ half_open_successes consecutive                       │ cooldown
//!     │ probe successes                                       │ elapses
//!     │                          any error                    ▼
//!   HALF-OPEN ◀──────────────────────────────────────── (route again)
//!      │                                                      ▲
//!      └──────────────── error → OPEN ────────────────────────┘
//! ```
//!
//! While OPEN (cooldown pending) the router deterministically rehashes keys
//! away from the replica ([`crate::router::route_healthy`]); HALF-OPEN
//! rejoins routing so real traffic probes recovery. State only ever changes
//! on recorded outcomes and cooldown expiry — with zero errors the breaker
//! stays CLOSED forever and routing is byte-identical to the plain FNV
//! router, which is what keeps chaos-off behavior bit-exact.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker thresholds shared by every replica of a gateway.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive errors that trip the breaker OPEN. `0` disables the
    /// error breaker.
    pub consecutive_errors: u32,
    /// Latency EWMA (microseconds) above which the breaker trips OPEN.
    /// `0` (the default) disables the latency breaker.
    pub latency_ewma_us: u64,
    /// EWMA smoothing factor in `(0, 1]`; higher weighs recent requests
    /// more.
    pub ewma_alpha: f64,
    /// How long an OPEN breaker keeps its replica out of routing before
    /// probing recovery (HALF-OPEN).
    pub cooldown: Duration,
    /// Consecutive successful probes that close a HALF-OPEN breaker.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            consecutive_errors: 5,
            latency_ewma_us: 0,
            ewma_alpha: 0.2,
            cooldown: Duration::from_millis(250),
            half_open_successes: 3,
        }
    }
}

/// Early load-shedding thresholds. Both default to disabled, so a gateway
/// without an explicit brownout policy behaves exactly as before this
/// policy existed: requests ride the queue until `Overloaded` or their
/// deadline.
#[derive(Clone, Debug, Default)]
pub struct BrownoutConfig {
    /// Shed (429 + `Retry-After`) when the chosen replica already has this
    /// many requests in flight. `0` disables.
    pub max_in_flight: u64,
    /// Shed when the chosen replica's latency EWMA (microseconds) exceeds
    /// this. `0` disables. The EWMA is the gateway-side per-replica signal
    /// — a cheap stand-in for tail latency that costs no stats snapshot on
    /// the request path.
    pub max_ewma_us: u64,
}

/// The breaker's observable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: routed normally.
    Closed,
    /// Tripped: routed away from until the cooldown elapses.
    Open,
    /// Probing: routed normally; the next outcomes decide.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase tag for stats JSON.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct Core {
    state: BreakerState,
    opened_at: Option<Instant>,
    error_streak: u32,
    probe_successes: u32,
    ewma_us: f64,
    errors_total: u64,
    successes_total: u64,
}

/// One replica's live health record. All methods take a short mutex; the
/// predict path calls each at most once per request.
pub struct ReplicaHealth {
    cfg: BreakerConfig,
    core: Mutex<Core>,
}

impl ReplicaHealth {
    /// A healthy (CLOSED) record under `cfg`.
    pub fn new(cfg: BreakerConfig) -> ReplicaHealth {
        ReplicaHealth {
            cfg,
            core: Mutex::new(Core {
                state: BreakerState::Closed,
                opened_at: None,
                error_streak: 0,
                probe_successes: 0,
                ewma_us: 0.0,
                errors_total: 0,
                successes_total: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether the router should avoid this replica right now. An OPEN
    /// breaker whose cooldown has elapsed transitions to HALF-OPEN here
    /// (and rejoins routing), so probing needs no background thread.
    pub fn route_away(&self, now: Instant) -> bool {
        let mut core = self.lock();
        match core.state {
            BreakerState::Closed | BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let elapsed = core
                    .opened_at
                    .is_none_or(|t| now.saturating_duration_since(t) >= self.cfg.cooldown);
                if elapsed {
                    core.state = BreakerState::HalfOpen;
                    core.probe_successes = 0;
                    false
                } else {
                    true
                }
            }
        }
    }

    /// Records a successful answer and its end-to-end latency.
    pub fn on_success(&self, latency_us: u64) {
        let mut core = self.lock();
        core.successes_total += 1;
        core.error_streak = 0;
        let alpha = self.cfg.ewma_alpha.clamp(f64::EPSILON, 1.0);
        core.ewma_us = if core.successes_total == 1 {
            latency_us as f64
        } else {
            alpha * latency_us as f64 + (1.0 - alpha) * core.ewma_us
        };
        match core.state {
            BreakerState::HalfOpen => {
                core.probe_successes += 1;
                if core.probe_successes >= self.cfg.half_open_successes.max(1) {
                    core.state = BreakerState::Closed;
                    core.opened_at = None;
                }
            }
            BreakerState::Closed => {
                if self.cfg.latency_ewma_us > 0 && core.ewma_us > self.cfg.latency_ewma_us as f64
                {
                    core.state = BreakerState::Open;
                    core.opened_at = Some(Instant::now());
                }
            }
            // A success landing while OPEN belongs to a request admitted
            // before the trip; it neither probes nor heals.
            BreakerState::Open => {}
        }
    }

    /// Records a breaker-relevant error (worker panic, deadline blown,
    /// gateway-side wait timeout). Queue-full rejections are *not* errors:
    /// backpressure is load, not sickness, and feeds the brownout policy
    /// instead.
    pub fn on_error(&self) {
        let mut core = self.lock();
        core.errors_total += 1;
        core.error_streak = core.error_streak.saturating_add(1);
        match core.state {
            BreakerState::Closed => {
                if self.cfg.consecutive_errors > 0
                    && core.error_streak >= self.cfg.consecutive_errors
                {
                    core.state = BreakerState::Open;
                    core.opened_at = Some(Instant::now());
                }
            }
            // One failed probe re-opens immediately with a fresh cooldown.
            BreakerState::HalfOpen => {
                core.state = BreakerState::Open;
                core.opened_at = Some(Instant::now());
            }
            BreakerState::Open => {}
        }
    }

    /// Current state (no side effects — cooldown expiry is only applied by
    /// [`ReplicaHealth::route_away`]).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Current latency EWMA, microseconds (0 before the first success).
    pub fn ewma_us(&self) -> f64 {
        self.lock().ewma_us
    }

    /// Fail-static ranking for the all-breakers-open case: fewer
    /// consecutive errors first, then lower EWMA. Lower is better.
    pub fn badness(&self) -> (u32, u64) {
        let core = self.lock();
        (core.error_streak, core.ewma_us as u64)
    }

    /// Lifetime `(successes, errors)` counts.
    pub fn totals(&self) -> (u64, u64) {
        let core = self.lock();
        (core.successes_total, core.errors_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> BreakerConfig {
        BreakerConfig {
            consecutive_errors: 3,
            cooldown: Duration::from_millis(30),
            half_open_successes: 2,
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_errors_and_probes_after_cooldown() {
        let h = ReplicaHealth::new(quick_cfg());
        let now = Instant::now();
        assert_eq!(h.state(), BreakerState::Closed);
        h.on_error();
        h.on_error();
        assert!(!h.route_away(now), "streak below threshold stays closed");
        h.on_error();
        assert_eq!(h.state(), BreakerState::Open);
        assert!(h.route_away(Instant::now()));
        // Cooldown elapses → HALF-OPEN rejoins routing.
        std::thread::sleep(Duration::from_millis(40));
        assert!(!h.route_away(Instant::now()));
        assert_eq!(h.state(), BreakerState::HalfOpen);
        // Two successful probes close it.
        h.on_success(100);
        assert_eq!(h.state(), BreakerState::HalfOpen);
        h.on_success(100);
        assert_eq!(h.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let h = ReplicaHealth::new(quick_cfg());
        for _ in 0..3 {
            h.on_error();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(!h.route_away(Instant::now())); // half-open probe window
        h.on_error();
        assert_eq!(h.state(), BreakerState::Open);
        assert!(h.route_away(Instant::now()));
    }

    #[test]
    fn success_resets_the_error_streak() {
        let h = ReplicaHealth::new(quick_cfg());
        for _ in 0..100 {
            h.on_error();
            h.on_error();
            h.on_success(50);
        }
        assert_eq!(h.state(), BreakerState::Closed, "streak never reaches 3");
    }

    #[test]
    fn latency_breaker_opens_on_sustained_slow_answers() {
        let h = ReplicaHealth::new(BreakerConfig {
            latency_ewma_us: 1_000,
            ..quick_cfg()
        });
        h.on_success(100);
        assert_eq!(h.state(), BreakerState::Closed);
        for _ in 0..50 {
            h.on_success(100_000);
        }
        assert_eq!(h.state(), BreakerState::Open);
    }

    #[test]
    fn zero_thresholds_disable_the_breakers() {
        let h = ReplicaHealth::new(BreakerConfig {
            consecutive_errors: 0,
            latency_ewma_us: 0,
            ..BreakerConfig::default()
        });
        for _ in 0..1000 {
            h.on_error();
            h.on_success(u64::MAX / 2);
        }
        assert_eq!(h.state(), BreakerState::Closed);
    }

    #[test]
    fn badness_ranks_error_streak_before_latency() {
        let sick = ReplicaHealth::new(quick_cfg());
        sick.on_error();
        sick.on_error();
        let slow = ReplicaHealth::new(quick_cfg());
        slow.on_success(9_000);
        assert!(slow.badness() < sick.badness());
    }
}
