//! The binary tensor frame carried by the hot-path predict endpoint.
//!
//! Text encodings burn cycles exactly where the gateway is supposed to be
//! cheap, so predictions travel as a fixed little-endian frame (the HTTP
//! `Content-Length` is the outer length prefix; the frame itself carries
//! the shape):
//!
//! ```text
//! offset  size        field
//! 0       4           magic "MSDT"
//! 4       4           ndim: u32 LE            (1 ..= MAX_DIMS)
//! 8       4 * ndim    dims[i]: u32 LE
//! ...     4 * Πdims   row-major f32 LE payload
//! ```
//!
//! Decoding is byte-exact and paranoid: magic, rank, per-dim and total
//! element caps are all checked against the *declared* sizes before any
//! allocation, and the frame length must match the declaration to the byte.
//! Floats round-trip as raw bits — NaN payloads and signed zeros included —
//! so a framed tensor is bit-identical on both ends of the socket.

use msd_tensor::Tensor;

/// Frame magic, first 4 bytes on the wire.
pub const TENSOR_MAGIC: &[u8; 4] = b"MSDT";

/// Largest accepted tensor rank.
pub const MAX_DIMS: usize = 8;

/// Largest accepted element count (64 MiB of f32 payload).
pub const MAX_ELEMS: usize = 1 << 24;

/// Media type for frames travelling over HTTP.
pub const CONTENT_TYPE: &str = "application/x-msd-tensor";

/// Encodes `t` as one wire frame.
pub fn encode_tensor(t: &Tensor) -> Vec<u8> {
    let data = t.data();
    let mut out = Vec::with_capacity(8 + 4 * t.ndim() + 4 * data.len());
    out.extend_from_slice(TENSOR_MAGIC);
    out.extend_from_slice(&(t.ndim() as u32).to_le_bytes());
    for &d in t.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &x in data {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Decodes one wire frame, validating every declared size before allocating.
pub fn decode_tensor(bytes: &[u8]) -> Result<Tensor, String> {
    if bytes.len() < 8 {
        return Err(format!("frame of {} bytes is too short", bytes.len()));
    }
    if &bytes[..4] != TENSOR_MAGIC {
        return Err("bad frame magic (want MSDT)".into());
    }
    let ndim = read_u32(bytes, 4) as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(format!("rank {ndim} outside 1..={MAX_DIMS}"));
    }
    let dims_end = 8 + 4 * ndim;
    if bytes.len() < dims_end {
        return Err("frame truncated inside the dims".into());
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut elems: usize = 1;
    for i in 0..ndim {
        let d = read_u32(bytes, 8 + 4 * i) as usize;
        elems = elems
            .checked_mul(d)
            .filter(|&n| n <= MAX_ELEMS)
            .ok_or_else(|| format!("declared shape {shape:?}x{d} exceeds {MAX_ELEMS} elements"))?;
        shape.push(d);
    }
    let expect = dims_end + 4 * elems;
    if bytes.len() != expect {
        return Err(format!(
            "frame length {} does not match declared {} bytes",
            bytes.len(),
            expect
        ));
    }
    let data: Vec<f32> = bytes[dims_end..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Tensor::from_vec(&shape, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact_including_nan_payloads() {
        let data = vec![
            1.5f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::from_bits(0x7fc0_dead), // NaN with payload
            f32::MIN_POSITIVE / 2.0,     // subnormal
        ];
        let t = Tensor::from_vec(&[1, 2, 3], data.clone());
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.shape(), &[1, 2, 3]);
        for (a, b) in data.iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let frame = encode_tensor(&t);
        for cut in 0..frame.len() {
            assert!(decode_tensor(&frame[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_tensor(&frame).is_ok());
    }

    #[test]
    fn hostile_declarations_are_rejected_before_allocation() {
        // Wrong magic.
        assert!(decode_tensor(b"NOPE\x01\x00\x00\x00").is_err());
        // Rank 0 and rank 9.
        let mut f = Vec::from(*TENSOR_MAGIC);
        f.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_tensor(&f).is_err());
        let mut f = Vec::from(*TENSOR_MAGIC);
        f.extend_from_slice(&9u32.to_le_bytes());
        f.extend_from_slice(&[0u8; 36]);
        assert!(decode_tensor(&f).is_err());
        // Overflowing element product: [u32::MAX, u32::MAX].
        let mut f = Vec::from(*TENSOR_MAGIC);
        f.extend_from_slice(&2u32.to_le_bytes());
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_tensor(&f).is_err());
        // Declared data longer than the frame.
        let t = Tensor::from_vec(&[4], vec![0.0; 4]);
        let mut frame = encode_tensor(&t);
        frame.push(0);
        assert!(decode_tensor(&frame).is_err());
    }
}
