//! Property-based tests for the metric definitions: bounds, symmetries,
//! and scale behaviours that must hold for arbitrary inputs.

use msd_metrics::anomaly::{point_adjusted_scores, threshold_by_ratio};
use msd_metrics::{accuracy, mae, mase, mean_ranks, mse, owa, smape, win_counts};
use proptest::prelude::*;

fn series(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, n..=n)
}

proptest! {
    #[test]
    fn mse_mae_nonnegative_and_zero_on_self(s in series(16)) {
        prop_assert_eq!(mse(&s, &s), 0.0);
        prop_assert_eq!(mae(&s, &s), 0.0);
        let shifted: Vec<f32> = s.iter().map(|v| v + 1.0).collect();
        prop_assert!(mse(&s, &shifted) > 0.0);
        prop_assert!((mae(&s, &shifted) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mse_dominates_mae_squared(a in series(16), b in series(16)) {
        // Jensen: E[d²] ≥ (E|d|)².
        let m2 = mse(&a, &b);
        let m1 = mae(&a, &b);
        prop_assert!(m2 + 1e-3 >= m1 * m1);
    }

    #[test]
    fn mse_is_symmetric(a in series(12), b in series(12)) {
        prop_assert!((mse(&a, &b) - mse(&b, &a)).abs() < 1e-4);
        prop_assert!((mae(&a, &b) - mae(&b, &a)).abs() < 1e-4);
    }

    #[test]
    fn smape_bounded_and_symmetric(a in series(10), b in series(10)) {
        let s = smape(&a, &b);
        prop_assert!((0.0..=200.0 + 1e-3).contains(&s));
        prop_assert!((s - smape(&b, &a)).abs() < 1e-3);
    }

    #[test]
    fn smape_scale_invariant(a in series(10), k in 0.5f32..4.0) {
        // SMAPE is invariant to multiplying both series by a positive k.
        let b: Vec<f32> = a.iter().map(|v| v * 0.7 + 1.0).collect();
        let ka: Vec<f32> = a.iter().map(|v| v * k).collect();
        let kb: Vec<f32> = b.iter().map(|v| v * k).collect();
        prop_assert!((smape(&a, &b) - smape(&ka, &kb)).abs() < 1e-2);
    }

    #[test]
    fn mase_scales_inversely_with_insample_roughness(seed in 0u64..300) {
        // Doubling the in-sample variation halves MASE for a fixed error.
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let insample: Vec<f32> = (0..50).map(|_| rng.normal()).collect();
        let insample2: Vec<f32> = insample.iter().map(|v| v * 2.0).collect();
        let truth = vec![0.0f32; 8];
        let pred = vec![1.0f32; 8];
        let m1 = mase(&pred, &truth, &insample, 1);
        let m2 = mase(&pred, &truth, &insample2, 1);
        prop_assert!((m1 / m2 - 2.0).abs() < 0.05, "{m1} vs {m2}");
    }

    #[test]
    fn owa_is_one_for_the_reference(s in 1.0f32..50.0, m in 0.1f32..5.0) {
        prop_assert!((owa(s, m, s, m) - 1.0).abs() < 1e-6);
        // Halving both components halves OWA.
        prop_assert!((owa(s / 2.0, m / 2.0, s, m) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn accuracy_bounds(preds in prop::collection::vec(0usize..5, 1..40)) {
        let truth: Vec<usize> = preds.iter().map(|&p| (p + 1) % 5).collect();
        prop_assert_eq!(accuracy(&preds, &preds), 1.0);
        prop_assert_eq!(accuracy(&preds, &truth), 0.0);
    }

    #[test]
    fn win_counts_total_at_least_benchmarks(rows in 1usize..10, models in 2usize..6, seed in 0u64..500) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let scores: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..models).map(|_| rng.uniform()).collect())
            .collect();
        let wins = win_counts(&scores);
        prop_assert_eq!(wins.len(), models);
        let total: usize = wins.iter().sum();
        prop_assert!(total >= rows, "ties only add");
    }

    #[test]
    fn mean_ranks_average_to_midpoint(rows in 1usize..10, models in 2usize..6, seed in 0u64..500) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let scores: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..models).map(|_| rng.uniform()).collect())
            .collect();
        let ranks = mean_ranks(&scores);
        // Sum of ranks per benchmark is fixed: models(models+1)/2.
        let avg: f32 = ranks.iter().sum::<f32>();
        let expect = models as f32 * (models as f32 + 1.0) / 2.0;
        prop_assert!((avg - expect).abs() < 1e-3, "{avg} vs {expect}");
        for r in ranks {
            prop_assert!((1.0..=models as f32).contains(&r));
        }
    }

    #[test]
    fn point_adjust_never_reduces_scores(n in 4usize..64, seed in 0u64..500) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let truth: Vec<bool> = (0..n).map(|_| rng.uniform() < 0.2).collect();
        let pred: Vec<bool> = (0..n).map(|_| rng.uniform() < 0.2).collect();
        let adjusted = point_adjusted_scores(&pred, &truth);
        // Raw (non-adjusted) F1 computed directly:
        let tp = pred.iter().zip(&truth).filter(|(&p, &t)| p && t).count() as f32;
        let fp = pred.iter().zip(&truth).filter(|(&p, &t)| p && !t).count() as f32;
        let fn_ = pred.iter().zip(&truth).filter(|(&p, &t)| !p && t).count() as f32;
        let raw_recall = if tp + fn_ == 0.0 { 0.0 } else { tp / (tp + fn_) };
        prop_assert!(adjusted.recall + 1e-6 >= raw_recall);
        let _ = fp;
        prop_assert!((0.0..=1.0).contains(&adjusted.f1));
    }

    #[test]
    fn threshold_flags_at_most_ratio(n in 10usize..200, ratio in 0.01f32..0.5, seed in 0u64..500) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        // Distinct scores to avoid tie inflation.
        let scores: Vec<f32> = (0..n).map(|i| i as f32 + 0.5 * rng.uniform()).collect();
        let thr = threshold_by_ratio(&scores, ratio);
        let flagged = scores.iter().filter(|&&s| s > thr).count();
        prop_assert!(flagged as f32 <= ratio * n as f32 + 1.0);
    }
}
