//! Anomaly-detection scoring: point-wise precision/recall/F1 with the
//! *point-adjust* convention used by the paper's benchmark suite (an event
//! counts as detected if any point inside it is flagged; the whole event is
//! then credited).

/// Precision / recall / F1 for one detection run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionScores {
    /// Fraction of flagged points that are truly anomalous.
    pub precision: f32,
    /// Fraction of anomalous points that were flagged.
    pub recall: f32,
    /// Harmonic mean of precision and recall.
    pub f1: f32,
}

impl DetectionScores {
    fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f32 / (tp + fp) as f32
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f32 / (tp + fn_) as f32
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Applies the point-adjust rule in place: for every contiguous true-anomaly
/// segment that contains at least one predicted point, all its points are
/// marked predicted.
pub fn point_adjust(pred: &mut [bool], truth: &[bool]) {
    assert_eq!(pred.len(), truth.len(), "point_adjust length mismatch");
    let n = truth.len();
    let mut i = 0;
    while i < n {
        if truth[i] {
            let start = i;
            while i < n && truth[i] {
                i += 1;
            }
            if pred[start..i].iter().any(|&p| p) {
                for p in &mut pred[start..i] {
                    *p = true;
                }
            }
        } else {
            i += 1;
        }
    }
}

/// Point-adjusted precision/recall/F1 of `pred` against `truth`.
pub fn point_adjusted_scores(pred: &[bool], truth: &[bool]) -> DetectionScores {
    let mut adjusted = pred.to_vec();
    point_adjust(&mut adjusted, truth);
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (&p, &t) in adjusted.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    DetectionScores::from_counts(tp, fp, fn_)
}

/// Chooses the detection threshold as the `(1 − ratio)` quantile of the
/// anomaly scores — the "anomaly ratio" convention of the benchmark suite
/// (flag the top `ratio` fraction of points).
pub fn threshold_by_ratio(scores: &[f32], ratio: f32) -> f32 {
    assert!(!scores.is_empty(), "threshold of empty scores");
    assert!((0.0..=1.0).contains(&ratio), "ratio in [0,1]");
    let mut sorted = scores.to_vec();
    sorted.sort_by(f32::total_cmp);
    let idx = ((sorted.len() as f32) * (1.0 - ratio)) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let truth = [false, true, true, false];
        let pred = [false, true, true, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn point_adjust_credits_whole_event() {
        let truth = [false, true, true, true, false];
        // Only one point of the 3-point event is flagged.
        let pred = [false, false, true, false, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert_eq!(s.recall, 1.0, "point-adjust should credit the whole event");
        assert_eq!(s.precision, 1.0);
    }

    #[test]
    fn missed_event_not_credited() {
        let truth = [true, true, false, true, true];
        let pred = [true, false, false, false, false];
        let s = point_adjusted_scores(&pred, &truth);
        // First event credited (2 TP), second missed (2 FN).
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn false_positives_hurt_precision() {
        let truth = [false, false, false, true];
        let pred = [true, true, false, true];
        let s = point_adjusted_scores(&pred, &truth);
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn no_predictions_gives_zero_f1() {
        let truth = [true, false];
        let pred = [false, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn threshold_selects_top_fraction() {
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let thr = threshold_by_ratio(&scores, 0.1);
        let flagged = scores.iter().filter(|&&s| s > thr).count();
        assert!(flagged <= 10, "flagged {flagged}");
        assert!(flagged >= 8, "flagged {flagged}");
    }
}
