//! Anomaly-detection scoring: point-wise precision/recall/F1 with the
//! *point-adjust* convention used by the paper's benchmark suite (an event
//! counts as detected if any point inside it is flagged; the whole event is
//! then credited).

/// Precision / recall / F1 for one detection run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionScores {
    /// Fraction of flagged points that are truly anomalous.
    pub precision: f32,
    /// Fraction of anomalous points that were flagged.
    pub recall: f32,
    /// Harmonic mean of precision and recall.
    pub f1: f32,
}

impl DetectionScores {
    fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f32 / (tp + fp) as f32
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f32 / (tp + fn_) as f32
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Applies the point-adjust rule in place: for every contiguous true-anomaly
/// segment that contains at least one predicted point, all its points are
/// marked predicted.
pub fn point_adjust(pred: &mut [bool], truth: &[bool]) {
    assert_eq!(pred.len(), truth.len(), "point_adjust length mismatch");
    let n = truth.len();
    let mut i = 0;
    while i < n {
        if truth[i] {
            let start = i;
            while i < n && truth[i] {
                i += 1;
            }
            if pred[start..i].iter().any(|&p| p) {
                for p in &mut pred[start..i] {
                    *p = true;
                }
            }
        } else {
            i += 1;
        }
    }
}

/// Point-adjusted precision/recall/F1 of `pred` against `truth`.
pub fn point_adjusted_scores(pred: &[bool], truth: &[bool]) -> DetectionScores {
    let mut adjusted = pred.to_vec();
    point_adjust(&mut adjusted, truth);
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (&p, &t) in adjusted.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    DetectionScores::from_counts(tp, fp, fn_)
}

/// Point-adjusted F1 of thresholded `scores` against `truth`: flags every
/// point with `score > threshold`, applies [`point_adjust`], and returns the
/// resulting F1. This is the single number the paper's Sec. IV anomaly
/// protocol reports per (dataset, threshold) pair; pick `threshold` with
/// [`threshold_by_ratio`] to reproduce the anomaly-ratio convention.
pub fn point_adjusted_f1(scores: &[f32], truth: &[bool], threshold: f32) -> f32 {
    assert_eq!(scores.len(), truth.len(), "point_adjusted_f1 length mismatch");
    let pred: Vec<bool> = scores.iter().map(|&s| s > threshold).collect();
    point_adjusted_scores(&pred, truth).f1
}

/// Chooses the detection threshold as the `(1 − ratio)` quantile of the
/// anomaly scores — the "anomaly ratio" convention of the benchmark suite
/// (flag the top `ratio` fraction of points).
pub fn threshold_by_ratio(scores: &[f32], ratio: f32) -> f32 {
    assert!(!scores.is_empty(), "threshold of empty scores");
    assert!((0.0..=1.0).contains(&ratio), "ratio in [0,1]");
    let mut sorted = scores.to_vec();
    sorted.sort_by(f32::total_cmp);
    let idx = ((sorted.len() as f32) * (1.0 - ratio)) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let truth = [false, true, true, false];
        let pred = [false, true, true, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn point_adjust_credits_whole_event() {
        let truth = [false, true, true, true, false];
        // Only one point of the 3-point event is flagged.
        let pred = [false, false, true, false, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert_eq!(s.recall, 1.0, "point-adjust should credit the whole event");
        assert_eq!(s.precision, 1.0);
    }

    #[test]
    fn missed_event_not_credited() {
        let truth = [true, true, false, true, true];
        let pred = [true, false, false, false, false];
        let s = point_adjusted_scores(&pred, &truth);
        // First event credited (2 TP), second missed (2 FN).
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn false_positives_hurt_precision() {
        let truth = [false, false, false, true];
        let pred = [true, true, false, true];
        let s = point_adjusted_scores(&pred, &truth);
        assert!((s.precision - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn no_predictions_gives_zero_f1() {
        let truth = [true, false];
        let pred = [false, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert_eq!(s.f1, 0.0);
    }

    /// Known-answer case, hand-computed: truth has one 4-point segment at
    /// [2, 6); pred hits only index 4. Point-adjust expands the hit to the
    /// whole segment, so the adjusted prediction is exactly the truth mask:
    /// tp = 4, fp = 0, fn = 0 → precision = recall = f1 = 1.
    #[test]
    fn single_point_hit_expands_to_whole_segment() {
        let truth = [false, false, true, true, true, true, false, false];
        let mut pred = [false, false, false, false, true, false, false, false];
        point_adjust(&mut pred, &truth);
        assert_eq!(pred, truth, "adjusted mask must equal the segment mask");
        let s = point_adjusted_scores(
            &[false, false, false, false, true, false, false, false],
            &truth,
        );
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    /// Hand-computed mixed case: two segments [1,3) and [5,8), 5 anomalous
    /// points total. Pred hits index 2 (credits segment one: 2 TP), misses
    /// segment two entirely (3 FN), and flags normal index 4 (1 FP).
    /// precision = 2/3, recall = 2/5, f1 = 2·(2/3)·(2/5)/(2/3 + 2/5) = 1/2.
    #[test]
    fn known_answer_two_segments_one_missed() {
        let truth = [false, true, true, false, false, true, true, true];
        let pred = [false, false, true, false, true, false, false, false];
        let s = point_adjusted_scores(&pred, &truth);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-6, "precision {}", s.precision);
        assert!((s.recall - 2.0 / 5.0).abs() < 1e-6, "recall {}", s.recall);
        assert!((s.f1 - 0.5).abs() < 1e-6, "f1 {}", s.f1);
    }

    /// Empty-label edge case: no true anomalies. Any prediction is a false
    /// positive (precision 0), and with zero positives recall is defined to
    /// 0 — so F1 is 0, never NaN.
    #[test]
    fn empty_labels_give_zero_f1_not_nan() {
        let truth = [false; 6];
        let s = point_adjusted_scores(&[false, true, false, true, false, false], &truth);
        assert_eq!((s.precision, s.recall, s.f1), (0.0, 0.0, 0.0));
        let quiet = point_adjusted_scores(&[false; 6], &truth);
        assert_eq!(quiet.f1, 0.0);
        assert!(!quiet.f1.is_nan() && !s.f1.is_nan());
        // Degenerate empty slices are also defined (all counts zero).
        let empty = point_adjusted_scores(&[], &[]);
        assert_eq!(empty.f1, 0.0);
    }

    /// All-anomalous edge case: the series is one giant segment, so a single
    /// flagged point yields perfect scores after adjustment, while an empty
    /// prediction stays at zero.
    #[test]
    fn all_anomalous_series() {
        let truth = [true; 5];
        let one_hit = point_adjusted_scores(&[false, false, true, false, false], &truth);
        assert_eq!((one_hit.precision, one_hit.recall, one_hit.f1), (1.0, 1.0, 1.0));
        let silent = point_adjusted_scores(&[false; 5], &truth);
        assert_eq!((silent.precision, silent.recall, silent.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn point_adjusted_f1_thresholds_scores() {
        // Scores: segment [1,3) peaks at 0.9 on index 1 only; index 4 is a
        // borderline normal point at exactly the threshold (NOT flagged —
        // the comparison is strict).
        let truth = [false, true, true, false, false];
        let scores = [0.1, 0.9, 0.2, 0.1, 0.5];
        let f1 = point_adjusted_f1(&scores, &truth, 0.5);
        assert_eq!(f1, 1.0, "one in-segment hit expands to a perfect match");
        // Lowering the threshold pulls in index 4 as a false positive:
        // tp = 2, fp = 1 → precision 2/3, recall 1, f1 = 0.8.
        let f1_loose = point_adjusted_f1(&scores, &truth, 0.4);
        assert!((f1_loose - 0.8).abs() < 1e-6, "f1 {f1_loose}");
    }

    #[test]
    fn threshold_selects_top_fraction() {
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let thr = threshold_by_ratio(&scores, 0.1);
        let flagged = scores.iter().filter(|&&s| s > thr).count();
        assert!(flagged <= 10, "flagged {flagged}");
        assert!(flagged >= 8, "flagged {flagged}");
    }
}
