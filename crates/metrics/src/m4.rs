//! M4-competition metrics for short-term forecasting (Eq. 8): SMAPE, MASE,
//! and OWA relative to the Naive2 reference method.

/// Symmetric mean absolute percentage error, in the M4 convention scaled to
/// `[0, 200]`.
pub fn smape(pred: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "smape length mismatch");
    assert!(!pred.is_empty(), "smape of empty slices");
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let denom = (p.abs() + t.abs()) as f64;
            if denom < 1e-9 {
                0.0
            } else {
                ((p - t).abs() as f64) / denom
            }
        })
        .sum();
    (200.0 * sum / pred.len() as f64) as f32
}

/// Mean absolute scaled error: forecast MAE scaled by the in-sample MAE of
/// the seasonal-naive method at periodicity `m` over `insample` (the
/// historical series the forecast was made from).
///
/// Returns `f32::INFINITY` when the in-sample scale is (numerically) zero,
/// i.e. the history is seasonal-naive-predictable exactly.
pub fn mase(pred: &[f32], truth: &[f32], insample: &[f32], m: usize) -> f32 {
    assert_eq!(pred.len(), truth.len(), "mase length mismatch");
    assert!(!pred.is_empty(), "mase of empty forecast");
    let m = m.max(1);
    assert!(
        insample.len() > m,
        "mase needs an in-sample series longer than the period"
    );
    let scale: f64 = (m..insample.len())
        .map(|t| ((insample[t] - insample[t - m]).abs()) as f64)
        .sum::<f64>()
        / (insample.len() - m) as f64;
    if scale < 1e-9 {
        return f32::INFINITY;
    }
    let err: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| ((p - t).abs()) as f64)
        .sum::<f64>()
        / pred.len() as f64;
    (err / scale) as f32
}

/// The overall weighted average (Eq. 8): the mean of SMAPE and MASE, each
/// normalised by the Naive2 reference values.
pub fn owa(smape_model: f32, mase_model: f32, smape_naive2: f32, mase_naive2: f32) -> f32 {
    assert!(smape_naive2 > 0.0 && mase_naive2 > 0.0, "owa reference must be positive");
    0.5 * (smape_model / smape_naive2 + mase_model / mase_naive2)
}

/// A bundle of the three short-term metrics for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct M4Score {
    /// Symmetric MAPE (0–200).
    pub smape: f32,
    /// Mean absolute scaled error.
    pub mase: f32,
    /// Overall weighted average vs Naive2.
    pub owa: f32,
}

impl M4Score {
    /// Weighted average of per-subset scores with the given weights
    /// (typically test-set sizes), the M4 aggregation rule.
    pub fn weighted_average(scores: &[(M4Score, f32)]) -> M4Score {
        let total: f32 = scores.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "weights must be positive");
        let mut acc = M4Score {
            smape: 0.0,
            mase: 0.0,
            owa: 0.0,
        };
        for (s, w) in scores {
            acc.smape += s.smape * w / total;
            acc.mase += s.mase * w / total;
            acc.owa += s.owa * w / total;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_perfect_is_zero_and_bounded() {
        assert_eq!(smape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // Opposite signs give the maximum 200.
        assert_eq!(smape(&[1.0], &[-1.0]), 200.0);
    }

    #[test]
    fn smape_known_value() {
        // |3-1| / (3+1) = 0.5 → 100
        assert_eq!(smape(&[3.0], &[1.0]), 100.0);
    }

    #[test]
    fn smape_handles_double_zero() {
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn mase_of_naive_on_random_walk_is_about_one() {
        // For a random walk, the one-step naive forecast achieves MASE ≈ 1
        // by construction (same error process in and out of sample).
        let mut rng = 1234u64;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut series = vec![0.0f32];
        for _ in 0..500 {
            let last = *series.last().unwrap();
            series.push(last + next());
        }
        let (insample, future) = series.split_at(400);
        let pred: Vec<f32> = std::iter::once(insample[insample.len() - 1])
            .chain(future[..future.len() - 1].iter().copied())
            .collect();
        let m = mase(&pred, future, insample, 1);
        assert!((m - 1.0).abs() < 0.35, "mase {m}");
    }

    #[test]
    fn mase_infinite_for_constant_insample() {
        let insample = vec![2.0; 20];
        assert_eq!(mase(&[1.0], &[2.0], &insample, 1), f32::INFINITY);
    }

    #[test]
    fn owa_of_reference_method_is_one() {
        assert_eq!(owa(10.0, 2.0, 10.0, 2.0), 1.0);
    }

    #[test]
    fn owa_better_than_reference_below_one() {
        assert!(owa(5.0, 1.0, 10.0, 2.0) < 1.0);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let a = M4Score { smape: 10.0, mase: 1.0, owa: 0.8 };
        let b = M4Score { smape: 20.0, mase: 2.0, owa: 1.2 };
        let avg = M4Score::weighted_average(&[(a, 3.0), (b, 1.0)]);
        assert!((avg.smape - 12.5).abs() < 1e-5);
        assert!((avg.mase - 1.25).abs() < 1e-5);
        assert!((avg.owa - 0.9).abs() < 1e-5);
    }
}
