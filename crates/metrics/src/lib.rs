#![warn(missing_docs)]

//! # msd-metrics
//!
//! Evaluation metrics for the five tasks of the MSD-Mixer paper (Table I):
//!
//! * regression errors for forecasting and imputation ([`regression`]);
//! * the M4 competition metrics SMAPE / MASE / OWA ([`m4`], Eq. 8);
//! * point-adjusted precision/recall/F1 for anomaly detection
//!   ([`anomaly`]);
//! * accuracy and mean rank for classification ([`classification`]);
//! * per-benchmark win counting for the Table II overview ([`ranking`]).

pub mod anomaly;
pub mod classification;
pub mod m4;
pub mod ranking;
pub mod regression;

pub use anomaly::{point_adjusted_f1, point_adjusted_scores, threshold_by_ratio, DetectionScores};
pub use classification::accuracy;
pub use m4::{mase, owa, smape, M4Score};
pub use ranking::{mean_ranks, win_counts};
pub use regression::{mae, masked_mae, masked_mse, mse, rmse};
