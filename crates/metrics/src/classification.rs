//! Classification metrics.

/// Fraction of predictions equal to the label.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "accuracy length mismatch");
    assert!(!pred.is_empty(), "accuracy of empty predictions");
    let correct = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f32 / pred.len() as f32
}

/// Per-class precision/recall aggregated into a macro-F1 — useful as a
/// secondary classification diagnostic on imbalanced synthetic sets.
pub fn macro_f1(pred: &[usize], truth: &[usize], classes: usize) -> f32 {
    assert_eq!(pred.len(), truth.len(), "macro_f1 length mismatch");
    assert!(classes > 0, "need at least one class");
    let mut f1_sum = 0.0f32;
    for c in 0..classes {
        let tp = pred
            .iter()
            .zip(truth)
            .filter(|(&p, &t)| p == c && t == c)
            .count() as f32;
        let fp = pred
            .iter()
            .zip(truth)
            .filter(|(&p, &t)| p == c && t != c)
            .count() as f32;
        let fn_ = pred
            .iter()
            .zip(truth)
            .filter(|(&p, &t)| p != c && t == c)
            .count() as f32;
        let precision = if tp + fp == 0.0 { 0.0 } else { tp / (tp + fp) };
        let recall = if tp + fn_ == 0.0 { 0.0 } else { tp / (tp + fn_) };
        f1_sum += if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
    }
    f1_sum / classes as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_known_values() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
        assert_eq!(accuracy(&[0], &[1]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        assert_eq!(macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1], 2), 1.0);
    }

    #[test]
    fn macro_f1_penalises_minority_class_failure() {
        // Majority class always predicted: class 1 has F1 = 0.
        let pred = [0, 0, 0, 0];
        let truth = [0, 0, 0, 1];
        let f1 = macro_f1(&pred, &truth, 2);
        assert!(f1 < 0.5, "macro f1 {f1}");
    }
}
