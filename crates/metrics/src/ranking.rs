//! Cross-model ranking utilities for the Table II overview ("in how many
//! benchmarks does each scheme perform best") and the Table XI mean rank.

/// For a matrix of scores `[benchmark][model]` where **lower is better**,
/// counts per model how many benchmarks it wins (ties credit every tied
/// leader, matching how the paper's bold-count reads).
pub fn win_counts(scores: &[Vec<f32>]) -> Vec<usize> {
    assert!(!scores.is_empty(), "win_counts of no benchmarks");
    let models = scores[0].len();
    let mut wins = vec![0usize; models];
    for row in scores {
        assert_eq!(row.len(), models, "ragged score matrix");
        let best = row.iter().copied().fold(f32::INFINITY, f32::min);
        for (m, &s) in row.iter().enumerate() {
            if (s - best).abs() <= f32::EPSILON * best.abs().max(1.0) {
                wins[m] += 1;
            }
        }
    }
    wins
}

/// Mean rank per model over benchmarks (1 = best). Lower-is-better scores;
/// ties share the average of the tied ranks.
pub fn mean_ranks(scores: &[Vec<f32>]) -> Vec<f32> {
    assert!(!scores.is_empty(), "mean_ranks of no benchmarks");
    let models = scores[0].len();
    let mut totals = vec![0.0f32; models];
    for row in scores {
        assert_eq!(row.len(), models, "ragged score matrix");
        let mut order: Vec<usize> = (0..models).collect();
        order.sort_by(|&a, &b| row[a].total_cmp(&row[b]));
        let mut i = 0;
        while i < models {
            // Group ties.
            let mut j = i;
            while j + 1 < models && row[order[j + 1]] == row[order[i]] {
                j += 1;
            }
            let avg_rank = ((i + 1 + j + 1) as f32) / 2.0;
            for &m in &order[i..=j] {
                totals[m] += avg_rank;
            }
            i = j + 1;
        }
    }
    totals.iter().map(|t| t / scores.len() as f32).collect()
}

/// Negates scores so that higher-is-better metrics (accuracy, F1) can feed
/// the lower-is-better ranking helpers.
pub fn negate(scores: &[Vec<f32>]) -> Vec<Vec<f32>> {
    scores
        .iter()
        .map(|row| row.iter().map(|&s| -s).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn win_counts_basic() {
        let scores = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 3.0],
            vec![1.0, 2.0, 3.0],
        ];
        assert_eq!(win_counts(&scores), vec![2, 1, 0]);
    }

    #[test]
    fn win_counts_ties_credit_all() {
        let scores = vec![vec![1.0, 1.0, 2.0]];
        assert_eq!(win_counts(&scores), vec![1, 1, 0]);
    }

    #[test]
    fn mean_ranks_basic() {
        let scores = vec![vec![1.0, 2.0, 3.0], vec![3.0, 1.0, 2.0]];
        let ranks = mean_ranks(&scores);
        assert_eq!(ranks, vec![2.0, 1.5, 2.5]);
    }

    #[test]
    fn mean_ranks_tie_shares_average() {
        let scores = vec![vec![1.0, 1.0, 5.0]];
        let ranks = mean_ranks(&scores);
        assert_eq!(ranks, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn negate_flips_order() {
        let acc = vec![vec![0.9, 0.7]];
        assert_eq!(win_counts(&negate(&acc)), vec![1, 0]);
    }
}
