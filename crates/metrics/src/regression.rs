//! Regression error metrics (long-term forecasting and imputation).

/// Mean squared error between equal-length slices.
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn mse(pred: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "mse length mismatch");
    assert!(!pred.is_empty(), "mse of empty slices");
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let d = (p - t) as f64;
            d * d
        })
        .sum();
    (sum / pred.len() as f64) as f32
}

/// Mean absolute error between equal-length slices.
pub fn mae(pred: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "mae length mismatch");
    assert!(!pred.is_empty(), "mae of empty slices");
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| ((p - t) as f64).abs())
        .sum();
    (sum / pred.len() as f64) as f32
}

/// Root mean squared error.
pub fn rmse(pred: &[f32], truth: &[f32]) -> f32 {
    mse(pred, truth).sqrt()
}

/// MSE restricted to positions where `mask` is nonzero — the imputation
/// metric (error on missing positions only). Returns 0 if the mask selects
/// nothing.
pub fn masked_mse(pred: &[f32], truth: &[f32], mask: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "masked_mse length mismatch");
    assert_eq!(pred.len(), mask.len(), "masked_mse mask length mismatch");
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for ((&p, &t), &m) in pred.iter().zip(truth).zip(mask) {
        if m != 0.0 {
            let d = (p - t) as f64;
            sum += d * d;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// MAE restricted to positions where `mask` is nonzero.
pub fn masked_mae(pred: &[f32], truth: &[f32], mask: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "masked_mae length mismatch");
    assert_eq!(pred.len(), mask.len(), "masked_mae mask length mismatch");
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for ((&p, &t), &m) in pred.iter().zip(truth).zip(mask) {
        if m != 0.0 {
            sum += ((p - t) as f64).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(mse(&x, &x), 0.0);
        assert_eq!(mae(&x, &x), 0.0);
        assert_eq!(rmse(&x, &x), 0.0);
    }

    #[test]
    fn known_values() {
        let pred = [0.0, 0.0];
        let truth = [3.0, 4.0];
        assert_eq!(mse(&pred, &truth), 12.5);
        assert_eq!(mae(&pred, &truth), 3.5);
        assert_eq!(rmse(&pred, &truth), 12.5f32.sqrt());
    }

    #[test]
    fn mse_dominated_by_large_errors_vs_mae() {
        let pred = [0.0, 0.0, 0.0, 0.0];
        let truth = [4.0, 0.0, 0.0, 0.0];
        assert_eq!(mse(&pred, &truth), 4.0);
        assert_eq!(mae(&pred, &truth), 1.0);
    }

    #[test]
    fn masked_variants_ignore_unmasked() {
        let pred = [10.0, 1.0, 10.0];
        let truth = [0.0, 0.0, 0.0];
        let mask = [0.0, 1.0, 0.0];
        assert_eq!(masked_mse(&pred, &truth, &mask), 1.0);
        assert_eq!(masked_mae(&pred, &truth, &mask), 1.0);
    }

    #[test]
    fn empty_mask_yields_zero() {
        let pred = [1.0];
        let truth = [2.0];
        assert_eq!(masked_mse(&pred, &truth, &[0.0]), 0.0);
        assert_eq!(masked_mae(&pred, &truth, &[0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
