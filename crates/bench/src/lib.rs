#![warn(missing_docs)]

//! # msd-bench
//!
//! The benchmark suite regenerating every table and figure of the
//! MSD-Mixer paper's evaluation section. Each `benches/table_*.rs` target
//! (all `harness = false`, driven by their own `main`) prints the
//! corresponding table with this reproduction's measured numbers next to
//! the paper's reference values where applicable. The `micro_*` targets
//! time hot kernels with the in-tree [`timing`] harness.
//!
//! Run a single table with `cargo bench -p msd-bench --bench
//! table_04_long_term`, or everything with `cargo bench --workspace`.
//! Scale via `MSD_SCALE=smoke|fast|full` (default `fast`). Results are
//! cached under `target/msd-results/` per scale; delete that directory to
//! recompute.

/// A minimal wall-clock timing harness for the `micro_*` benchmarks.
///
/// Replaces the former criterion dev-dependency so the workspace resolves
/// with zero registry access. Each benchmark is warmed up, then run in
/// batches until a time budget is spent; the per-iteration median, minimum,
/// and mean of the batch means are reported.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Measurement for one benchmark case, in seconds per iteration.
    #[derive(Clone, Copy, Debug)]
    pub struct Sample {
        /// Median of the batch means.
        pub median: f64,
        /// Fastest batch mean (lower bound on achievable time).
        pub min: f64,
        /// Mean over all batches.
        pub mean: f64,
        /// Total iterations executed during measurement.
        pub iters: u64,
    }

    /// Times `f`, printing a one-line summary; returns the measurement.
    ///
    /// Adaptive: a short calibration run sizes batches to ~10 ms each, then
    /// up to 30 batches run within a ~600 ms budget, so both sub-microsecond
    /// kernels and multi-second training steps produce stable numbers.
    pub fn bench(name: &str, mut f: impl FnMut()) -> Sample {
        let sample = measure(&mut f);
        println!(
            "{name:<44} median {:>12}  min {:>12}  ({} iters)",
            fmt_duration(sample.median),
            fmt_duration(sample.min),
            sample.iters,
        );
        sample
    }

    /// Times `f` without printing.
    pub fn measure(f: &mut impl FnMut()) -> Sample {
        // Calibrate: how many iterations fit in ~10 ms?
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch = (Duration::from_millis(10).as_secs_f64() / once.as_secs_f64())
            .clamp(1.0, 1e7) as u64;

        let budget = Duration::from_millis(600);
        let start = Instant::now();
        let mut batch_means = Vec::new();
        let mut iters = 1u64; // the calibration call
        while batch_means.len() < 30 && (batch_means.len() < 3 || start.elapsed() < budget) {
            let t = Instant::now();
            for _ in 0..per_batch {
                f();
            }
            batch_means.push(t.elapsed().as_secs_f64() / per_batch as f64);
            iters += per_batch;
        }
        batch_means.sort_by(f64::total_cmp);
        Sample {
            median: batch_means[batch_means.len() / 2],
            min: batch_means[0],
            mean: batch_means.iter().sum::<f64>() / batch_means.len() as f64,
            iters,
        }
    }

    /// Formats seconds as a human-readable duration (ns/µs/ms/s).
    pub fn fmt_duration(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:.1} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:.2} µs", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:.2} ms", secs * 1e3)
        } else {
            format!("{:.3} s", secs)
        }
    }
}

/// Paper reference values used as the "paper" column in printed tables.
pub mod paper {
    /// Table II: per-task win counts of MSD-Mixer in the paper
    /// (task, paper benchmarks, paper MSD-Mixer wins).
    pub const TABLE_II_MSD_WINS: [(&str, usize, usize); 5] = [
        ("Long-Term Forecasting", 64, 49),
        ("Short-Term Forecasting", 15, 15),
        ("Imputation", 48, 45),
        ("Anomaly Detection", 5, 4),
        ("Classification", 10, 5),
    ];

    /// Table IV (paper): MSE of MSD-Mixer / PatchTST / DLinear on ETTh1 at
    /// the four horizons — used to sanity-print the expected ordering.
    pub const TABLE_IV_ETTH1_MSE: [(usize, f32, f32, f32); 4] = [
        (96, 0.377, 0.444, 0.386),
        (192, 0.427, 0.488, 0.437),
        (336, 0.469, 0.525, 0.481),
        (720, 0.485, 0.532, 0.519),
    ];

    /// Table VI (paper): weighted-average SMAPE / MASE / OWA of MSD-Mixer
    /// and the two strongest short-term baselines.
    pub const TABLE_VI_AVG: [(&str, f32, f32, f32); 3] = [
        ("MSD-Mixer", 11.700, 1.557, 0.838),
        ("N-HiTS", 11.927, 1.613, 0.861),
        ("N-BEATS", 11.851, 1.599, 0.855),
    ];

    /// Table IX (paper): average F1 (%) over the five anomaly datasets.
    pub const TABLE_IX_AVG_F1: [(&str, f32); 3] = [
        ("MSD-Mixer", 93.0),
        ("PatchTST", 82.8),
        ("DLinear", 83.8),
    ];

    /// Table XI (paper): average accuracy over the ten UEA subsets for the
    /// task-general models we reproduce.
    pub const TABLE_XI_AVG_ACC: [(&str, f32); 3] = [
        ("MSD-Mixer", 0.807),
        ("PatchTST", 0.450),
        ("DLinear", 0.708),
    ];

    /// Table XII (paper): full-model vs variant averages (long-term MSE,
    /// OWA, imputation MSE, anomaly F1, classification accuracy).
    pub const TABLE_XII: [(&str, f32, f32, f32, f32, f32); 5] = [
        ("MSD-Mixer", 0.345, 0.838, 0.038, 0.930, 0.807),
        ("MSD-Mixer-I", 0.345, 0.837, 0.039, 0.925, 0.803),
        ("MSD-Mixer-N", 0.358, 0.853, 0.041, 0.918, 0.732),
        ("MSD-Mixer-U", 0.422, 0.853, 0.058, 0.847, 0.729),
        ("MSD-Mixer-L", 0.348, 0.844, 0.040, 0.897, 0.768),
    ];
}

/// Prints the shared bench banner (scale, cache dir, telemetry sink).
///
/// Every table bench funnels its training runs through the harness's
/// `fit`, which honours `MSD_TELEMETRY`: when the variable is set, the
/// banner says where the JSONL event log of those runs is going, so an
/// instrumented bench run is visibly instrumented.
pub fn banner(table: &str) -> msd_harness::Scale {
    let scale = msd_harness::Scale::from_env();
    println!();
    println!(
        "### {table} — MSD-Mixer reproduction (scale: {}, cache: {}) ###",
        scale.name(),
        msd_harness::experiments::cache_dir().display()
    );
    if let Ok(path) = std::env::var("MSD_TELEMETRY") {
        if !path.is_empty() {
            println!("### training telemetry (JSONL): {path} ###");
        }
    }
    println!();
    scale
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_constants_are_consistent() {
        let total: usize = super::paper::TABLE_II_MSD_WINS.iter().map(|r| r.1).sum();
        assert_eq!(total, 142);
        let wins: usize = super::paper::TABLE_II_MSD_WINS.iter().map(|r| r.2).sum();
        assert_eq!(wins, 118);
    }
}
