//! Kernel-layer throughput: SIMD + threaded dispatch kernels versus their
//! naive reference oracles, plus end-to-end numbers (epoch time, serve-path
//! batch latency) on the model the kernels feed.
//!
//! Every microbench first byte-compares the kernel output against the
//! oracle on the same buffer, so a throughput row can never hide a numerics
//! change. The bench *fails* (non-zero exit) if the fused LayerNorm or GELU
//! kernels fall below the single-core-safe floor of 1.1x over the naive
//! loops — on a multi-core host the expected margin is >= 2x.
//!
//! Run with `cargo bench -p msd-bench --bench extra_kernel_throughput`.
//! Rows append to `target/BENCH_kernels.json` (one JSON object per line).

use std::io::Write as _;
use std::time::Instant;

use msd_harness::{fit, ForecastSource, ModelSpec, TrainConfig};
use msd_data::{Split, SlidingWindows};
use msd_mixer::variants::Variant;
use msd_nn::{ParamStore, Task};
use msd_tensor::ops::kernels::{ew, norm, oracle, reduce};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Best-of-k wall time for `f`, in seconds, after one warmup call.
fn time_best(k: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..k {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn assert_same_bits(a: &[f32], b: &[f32], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: kernel and oracle disagree at element {i} ({x} vs {y})"
        );
    }
}

struct KernelRow {
    name: &'static str,
    bytes: usize,
    kernel_gbps: f64,
    oracle_gbps: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.kernel_gbps / self.oracle_gbps
    }
    fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"kernel\",\"name\":\"{}\",\"bytes\":{},\"kernel_gbps\":{:.3},\"oracle_gbps\":{:.3},\"speedup\":{:.3}}}",
            self.name,
            self.bytes,
            self.kernel_gbps,
            self.oracle_gbps,
            self.speedup()
        )
    }
}

fn bench_kernel(
    name: &'static str,
    bytes: usize,
    reps: usize,
    mut kernel: impl FnMut(),
    mut naive: impl FnMut(),
) -> KernelRow {
    let tk = time_best(reps, &mut kernel);
    let to = time_best(reps, &mut naive);
    KernelRow {
        name,
        bytes,
        kernel_gbps: bytes as f64 / tk / 1e9,
        oracle_gbps: bytes as f64 / to / 1e9,
    }
}

fn main() {
    // The floor gate measures the real dispatch tier: a CI matrix entry
    // that pins MSD_KERNEL_FORCE=scalar would otherwise compare the scalar
    // tier against the scalar oracle and trivially miss the floor.
    std::env::set_var("MSD_KERNEL_FORCE", "auto");
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_kernels.json");
    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open target/BENCH_kernels.json");

    let mut rng = Rng::seed_from(41);
    let n = 1usize << 20;
    let x: Vec<f32> = (0..n).map(|_| rng.normal() * 2.0).collect();
    let y: Vec<f32> = (0..n).map(|_| rng.normal() * 2.0).collect();
    let mut buf_k = vec![0.0f32; n];
    let mut buf_o = vec![0.0f32; n];
    let reps = 12;

    println!("kernel throughput (n = {n} elements)");
    println!(
        "{:>14} {:>12} {:>12} {:>9}",
        "kernel", "GB/s", "oracle GB/s", "speedup"
    );

    let mut rows = Vec::new();

    // Correctness check once per kernel, then time.
    ew::gelu(&x, &mut buf_k);
    oracle::gelu(&x, &mut buf_o);
    assert_same_bits(&buf_k, &buf_o, "gelu");
    rows.push(bench_kernel(
        "gelu",
        8 * n,
        reps,
        || ew::gelu(&x, &mut buf_k),
        || oracle::gelu(&x, &mut buf_o),
    ));

    ew::gelu_bwd(&x, &y, &mut buf_k);
    oracle::gelu_bwd(&x, &y, &mut buf_o);
    assert_same_bits(&buf_k, &buf_o, "gelu_bwd");
    rows.push(bench_kernel(
        "gelu_bwd",
        12 * n,
        reps,
        || ew::gelu_bwd(&x, &y, &mut buf_k),
        || oracle::gelu_bwd(&x, &y, &mut buf_o),
    ));

    assert!(reduce::sum(&x).to_bits() == oracle::sum(&x).to_bits(), "sum mismatch");
    rows.push(bench_kernel(
        "sum",
        4 * n,
        reps,
        || {
            std::hint::black_box(reduce::sum(&x));
        },
        || {
            std::hint::black_box(oracle::sum(&x));
        },
    ));

    assert!(reduce::dot(&x, &y).to_bits() == oracle::dot(&x, &y).to_bits(), "dot mismatch");
    rows.push(bench_kernel(
        "dot",
        8 * n,
        reps,
        || {
            std::hint::black_box(reduce::dot(&x, &y));
        },
        || {
            std::hint::black_box(oracle::dot(&x, &y));
        },
    ));

    // LayerNorm forward over [rows, d] = full kernel vs naive loops.
    let (rows_ln, d) = (2048usize, 512usize);
    let ln_n = rows_ln * d;
    let gamma: Vec<f32> = (0..d).map(|_| 1.0 + 0.1 * rng.normal()).collect();
    let beta: Vec<f32> = (0..d).map(|_| 0.1 * rng.normal()).collect();
    let (mut mean_k, mut rstd_k) = (vec![0.0f32; rows_ln], vec![0.0f32; rows_ln]);
    let (mut mean_o, mut rstd_o) = (vec![0.0f32; rows_ln], vec![0.0f32; rows_ln]);
    norm::layernorm_fwd(&x[..ln_n], d, &gamma, &beta, 1e-5, &mut buf_k[..ln_n], &mut mean_k, &mut rstd_k);
    oracle::layernorm_fwd(&x[..ln_n], d, &gamma, &beta, 1e-5, &mut buf_o[..ln_n], &mut mean_o, &mut rstd_o);
    assert_same_bits(&buf_k[..ln_n], &buf_o[..ln_n], "layernorm_fwd");
    assert_same_bits(&mean_k, &mean_o, "layernorm mean");
    rows.push(bench_kernel(
        "layernorm_fwd",
        8 * ln_n,
        reps,
        || norm::layernorm_fwd(&x[..ln_n], d, &gamma, &beta, 1e-5, &mut buf_k[..ln_n], &mut mean_k, &mut rstd_k),
        || oracle::layernorm_fwd(&x[..ln_n], d, &gamma, &beta, 1e-5, &mut buf_o[..ln_n], &mut mean_o, &mut rstd_o),
    ));

    for row in &rows {
        writeln!(out, "{}", row.to_json()).expect("append BENCH_kernels.json row");
        println!(
            "{:>14} {:>12.2} {:>12.2} {:>8.2}x",
            row.name,
            row.kernel_gbps,
            row.oracle_gbps,
            row.speedup()
        );
    }

    // End-to-end: epoch time of a short forecasting fit on the full mixer.
    let data = Tensor::from_vec(&[1, 600], (0..600).map(|i| (i as f32 / 4.0).sin()).collect());
    let train_src = ForecastSource::new(SlidingWindows::new(&data, 48, 12, Split::Train), 96);
    let mut store = ParamStore::new();
    let mut mrng = Rng::seed_from(13);
    let model = ModelSpec::MsdMixer(Variant::Full).build(
        &mut store,
        &mut mrng,
        1,
        48,
        Task::Forecast { horizon: 12 },
        16,
    );
    let epochs = 2usize;
    let t0 = Instant::now();
    let report = fit(
        &model,
        &mut store,
        &train_src,
        None,
        &TrainConfig {
            epochs,
            batch_size: 16,
            lr: 1e-3,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    let epoch_secs = t0.elapsed().as_secs_f64() / report.epochs_run.max(1) as f64;
    writeln!(
        out,
        "{{\"kind\":\"epoch\",\"model\":\"msd_mixer_full\",\"epochs\":{},\"secs_per_epoch\":{epoch_secs:.4}}}",
        report.epochs_run
    )
    .expect("append epoch row");
    println!("epoch time: {epoch_secs:.3}s/epoch over {} epochs", report.epochs_run);

    // Serve-path latency: per-sample cost of the batched worker forward.
    let batch: Vec<Tensor> = (0..8)
        .map(|_| Tensor::randn(&[1, 1, 48], 1.0, &mut mrng))
        .collect();
    let serve_best = time_best(8, || {
        std::hint::black_box(model.predict_batch(&store, &batch));
    });
    let us_per_sample = serve_best / batch.len() as f64 * 1e6;
    writeln!(
        out,
        "{{\"kind\":\"serve_latency\",\"model\":\"msd_mixer_full\",\"batch\":{},\"us_per_sample\":{us_per_sample:.1}}}",
        batch.len()
    )
    .expect("append serve row");
    println!("serve batch latency: {us_per_sample:.1}us/sample (batch of {})", batch.len());
    println!("rows appended to target/BENCH_kernels.json");

    // CI gate: the fused hot kernels must clear the single-core-safe floor.
    for name in ["gelu", "layernorm_fwd"] {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            row.speedup() >= 1.1,
            "{name} kernel speedup {:.2}x is below the 1.1x floor over the naive oracle",
            row.speedup()
        );
    }
}
