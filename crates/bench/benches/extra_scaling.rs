//! Extension: scaling behaviour of MSD-Mixer — training-step wall clock
//! and parameter count versus channel count, horizon, and model width.
//! Complements the paper's (GPU-based) efficiency discussion with CPU
//! numbers for this reproduction.

use msd_autograd::Graph;
use msd_harness::{ModelSpec, Table};
use msd_mixer::variants::Variant;
use msd_mixer::Target;
use msd_nn::{Adam, Ctx, Optimizer, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;
use std::time::Instant;

fn step_time(c: usize, l: usize, h: usize, d: usize, batch: usize) -> (f64, usize) {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(0);
    let model = ModelSpec::MsdMixer(Variant::Full).build(
        &mut store,
        &mut rng,
        c,
        l,
        Task::Forecast { horizon: h },
        d,
    );
    let params = store.num_scalars();
    let x = Tensor::randn(&[batch, c, l], 1.0, &mut rng);
    let y = Tensor::randn(&[batch, c, h], 1.0, &mut rng);
    let mut opt = Adam::with_lr(1e-3);
    let mut run_once = || {
        let g = Graph::new();
        let ctx = Ctx::new(&g, &store, &mut rng);
        let (_, loss) = model.forward_loss(&ctx, &x, &Target::Series(y.clone()));
        let grads = g.backward(loss);
        opt.step(&mut store, &grads);
    };
    run_once(); // warmup
    let t0 = Instant::now();
    let n = 3;
    for _ in 0..n {
        run_once();
    }
    (t0.elapsed().as_secs_f64() * 1000.0 / n as f64, params)
}

fn main() {
    let _ = msd_bench::banner("Extra — MSD-Mixer scaling (CPU)");

    let mut t = Table::new(
        "Training-step cost vs channels (L=96, H=96, d=16, B=32)",
        &["Channels", "ms/step", "Parameters"],
    );
    for c in [1usize, 7, 21, 32] {
        let (ms, params) = step_time(c, 96, 96, 16, 32);
        t.row(&[c.to_string(), format!("{ms:.1}"), params.to_string()]);
    }
    print!("{}", t.render());

    let mut t = Table::new(
        "Training-step cost vs horizon (C=7, L=96, d=16, B=32)",
        &["Horizon", "ms/step", "Parameters"],
    );
    for h in [96usize, 192, 336, 720] {
        let (ms, params) = step_time(7, 96, h, 16, 32);
        t.row(&[h.to_string(), format!("{ms:.1}"), params.to_string()]);
    }
    print!("{}", t.render());

    let mut t = Table::new(
        "Training-step cost vs width d (C=7, L=96, H=96, B=32)",
        &["d_model", "ms/step", "Parameters"],
    );
    for d in [8usize, 16, 32, 64] {
        let (ms, params) = step_time(7, 96, 96, d, 32);
        t.row(&[d.to_string(), format!("{ms:.1}"), params.to_string()]);
    }
    t.footnote("Single-thread CPU; the paper trains on an RTX 3090 (Sec. IV-A).");
    print!("{}", t.render());
}
