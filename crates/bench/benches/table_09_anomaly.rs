//! Regenerates Table IX: anomaly-detection precision/recall/F1 per stream
//! plus average F1.

use msd_harness::experiments::anomaly;
use msd_harness::{ModelSpec, Table};

fn main() {
    let scale = msd_bench::banner("Table IX — Anomaly detection");
    let rows = anomaly::results(scale);

    let models: Vec<&str> = ModelSpec::TASK_GENERAL.iter().map(|m| m.name()).collect();
    let mut header = vec!["Dataset", "Metric"];
    header.extend(models.iter().copied());
    let mut t = Table::new("Table IX: Anomaly detection results (%)", &header);
    for spec in msd_data::anomaly_datasets() {
        for metric in ["Precision", "Recall", "F1-score"] {
            let mut cells = vec![spec.name.to_string(), metric.to_string()];
            for m in &models {
                let r = rows
                    .iter()
                    .find(|r| r.dataset == spec.name && r.model == *m)
                    .expect("row");
                cells.push(format!(
                    "{:.1}",
                    match metric {
                        "Precision" => r.precision,
                        "Recall" => r.recall,
                        _ => r.f1,
                    }
                ));
            }
            t.row(&cells);
        }
    }
    print!("{}", t.render());

    let mut avg = Table::new("Table IX (bottom): average F1-score", &["Model", "Avg F1 (%)"]);
    for m in &models {
        let f1s: Vec<f32> = rows.iter().filter(|r| r.model == *m).map(|r| r.f1).collect();
        let mean = f1s.iter().sum::<f32>() / f1s.len().max(1) as f32;
        avg.row(&[m.to_string(), format!("{mean:.1}")]);
    }
    print!("{}", avg.render());

    println!("Paper average F1 reference:");
    for (m, f1) in msd_bench::paper::TABLE_IX_AVG_F1 {
        println!("  {m}: {f1:.1}");
    }
}
