//! Regenerates Table I: the task / benchmark / metric summary.

use msd_harness::{table_i_rows, Table};

fn main() {
    let _ = msd_bench::banner("Table I — Summary of tasks and benchmarks");
    let mut t = Table::new(
        "Table I: Summary of tasks and benchmarks",
        &["Task", "Datasets (synthetic stand-ins)", "Metrics", "Benchmarks"],
    );
    for row in table_i_rows() {
        t.row(&[
            row.task.to_string(),
            row.datasets.to_string(),
            row.metrics.to_string(),
            row.num_benchmarks.to_string(),
        ]);
    }
    t.footnote("Datasets are synthetic stand-ins mirroring the paper's benchmarks (DESIGN.md §2).");
    print!("{}", t.render());
}
