//! Regenerates Table V: statistics of the short-term (M4-like) subsets.

use msd_data::m4_subsets;
use msd_harness::Table;

fn main() {
    let _ = msd_bench::banner("Table V — Short-term forecasting dataset statistics");
    let mut t = Table::new(
        "Table V: Statistics of datasets for short-term forecasting",
        &["Dataset", "Dim", "Horizon", "Input Len", "Periodicity", "Series (paper train size)"],
    );
    let paper: &[(&str, usize)] = &[
        ("Yearly", 23000),
        ("Quarterly", 24000),
        ("Monthly", 48000),
        ("Weekly", 359),
        ("Daily", 4227),
        ("Hourly", 414),
    ];
    for spec in m4_subsets() {
        let p = paper.iter().find(|(n, _)| *n == spec.name).unwrap();
        t.row(&[
            spec.name.to_string(),
            "1".to_string(),
            spec.horizon.to_string(),
            spec.input_len.to_string(),
            spec.periodicity.to_string(),
            format!("{} ({})", spec.num_series, p.1),
        ]);
    }
    t.footnote("Horizons and periodicities match the M4 competition; series counts scaled down.");
    print!("{}", t.render());
}
