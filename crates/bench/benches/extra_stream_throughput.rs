//! Streaming-engine throughput: samples/sec and windows/sec through the
//! full ingestion → standardization → gateway-scored pipeline, plus the
//! per-score serve-latency percentiles.
//!
//! Drift detection runs but is configured to never trigger (`upper` far
//! above any reachable statistic), so the measurement is a steady-state
//! scoring run — the retrain path has its own gate and would only add a
//! one-off spike here. Wall-clock is reported in this table and nowhere
//! else: the engine's own logs stay replay-deterministic.
//!
//! Run with `cargo bench -p msd-bench --bench extra_stream_throughput`.
//! Rows append to `target/BENCH_stream.json` (one JSON object per line).

use std::io::Write as _;
use std::time::Instant;

use msd_serve::percentile;
use msd_stream::{DriftScenario, ScenarioConfig, StreamConfig, StreamEngine};

fn main() {
    // Measure the real dispatch tier, matching production serving.
    std::env::set_var("MSD_KERNEL_FORCE", "auto");
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_stream.json");
    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open target/BENCH_stream.json");

    let steps = 20_000u64;
    let root = std::env::temp_dir().join("msd_stream_bench");
    let _ = std::fs::remove_dir_all(&root);

    let scenario_cfg = ScenarioConfig::smoke(7);
    let mut cfg = StreamConfig::smoke(root);
    cfg.channels = scenario_cfg.channels;
    cfg.drift.upper = 1e9; // steady-state scoring: never trigger a retrain
    let mut engine = StreamEngine::new(cfg).expect("engine setup");
    let mut scenario = DriftScenario::new(scenario_cfg);

    let t0 = Instant::now();
    for _ in 0..steps {
        let (sample, _) = scenario.next_sample();
        engine.push(&sample).expect("stream step");
    }
    let report = engine.finish().expect("engine shutdown");
    let elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(report.lost_requests, 0, "bench run lost requests");
    assert!(report.windows_scored > 0, "bench run scored nothing");

    let samples_per_sec = steps as f64 / elapsed;
    let windows_per_sec = report.windows_scored as f64 / elapsed;
    let mut lat = report.latencies_us.clone();
    lat.sort_unstable();
    let (p50, p99) = (percentile(&lat, 50), percentile(&lat, 99));

    println!(
        "stream throughput: {steps} samples in {elapsed:.2}s — {samples_per_sec:.0} samples/s, \
         {windows_per_sec:.0} windows/s, score latency p50 {p50}us p99 {p99}us"
    );
    writeln!(
        out,
        "{{\"kind\":\"stream_throughput\",\"samples\":{steps},\"windows\":{},\"samples_per_sec\":{samples_per_sec:.1},\"windows_per_sec\":{windows_per_sec:.1},\"score_p50_us\":{p50},\"score_p99_us\":{p99}}}",
        report.windows_scored
    )
    .expect("append stream row");
    println!("rows appended to target/BENCH_stream.json");
}
