//! Regenerates Table VIII: statistics of the anomaly-detection datasets.

use msd_data::anomaly_datasets;
use msd_harness::Table;

fn main() {
    let _ = msd_bench::banner("Table VIII — Anomaly detection dataset statistics");
    let mut t = Table::new(
        "Table VIII: Statistics of datasets for anomaly detection",
        &["Dataset", "Dim", "Window", "Train Steps", "Test Steps", "Anomaly %", "Paper Dim"],
    );
    let paper: &[(&str, usize)] = &[("SMD", 38), ("MSL", 55), ("SMAP", 25), ("SWaT", 51), ("PSM", 25)];
    for spec in anomaly_datasets() {
        let p = paper.iter().find(|(n, _)| *n == spec.name).unwrap();
        t.row(&[
            spec.name.to_string(),
            spec.channels.to_string(),
            "100".to_string(),
            spec.train_steps.to_string(),
            spec.test_steps.to_string(),
            format!("{:.1}", spec.anomaly_ratio * 100.0),
            p.1.to_string(),
        ]);
    }
    t.footnote("Synthetic streams: normal dynamics + injected spikes/shifts/bursts/correlation breaks.");
    print!("{}", t.render());
}
