//! Micro-benchmarks for the hot components of the reproduction: patching,
//! the MLP block, the fused ACF residual loss, a full MSD-Mixer training
//! step, and model-vs-baseline step throughput. These support the
//! efficiency story implicit in an MLP-only design (Sec. II) and guard
//! against performance regressions in the substrate.
//!
//! Timing uses the in-tree harness in `msd_bench::timing` (no criterion, so
//! the workspace stays dependency-free and builds offline). Run with
//! `cargo bench -p msd-bench --bench micro_components`.

use msd_autograd::Graph;
use msd_bench::timing::bench;
use msd_harness::ModelSpec;
use msd_mixer::variants::Variant;
use msd_mixer::{patch, unpatch, Target};
use msd_nn::{Adam, Ctx, MlpBlock, Optimizer, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;
use std::hint::black_box;

fn bench_patching() {
    let mut rng = Rng::seed_from(0);
    let x = Tensor::randn(&[32, 7, 96], 1.0, &mut rng);
    bench("patch_unpatch_roundtrip_32x7x96_p24", || {
        let g = Graph::eval();
        let v = g.input(black_box(x.clone()));
        let p = patch(&g, v, 24);
        let u = unpatch(&g, p, 96);
        black_box(g.value(u));
    });
}

fn bench_mlp_block() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(1);
    let block = MlpBlock::new(&mut store, &mut rng, "b", 64, 128, 0.0);
    let x = Tensor::randn(&[32, 24, 64], 1.0, &mut rng);
    bench("mlp_block_fwd_32x24x64", || {
        let g = Graph::eval();
        let mut r = Rng::seed_from(0);
        let ctx = Ctx::new(&g, &store, &mut r);
        let v = g.input(black_box(x.clone()));
        black_box(g.value(block.forward(&ctx, v)));
    });
    bench("mlp_block_fwd_bwd_32x24x64", || {
        let g = Graph::new();
        let mut r = Rng::seed_from(0);
        let ctx = Ctx::new(&g, &store, &mut r);
        let v = g.input(black_box(x.clone()));
        let y = block.forward(&ctx, v);
        let loss = g.mean_all(g.square(y));
        black_box(g.backward(loss));
    });
}

fn bench_residual_loss() {
    let mut rng = Rng::seed_from(2);
    let z = Tensor::randn(&[32, 7, 96], 1.0, &mut rng);
    bench("acf_hinge_loss_fwd_bwd_32x7x96", || {
        let g = Graph::new();
        let v = g.param(0, black_box(z.clone()));
        let loss = g.acf_hinge_loss(v, 2.0);
        black_box(g.backward(loss));
    });
}

fn bench_training_step() {
    for spec in [
        ModelSpec::MsdMixer(Variant::Full),
        ModelSpec::PatchTst,
        ModelSpec::NHits,
        ModelSpec::DLinear,
    ] {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let model = spec.build(
            &mut store,
            &mut rng,
            7,
            96,
            Task::Forecast { horizon: 96 },
            16,
        );
        let x = Tensor::randn(&[32, 7, 96], 1.0, &mut rng);
        let y = Tensor::randn(&[32, 7, 96], 1.0, &mut rng);
        let mut opt = Adam::with_lr(1e-3);
        bench(&format!("train_step_B32_C7_L96_H96/{}", spec.name()), || {
            let g = Graph::new();
            let mut r = Rng::seed_from(0);
            let ctx = Ctx::new(&g, &store, &mut r);
            let (_, loss) = model.forward_loss(&ctx, black_box(&x), &Target::Series(y.clone()));
            let grads = g.backward(loss);
            opt.step(&mut store, &grads);
        });
    }
}

fn bench_matmul() {
    let mut rng = Rng::seed_from(4);
    let a = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let b_t = Tensor::randn(&[256, 256], 1.0, &mut rng);
    bench("matmul_256x256", || {
        black_box(black_box(&a).matmul(black_box(&b_t)));
    });
}

fn main() {
    println!("### micro_components — in-tree timing harness ###");
    bench_patching();
    bench_mlp_block();
    bench_residual_loss();
    bench_training_step();
    bench_matmul();
}
