//! Compiled-plan serving latency: `Model::predict_plan` (AOT plan + reused
//! arena) versus `Model::predict` (tape rebuilt per call) on every
//! task-general zoo model, single-sample — the serving hot path.
//!
//! Each model is first byte-compared plan-vs-tape on the bench input, so a
//! latency row can never hide a numerics change. The bench *fails* (non-zero
//! exit) if the plan path falls below the 1.1x floor the serving runtime's
//! default (`use_plans: true`) is predicated on.
//!
//! Run with `cargo bench -p msd-bench --bench extra_plan_latency`.
//! Rows append to `target/BENCH_kernels.json` (one JSON object per line).

use std::io::Write as _;
use std::time::Instant;

use msd_autograd::PlanArena;
use msd_harness::ModelSpec;
use msd_nn::{Model, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Best-of-k wall time for `f`, in seconds, after one warmup call.
fn time_best(k: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..k {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // Measure the real dispatch tier, matching production serving.
    std::env::set_var("MSD_KERNEL_FORCE", "auto");
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_kernels.json");
    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .expect("open target/BENCH_kernels.json");

    let (channels, input_len, horizon, d_model) = (2usize, 48usize, 12usize, 8usize);
    let reps = 200;

    println!("plan vs tape, single-sample predict ([1, {channels}, {input_len}])");
    println!(
        "{:>12} {:>12} {:>12} {:>9}",
        "model", "plan us", "tape us", "speedup"
    );

    let mut worst = f64::INFINITY;
    let mut log_speedup_sum = 0.0f64;
    let mut n_models = 0usize;
    for (i, spec) in ModelSpec::TASK_GENERAL.iter().enumerate() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0xBE + i as u64);
        let model = spec.build(
            &mut store,
            &mut rng,
            channels,
            input_len,
            Task::Forecast { horizon },
            d_model,
        );
        let x = Tensor::randn(&[1, channels, input_len], 1.0, &mut rng);

        let plan = model
            .compile_plan(&store, x.shape())
            .unwrap_or_else(|e| panic!("{}: plan compile failed: {e}", spec.name()));
        let mut arena = PlanArena::new();

        // Bit-identity first: a latency row must never hide a numerics change.
        let reference = model.predict(&store, &x);
        let got = model.predict_plan(&plan, &store, &x, &mut arena);
        assert_eq!(reference.shape(), got.shape(), "{}: shape", spec.name());
        for (j, (a, b)) in reference.data().iter().zip(got.data()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{}: plan and tape disagree at element {j} ({a} vs {b})",
                spec.name()
            );
        }

        let t_plan = time_best(reps, || {
            std::hint::black_box(model.predict_plan(&plan, &store, &x, &mut arena));
        });
        let t_tape = time_best(reps, || {
            std::hint::black_box(model.predict(&store, &x));
        });
        let speedup = t_tape / t_plan;
        worst = worst.min(speedup);
        log_speedup_sum += speedup.ln();
        n_models += 1;
        writeln!(
            out,
            "{{\"kind\":\"plan_latency\",\"model\":\"{}\",\"plan_us\":{:.2},\"tape_us\":{:.2},\"speedup\":{:.3},\"arena_f32\":{}}}",
            spec.name(),
            t_plan * 1e6,
            t_tape * 1e6,
            speedup,
            plan.arena_len()
        )
        .expect("append plan row");
        println!(
            "{:>12} {:>12.2} {:>12.2} {:>8.2}x",
            spec.name(),
            t_plan * 1e6,
            t_tape * 1e6,
            speedup
        );
    }
    let geomean = (log_speedup_sum / n_models as f64).exp();
    println!("geomean speedup: {geomean:.2}x (worst {worst:.2}x)");
    println!("rows appended to target/BENCH_kernels.json");

    // CI gate: plans must beat the tape clearly in aggregate and must never
    // be slower on any single model, or serving's plans-by-default decision
    // is wrong. (Expected margins: ~1.5x geomean, worst model ~1.12x; the
    // worst-case floor is 1.0 so a noisy-neighbour CI host can't flake it.)
    assert!(
        geomean >= 1.1,
        "geomean plan-vs-tape speedup {geomean:.2}x is below the 1.1x floor"
    );
    assert!(
        worst >= 1.0,
        "a zoo model is slower through its plan than the tape ({worst:.2}x)"
    );
}
