//! Regenerates Table III: statistics of the long-term forecasting datasets.

use msd_data::long_term_datasets;
use msd_harness::Table;

fn main() {
    let _ = msd_bench::banner("Table III — Long-term forecasting dataset statistics");
    let mut t = Table::new(
        "Table III: Statistics of datasets for long-term forecasting",
        &["Dataset", "Dim", "Total Timesteps", "Frequency", "Paper Dim", "Paper Timesteps"],
    );
    let paper: &[(&str, usize, usize)] = &[
        ("ETTm1", 7, 69680),
        ("ETTm2", 7, 69680),
        ("ETTh1", 7, 17420),
        ("ETTh2", 7, 17420),
        ("Electricity", 321, 26304),
        ("Traffic", 862, 17544),
        ("Weather", 21, 52696),
        ("Exchange", 8, 7588),
    ];
    for spec in long_term_datasets() {
        let p = paper.iter().find(|(n, _, _)| *n == spec.name).unwrap();
        t.row(&[
            spec.name.to_string(),
            spec.channels.to_string(),
            spec.total_steps.to_string(),
            spec.frequency.to_string(),
            p.1.to_string(),
            p.2.to_string(),
        ]);
    }
    t.footnote("Dim/timesteps scaled for CPU training; Electricity/Traffic capped (EXPERIMENTS.md).");
    print!("{}", t.render());
}
