//! Regenerates Table X: statistics of the classification datasets.

use msd_data::classification_datasets;
use msd_harness::Table;

fn main() {
    let _ = msd_bench::banner("Table X — Classification dataset statistics");
    let mut t = Table::new(
        "Table X: Statistics of datasets for classification",
        &["Dataset", "Dim", "Series Length", "Classes", "Train Size", "Test Size"],
    );
    for spec in classification_datasets() {
        t.row(&[
            spec.name.to_string(),
            spec.channels.to_string(),
            spec.series_len.to_string(),
            spec.classes.to_string(),
            spec.train_size.to_string(),
            spec.test_size.to_string(),
        ]);
    }
    t.footnote("UEA-like synthetic stand-ins; very wide/long originals capped (DESIGN.md §2).");
    print!("{}", t.render());
}
