//! Micro-benchmark for the blocked SGEMM against the naive reference.
//!
//! Times `Tensor::matmul` (cache-blocked, register-tiled, packed, threaded
//! past the flop threshold) next to `naive_gemm` (the seed's i-k-j triple
//! loop, kept in-tree as the bitwise ground truth) across representative
//! sizes, plus the transpose-aware variants at the headline 256³ shape.
//!
//! Run with `cargo bench -p msd-bench --bench micro_gemm`. Thread count
//! follows `MSD_NUM_THREADS` (default: available parallelism); results are
//! bit-identical for every setting, so the speedup column is the only thing
//! that moves.

use msd_bench::timing::bench;
use msd_tensor::ops::gemm::naive_gemm;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / secs / 1e9
}

fn main() {
    let mut rng = Rng::seed_from(42);
    println!(
        "threads: {} (MSD_NUM_THREADS={})",
        msd_tensor::pool::num_threads(),
        std::env::var("MSD_NUM_THREADS").unwrap_or_else(|_| "<unset>".into()),
    );

    for &(m, k, n) in &[
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (512, 512, 512),
        (96, 336, 512), // mixer-shaped: batch·channels × seq × hidden
    ] {
        let a_raw: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b_raw: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let a = Tensor::from_vec(&[m, k], a_raw.clone());
        let b = Tensor::from_vec(&[k, n], b_raw.clone());

        let blocked = bench(&format!("matmul {m}x{k}x{n} blocked"), || {
            std::hint::black_box(a.matmul(&b));
        });
        let naive = bench(&format!("matmul {m}x{k}x{n} naive"), || {
            std::hint::black_box(naive_gemm(m, k, n, &a_raw, &b_raw));
        });
        println!(
            "  -> {:.2} GFLOP/s blocked vs {:.2} naive  (speedup {:.2}x)\n",
            gflops(m, k, n, blocked.median),
            gflops(m, k, n, naive.median),
            naive.median / blocked.median,
        );
    }

    // Transpose-aware variants at the headline shape: these are what the
    // autograd backward passes call, reading the transposed operand through
    // strides instead of materialising a copy.
    let s = 256;
    let a = Tensor::randn(&[s, s], 1.0, &mut rng);
    let b = Tensor::randn(&[s, s], 1.0, &mut rng);
    bench("matmul_nt 256x256x256", || {
        std::hint::black_box(a.matmul_nt(&b));
    });
    bench("matmul_tn 256x256x256", || {
        std::hint::black_box(a.matmul_tn(&b));
    });
}
