//! Extension ablation (beyond the paper's Table XII): sweep the Residual
//! Loss weight `λ` (Eq. 7) and the white-noise tolerance `α` (Eq. 6) on the
//! ETTh1-like forecasting task, reporting test error and residual
//! whiteness. Quantifies the design choices DESIGN.md §3 calls out.

use msd_data::{long_term_datasets, SlidingWindows, Split, StandardScaler};
use msd_harness::{evaluate_forecast, fit, AnyModel, ForecastSource, Table, TrainConfig};
use msd_mixer::{decompose, MsdMixer, MsdMixerConfig};
use msd_nn::{ParamStore, Task};
use msd_tensor::rng::Rng;

fn run(lambda: f32, alpha: f32, scale: msd_harness::Scale) -> (f32, f32, f32, f32) {
    let spec = long_term_datasets()
        .into_iter()
        .find(|s| s.name == "ETTh1")
        .expect("ETTh1");
    let raw = spec.generate();
    let scaler = StandardScaler::fit(&raw, (spec.total_steps as f32 * 0.7) as usize);
    let data = scaler.transform(&raw);
    let train = ForecastSource::new(
        SlidingWindows::new(&data, 96, 96, Split::Train),
        scale.max_train_windows(),
    );
    let test = ForecastSource::new(
        SlidingWindows::new(&data, 96, 96, Split::Test),
        scale.max_eval_windows(),
    );
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(53);
    let cfg = MsdMixerConfig {
        in_channels: spec.channels,
        input_len: 96,
        patch_sizes: vec![24, 12, 4, 2, 1],
        d_model: scale.d_model(),
        hidden_ratio: 2,
        drop_path: 0.05,
        alpha,
        lambda,
        magnitude_only: false,
        task: Task::Forecast { horizon: 96 },
    };
    let mixer = MsdMixer::new(&mut store, &mut rng, &cfg);
    let model = AnyModel::Mixer(mixer);
    fit(
        &model,
        &mut store,
        &train,
        None,
        &TrainConfig::builder().epochs(scale.epochs()).lr(5e-3).build(),
    );
    let (mse, mae) = evaluate_forecast(&model, &store, &test, 32);
    let AnyModel::Mixer(mixer) = &model else { unreachable!() };
    let test_w = SlidingWindows::new(&data, 96, 96, Split::Test);
    let (x, _) = test_w.get(0);
    let d = decompose(mixer, &store, &x);
    (mse, mae, d.residual_energy(), d.residual_acf_violation())
}

fn main() {
    let scale = msd_bench::banner("Extra — Residual Loss sweep (λ, α)");

    let mut t = Table::new(
        "λ sweep at α = 2 (ETTh1-like, horizon 96)",
        &["lambda", "MSE", "MAE", "residual energy", "ACF violation"],
    );
    for lambda in [0.0f32, 0.1, 0.5, 1.0, 2.0] {
        let (mse, mae, energy, viol) = run(lambda, 2.0, scale);
        t.row(&[
            format!("{lambda:.1}"),
            format!("{mse:.3}"),
            format!("{mae:.3}"),
            format!("{energy:.4}"),
            format!("{viol:.3}"),
        ]);
    }
    t.footnote("λ=0 is the MSD-Mixer-L ablation; the paper trains with λ>0 (Eq. 7).");
    print!("{}", t.render());

    let mut t = Table::new(
        "α sweep at λ = 0.5",
        &["alpha", "MSE", "MAE", "residual energy", "ACF violation"],
    );
    for alpha in [1.0f32, 2.0, 4.0] {
        let (mse, mae, energy, viol) = run(0.5, alpha, scale);
        t.row(&[
            format!("{alpha:.1}"),
            format!("{mse:.3}"),
            format!("{mae:.3}"),
            format!("{energy:.4}"),
            format!("{viol:.3}"),
        ]);
    }
    t.footnote("α controls the white-noise tolerance band ±α/√L of Eq. 6.");
    print!("{}", t.render());
}
