//! Serving throughput sweep: sequential per-sample `predict` versus the
//! `msd-serve` batched runtime across micro-batch caps and worker counts.
//!
//! Beyond the paper's tables: the paper evaluates accuracy only; this bench
//! quantifies what the inference runtime adds on the same model. Every
//! served response is byte-compared to the sequential reference before a
//! row is reported, so the throughput column can never hide a numerics
//! change.
//!
//! Run with `cargo bench -p msd-bench --bench extra_serve_throughput`.
//! Rows append to `target/BENCH_serve.json` (one JSON object per line).
//! `MSD_NUM_THREADS` is forced to 1 unless set, so the sweep isolates the
//! runtime's contribution (batching + workers) from intra-op threading.

use std::io::Write as _;
use std::time::Duration;

use msd_harness::ModelSpec;
use msd_mixer::variants::Variant;
use msd_nn::{ParamStore, Task};
use msd_serve::loadgen::{run_open_loop, sequential_baseline, BenchReport, LoadSpec};
use msd_serve::{ServeConfig, Server};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

fn main() {
    if std::env::var("MSD_NUM_THREADS").is_err() {
        std::env::set_var("MSD_NUM_THREADS", "1");
    }
    let (channels, input_len, horizon) = (2usize, 96usize, 24usize);
    let requests = 384usize;
    let spec = ModelSpec::MsdMixer(Variant::Full);

    // Cargo runs bench executables with the *package* directory as CWD, so
    // resolve the workspace-root target/ explicitly.
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/BENCH_serve.json");
    let out_path = out_path.as_path();
    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut out = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
        .expect("open target/BENCH_serve.json");

    println!("serve throughput: {} requests x {}", requests, spec.name());
    println!("{:>9} {:>7} {:>12} {:>10} {:>8} {:>9} {:>9}", "max_batch", "workers", "seq_rps", "served_rps", "speedup", "p50_ms", "p99_ms");

    for (max_batch, workers) in [(1usize, 1usize), (8, 4), (32, 4)] {
        // Fresh model + inputs per row so rows are independent runs.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(13);
        let model = spec.build(
            &mut store,
            &mut rng,
            channels,
            input_len,
            Task::Forecast { horizon },
            16,
        );
        let inputs: Vec<Tensor> = (0..requests)
            .map(|_| Tensor::randn(&[1, channels, input_len], 1.0, &mut rng))
            .collect();
        let (reference, sequential_rps) = sequential_baseline(&model, &store, &inputs);

        let server = Server::start(
            model,
            store,
            ServeConfig {
                max_batch,
                max_wait: Duration::from_micros(500),
                queue_cap: requests,
                workers,
                events_path: None,
                use_plans: true,
                ..ServeConfig::default()
            },
        )
        .expect("start serve runtime");
        let outcome = run_open_loop(
            &server,
            &inputs,
            &LoadSpec {
                requests,
                rate_rps: 0.0,
                seed: 29,
                ..LoadSpec::default()
            },
        );
        let stats = server.shutdown();
        for (i, resp) in outcome.responses.iter().enumerate() {
            let y = resp.as_ref().expect("no request may be lost");
            let r = &reference[i];
            assert!(
                y.shape() == r.shape()
                    && y.data()
                        .iter()
                        .zip(r.data())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "served response {i} diverged from sequential predict"
            );
        }

        let report = BenchReport {
            model: spec.name().to_string(),
            requests,
            workers,
            max_batch,
            sequential_rps,
            served_rps: outcome.throughput_rps,
            mean_batch: stats.mean_batch,
            p50_us: stats.p50_us,
            p95_us: stats.p95_us,
            p99_us: stats.p99_us,
            rejected: stats.rejected,
            skew_mean_us: outcome.skew_mean_us,
            skew_max_us: outcome.skew_max_us,
            reanchors: outcome.reanchors,
        };
        writeln!(out, "{}", report.to_json()).expect("append BENCH_serve.json row");
        println!(
            "{:>9} {:>7} {:>12.1} {:>10.1} {:>7.2}x {:>9.2} {:>9.2}",
            max_batch,
            workers,
            report.sequential_rps,
            report.served_rps,
            report.speedup(),
            report.p50_us as f64 / 1e3,
            report.p99_us as f64 / 1e3,
        );
    }
    println!("rows appended to target/BENCH_serve.json");
}
