//! Regenerates Table VI: short-term forecasting SMAPE/MASE/OWA per M4-like
//! subset plus the competition-weighted average.

use msd_harness::experiments::short_term;
use msd_harness::{fmt3, Table};

fn main() {
    let scale = msd_bench::banner("Table VI — Short-term forecasting");
    let rows = short_term::results(scale);

    let models: Vec<String> = short_term::short_term_models()
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    let mut header = vec!["Subset", "Metric"];
    header.extend(models.iter().map(String::as_str));
    let mut t = Table::new("Table VI: Short-term forecasting results", &header);
    for spec in msd_data::m4_subsets() {
        for metric in ["SMAPE", "MASE", "OWA"] {
            let mut cells = vec![spec.name.to_string(), metric.to_string()];
            for m in &models {
                let r = rows
                    .iter()
                    .find(|r| r.subset == spec.name && &r.model == m)
                    .expect("row");
                cells.push(fmt3(match metric {
                    "SMAPE" => r.smape,
                    "MASE" => r.mase,
                    _ => r.owa,
                }));
            }
            t.row(&cells);
        }
    }
    print!("{}", t.render());

    let mut avg = Table::new(
        "Table VI (Avg.): weighted average over subsets",
        &["Model", "SMAPE", "MASE", "OWA"],
    );
    for (m, s) in short_term::weighted_averages(&rows) {
        avg.row(&[m, fmt3(s.smape), fmt3(s.mase), fmt3(s.owa)]);
    }
    avg.footnote("OWA < 1 beats Naive2. Paper Avg. reference below.");
    print!("{}", avg.render());

    println!("Paper weighted averages (SMAPE / MASE / OWA):");
    for (m, s, ma, o) in msd_bench::paper::TABLE_VI_AVG {
        println!("  {m}: {s:.3} / {ma:.3} / {o:.3}");
    }
}
