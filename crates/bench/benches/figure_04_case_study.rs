//! Regenerates Figure 4: the decomposition case study. Trains MSD-Mixer
//! with and without the Residual Loss on ETTh1-like data, decomposes a test
//! window, prints per-component statistics and residual ACF summaries, and
//! exports the component series as CSV for plotting.

use msd_harness::experiments::case_study;
use msd_harness::experiments::cache_dir;
use msd_harness::{fmt3, Scale, Table};
use msd_mixer::variants::Variant;

fn main() {
    let scale = msd_bench::banner("Figure 4 — Decomposition case study");
    let rows = case_study::results(scale);

    let mut t = Table::new(
        "Figure 4: decomposition with vs without the Residual Loss",
        &[
            "Model",
            "Component stds (S1..S5)",
            "Residual energy",
            "Residual ACF violation",
            "Explained energy",
        ],
    );
    for r in &rows {
        t.row(&[
            r.model.clone(),
            r.component_stds
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>()
                .join(" "),
            fmt3(r.residual_energy),
            fmt3(r.residual_acf_violation),
            fmt3(r.explained_energy),
        ]);
    }
    t.footnote(
        "Expected shape (paper Fig. 4): with the Residual Loss the residual energy and its \
         ACF violations drop sharply; without it most input energy stays in the residual.",
    );
    print!("{}", t.render());

    // Export the full component series for plotting.
    if scale != Scale::Smoke {
        let dir = cache_dir();
        let _ = std::fs::create_dir_all(&dir);
        for variant in [Variant::Full, Variant::NoResidualLoss] {
            let (_, d) = case_study::run_variant(variant, Scale::Smoke);
            let path = dir.join(format!(
                "figure_04_components_{}.csv",
                variant.name().replace('-', "_")
            ));
            let l = d.input.shape()[1];
            let mut csv = String::from("t,input");
            for i in 0..d.components.len() {
                csv.push_str(&format!(",S{}", i + 1));
            }
            csv.push_str(",residual\n");
            for t in 0..l {
                csv.push_str(&format!("{t},{}", d.input.at(&[0, t])));
                for s in &d.components {
                    csv.push_str(&format!(",{}", s.at(&[0, t])));
                }
                csv.push_str(&format!(",{}\n", d.residual.at(&[0, t])));
            }
            let _ = std::fs::write(&path, csv);
            println!("wrote {}", path.display());
        }
    }
}
