//! Regenerates Table IV: long-term forecasting MSE/MAE over eight datasets
//! × four horizons for every task-general model, plus first-place counts.

use msd_harness::experiments::long_term;
use msd_harness::{fmt3, ModelSpec, Table};
use msd_metrics::win_counts;

fn main() {
    let scale = msd_bench::banner("Table IV — Long-term forecasting");
    let rows = long_term::results(scale);

    let models: Vec<&str> = ModelSpec::TASK_GENERAL.iter().map(|m| m.name()).collect();
    let mut header = vec!["Dataset", "Horizon", "Metric"];
    header.extend(models.iter().copied());
    let mut t = Table::new("Table IV: Long-term forecasting results", &header);
    for spec in msd_data::long_term_datasets() {
        for &h in &long_term::HORIZONS {
            for metric in ["MSE", "MAE"] {
                let mut cells = vec![spec.name.to_string(), h.to_string(), metric.to_string()];
                for m in &models {
                    let r = rows
                        .iter()
                        .find(|r| r.dataset == spec.name && r.horizon == h && r.model == *m)
                        .expect("row");
                    cells.push(fmt3(if metric == "MSE" { r.mse } else { r.mae }));
                }
                t.row(&cells);
            }
        }
    }
    t.footnote("Lower is better. Scores in standardised space on synthetic stand-ins.");
    print!("{}", t.render());

    // First-place counts (the paper's bottom row: MSD-Mixer 49/64).
    let (_, model_names, scores) = long_term::score_matrix(&rows);
    let wins = win_counts(&scores);
    let mut wt = Table::new("Table IV (bottom): 1st-place counts over 64 benchmarks", &["Model", "1st count", "Paper"]);
    for (m, w) in model_names.iter().zip(&wins) {
        let paper = match m.as_str() {
            "MSD-Mixer" => "49",
            "PatchTST" => "7",
            "DLinear" => "3",
            "LightTS" => "1",
            _ => "-",
        };
        wt.row(&[m.clone(), w.to_string(), paper.to_string()]);
    }
    wt.footnote("Paper column: Table IV 1st counts (models we did not reproduce omitted).");
    print!("{}", wt.render());

    println!("Paper ETTh1 MSE reference (MSD-Mixer / PatchTST / DLinear):");
    for (h, a, b, c) in msd_bench::paper::TABLE_IV_ETTH1_MSE {
        println!("  h={h}: {a:.3} / {b:.3} / {c:.3}");
    }
}
