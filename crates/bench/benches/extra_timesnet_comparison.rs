//! Extension: compares the TimesNet-lite baseline (added after the main
//! table runs) against MSD-Mixer and the strongest baselines on
//! representative benchmarks from three tasks. TimesNet is the paper's
//! best task-general competitor (Table II: 13 wins), so this closes the
//! main substitution gap documented in DESIGN.md §2.

use msd_data::{anomaly_datasets, classification_datasets, long_term_datasets};
use msd_harness::experiments::{anomaly, classification, long_term};
use msd_harness::{ModelSpec, Table};
use msd_mixer::variants::Variant;

fn main() {
    let scale = msd_bench::banner("Extra — TimesNet-lite comparison");
    let models = [
        ModelSpec::MsdMixer(Variant::Full),
        ModelSpec::TimesNet,
        ModelSpec::NHits,
        ModelSpec::DLinear,
    ];

    // Long-term forecasting on ETTh1, horizon 96.
    let etth1 = long_term_datasets()
        .into_iter()
        .find(|s| s.name == "ETTh1")
        .expect("ETTh1");
    let mut t = Table::new(
        "Long-term forecasting, ETTh1-like, horizon 96",
        &["Model", "MSE", "MAE"],
    );
    for m in models {
        let (mse, mae) = long_term::run_single(&etth1, 96, m, scale);
        t.row(&[m.name().to_string(), format!("{mse:.3}"), format!("{mae:.3}")]);
    }
    print!("{}", t.render());

    // Anomaly detection on SMD.
    let smd = anomaly_datasets()
        .into_iter()
        .find(|s| s.name == "SMD")
        .expect("SMD");
    let mut t = Table::new("Anomaly detection, SMD-like", &["Model", "F1 (%)"]);
    for m in models {
        let s = anomaly::run_single(&smd, m, scale);
        t.row(&[m.name().to_string(), format!("{:.1}", s.f1 * 100.0)]);
    }
    print!("{}", t.render());

    // Classification on CR.
    let cr = classification_datasets()
        .into_iter()
        .find(|s| s.name == "CR")
        .expect("CR");
    let mut t = Table::new("Classification, CR-like", &["Model", "Accuracy"]);
    for m in models {
        let acc = classification::run_single(&cr, m, scale);
        t.row(&[m.name().to_string(), format!("{acc:.3}")]);
    }
    t.footnote("Paper Table II: TimesNet is the strongest task-general baseline overall.");
    print!("{}", t.render());
}
