//! Regenerates Table XI: classification accuracy per dataset, average
//! accuracy, first-place counts, and mean rank.

use msd_harness::experiments::classification;
use msd_harness::{fmt3, ModelSpec, Table};
use msd_metrics::{mean_ranks, win_counts};

fn main() {
    let scale = msd_bench::banner("Table XI — Classification");
    let rows = classification::results(scale);

    let models: Vec<&str> = ModelSpec::TASK_GENERAL.iter().map(|m| m.name()).collect();
    let mut header = vec!["Dataset"];
    header.extend(models.iter().copied());
    let mut t = Table::new("Table XI: Classification results (accuracy)", &header);
    for spec in msd_data::classification_datasets() {
        let mut cells = vec![spec.name.to_string()];
        for m in &models {
            let r = rows
                .iter()
                .find(|r| r.dataset == spec.name && r.model == *m)
                .expect("row");
            cells.push(fmt3(r.accuracy));
        }
        t.row(&cells);
    }
    print!("{}", t.render());

    let (_, model_names, neg_scores) = classification::score_matrix(&rows);
    let wins = win_counts(&neg_scores);
    let ranks = mean_ranks(&neg_scores);
    let mut s = Table::new(
        "Table XI (bottom): averages, 1st counts, mean rank",
        &["Model", "Avg. Acc.", "1st Count", "Mean Rank"],
    );
    for (i, m) in model_names.iter().enumerate() {
        let accs: Vec<f32> = rows.iter().filter(|r| &r.model == m).map(|r| r.accuracy).collect();
        let avg = accs.iter().sum::<f32>() / accs.len().max(1) as f32;
        s.row(&[m.clone(), fmt3(avg), wins[i].to_string(), format!("{:.1}", ranks[i])]);
    }
    print!("{}", s.render());

    println!("Paper average accuracy reference:");
    for (m, a) in msd_bench::paper::TABLE_XI_AVG_ACC {
        println!("  {m}: {a:.3}");
    }
}
