//! Regenerates Table XII: the ablation study over the five MSD-Mixer
//! variants, with the paper's averages as the reference column.

use msd_harness::experiments::ablation;
use msd_harness::{fmt3, Table};

fn main() {
    let scale = msd_bench::banner("Table XII — Ablation study");
    let rows = ablation::results(scale);

    let mut t = Table::new(
        "Table XII: Average results of MSD-Mixer variants on five tasks",
        &[
            "Task/Metric",
            "MSD-Mixer",
            "MSD-Mixer-I",
            "MSD-Mixer-N",
            "MSD-Mixer-U",
            "MSD-Mixer-L",
        ],
    );
    let get = |name: &str| rows.iter().find(|r| r.variant == name).expect("variant");
    let order = ["MSD-Mixer", "MSD-Mixer-I", "MSD-Mixer-N", "MSD-Mixer-U", "MSD-Mixer-L"];
    type MetricFn = fn(&ablation::AblationRow) -> f32;
    let metrics: [(&str, MetricFn); 9] = [
        ("Long-Term MSE", |r| r.long_mse),
        ("Long-Term MAE", |r| r.long_mae),
        ("Short-Term SMAPE", |r| r.smape),
        ("Short-Term MASE", |r| r.mase),
        ("Short-Term OWA", |r| r.owa),
        ("Imputation MSE", |r| r.imp_mse),
        ("Imputation MAE", |r| r.imp_mae),
        ("Anomaly F1", |r| r.f1),
        ("Classification ACC", |r| r.acc),
    ];
    for (label, f) in metrics {
        let mut cells = vec![label.to_string()];
        for v in order {
            cells.push(fmt3(f(get(v))));
        }
        t.row(&cells);
    }
    t.footnote("Representative benchmark per task (ETTm1-192 / Hourly / ETTh1-25% / SMD / CR).");
    print!("{}", t.render());

    println!("Paper Table XII reference (long MSE / OWA / imp MSE / F1 / ACC):");
    for (v, a, b, c, d, e) in msd_bench::paper::TABLE_XII {
        println!("  {v}: {a:.3} / {b:.3} / {c:.3} / {d:.3} / {e:.3}");
    }
}
