//! Regenerates Table VII: imputation MSE/MAE over six datasets × four
//! missing ratios, plus first-place counts.

use msd_harness::experiments::imputation;
use msd_harness::{fmt3, ModelSpec, Table};
use msd_metrics::win_counts;

fn main() {
    let scale = msd_bench::banner("Table VII — Imputation");
    let rows = imputation::results(scale);

    let models: Vec<&str> = ModelSpec::TASK_GENERAL.iter().map(|m| m.name()).collect();
    let mut header = vec!["Dataset", "Missing", "Metric"];
    header.extend(models.iter().copied());
    let mut t = Table::new("Table VII: Imputation results", &header);
    for spec in imputation::imputation_datasets() {
        for &ratio in &imputation::RATIOS {
            for metric in ["MSE", "MAE"] {
                let mut cells = vec![
                    spec.name.to_string(),
                    format!("{:.1}%", ratio * 100.0),
                    metric.to_string(),
                ];
                for m in &models {
                    let r = rows
                        .iter()
                        .find(|r| {
                            r.dataset == spec.name
                                && (r.ratio - ratio).abs() < 1e-6
                                && r.model == *m
                        })
                        .expect("row");
                    cells.push(fmt3(if metric == "MSE" { r.mse } else { r.mae }));
                }
                t.row(&cells);
            }
        }
    }
    t.footnote("Error on missing positions only, standardised space.");
    print!("{}", t.render());

    let (_, model_names, scores) = imputation::score_matrix(&rows);
    let wins = win_counts(&scores);
    let mut wt = Table::new(
        "Table VII (bottom): 1st-place counts over 48 benchmarks",
        &["Model", "1st count", "Paper"],
    );
    for (m, w) in model_names.iter().zip(&wins) {
        let paper = match m.as_str() {
            "MSD-Mixer" => "45",
            _ => "0",
        };
        wt.row(&[m.clone(), w.to_string(), paper.to_string()]);
    }
    wt.footnote("Paper: MSD-Mixer 45, TimesNet 9 (TimesNet not reproduced; see DESIGN.md §2).");
    print!("{}", wt.render());
}
