//! Regenerates Table II: overall per-task win counts across all 142
//! benchmarks, aggregated from the Table IV/VI/VII/IX/XI results (computed
//! or loaded from the results cache).

use msd_harness::experiments::{anomaly, classification, imputation, long_term, short_term};
use msd_harness::{ModelSpec, Table};
use msd_metrics::win_counts;

fn main() {
    let scale = msd_bench::banner("Table II — Overall performance comparison");

    // Long-term: 64 benchmarks.
    let lt = long_term::results(scale);
    let (_, models, lt_scores) = long_term::score_matrix(&lt);
    let lt_wins = win_counts(&lt_scores);

    // Short-term: 15 benchmarks (5 subsets incl. weighted avg × 3 metrics in
    // the paper; here 6 subsets × 3 metrics among the shared model set).
    let st = short_term::results(scale);
    let shared: Vec<String> = ModelSpec::TASK_GENERAL.iter().map(|m| m.name().to_string()).collect();
    let mut st_scores: Vec<Vec<f32>> = Vec::new();
    for spec in msd_data::m4_subsets() {
        for metric in 0..3usize {
            let mut row = Vec::new();
            for m in &shared {
                let r = st
                    .iter()
                    .find(|r| r.subset == spec.name && &r.model == m)
                    .expect("row");
                row.push(match metric {
                    0 => r.smape,
                    1 => r.mase,
                    _ => r.owa,
                });
            }
            st_scores.push(row);
        }
    }
    let st_wins = win_counts(&st_scores);

    // Imputation: 48 benchmarks.
    let imp = imputation::results(scale);
    let (_, _, imp_scores) = imputation::score_matrix(&imp);
    let imp_wins = win_counts(&imp_scores);

    // Anomaly detection: 5 benchmarks.
    let an = anomaly::results(scale);
    let (_, _, an_scores) = anomaly::score_matrix(&an);
    let an_wins = win_counts(&an_scores);

    // Classification: 10 benchmarks.
    let cl = classification::results(scale);
    let (_, _, cl_scores) = classification::score_matrix(&cl);
    let cl_wins = win_counts(&cl_scores);

    let mut header = vec!["Task", "Benchmarks"];
    header.extend(models.iter().map(String::as_str));
    header.push("Paper MSD wins");
    let mut t = Table::new("Table II: Overall performance comparison (win counts)", &header);
    let tasks: [(&str, usize, &Vec<usize>, usize); 5] = [
        ("Long-Term Forecasting", lt_scores.len(), &lt_wins, 49),
        ("Short-Term Forecasting", st_scores.len(), &st_wins, 15),
        ("Imputation", imp_scores.len(), &imp_wins, 45),
        ("Anomaly Detection", an_scores.len(), &an_wins, 4),
        ("Classification", cl_scores.len(), &cl_wins, 5),
    ];
    let mut totals = vec![0usize; models.len()];
    let mut total_benchmarks = 0usize;
    for (task, n, wins, paper) in tasks {
        let mut cells = vec![task.to_string(), n.to_string()];
        for (i, w) in wins.iter().enumerate() {
            totals[i] += w;
            cells.push(w.to_string());
        }
        cells.push(paper.to_string());
        t.row(&cells);
        total_benchmarks += n;
    }
    let mut cells = vec!["Total".to_string(), total_benchmarks.to_string()];
    for w in &totals {
        cells.push(w.to_string());
    }
    cells.push("118".to_string());
    t.row(&cells);
    t.footnote("Ties credit every tied leader, so rows can sum above the benchmark count.");
    print!("{}", t.render());
}
