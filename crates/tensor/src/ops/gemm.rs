//! Blocked, packed, register-tiled SGEMM — the compute engine behind
//! [`Tensor::matmul`], its transpose-aware variants, and [`Tensor::linear`].
//!
//! # Design
//!
//! Classic three-level blocking (the BLIS decomposition):
//!
//! * the k dimension is split into `KC`-deep slabs so one packed slab of B
//!   stays L2/L3-resident while it is reused by every row panel;
//! * rows of C are split into `MC`-high tiles; each tile packs its slab of A
//!   into an `MR`-interleaved buffer that streams through L1;
//! * a register-tiled `MR × NR` microkernel (runtime-dispatched between a
//!   portable scalar version and an AVX accumulator-grid version on x86-64)
//!   computes each output block, keeping 12 vector accumulators live.
//!
//! Both operands are read through arbitrary (row, column) strides, so the
//! same packing routines serve `A·B`, `A·Bᵀ` and `Aᵀ·B` — transposed
//! backward-pass products never materialise a transposed copy.
//!
//! # Determinism and exactness
//!
//! Every output element accumulates its k products in ascending-k order with
//! one fused multiply-add per term: the AVX path uses `vfmadd` and the
//! portable path uses [`f32::mul_add`], which is correctly rounded and
//! therefore **bit-identical** to the hardware instruction. The dispatcher
//! can pick either kernel and the result does not change. Parallelism only
//! distributes fixed `MC`-row tiles of C over workers ([`crate::pool`]); no
//! thread ever contributes a partial sum to another tile's output, so
//! results are also bit-identical for every `MSD_NUM_THREADS` setting.
//! Relative to the naive triple loop ([`naive_gemm`]) the fused product
//! differs by at most one rounding per term (FMA skips the intermediate
//! rounding of `a·b`), so equality tests against the reference compare
//! within a small tolerance while determinism tests compare bit for bit.
//! Zero inputs are *not* short-circuited: NaN and infinity propagate exactly
//! as IEEE arithmetic dictates.

use crate::pool;

/// Microkernel tile height (rows of C per register block).
pub const MR: usize = 6;
/// Microkernel tile width (columns of C per register block; two 8-lane
/// vectors).
pub const NR: usize = 16;
/// Depth of one packed slab of A/B.
const KC: usize = 256;
/// Rows of C per parallel tile (a multiple of `MR`).
const MC: usize = 96;
/// Flop count (2·m·n·k) below which a product always runs single-threaded:
/// thread spawn costs more than it saves on small problems.
const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// Reference kernel: the plain i-k-j triple loop, kept as the ground truth
/// for equality tests and as the baseline the micro-benchmarks measure the
/// blocked kernel against. `C = A·B` for row-major `m×k · k×n`.
pub fn naive_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `C = A·B` with strided operands: `A[i, p] = a[i·a_rs + p·a_cs]` (an `m×k`
/// view), `B[p, j] = b[p·b_rs + j·b_cs]` (`k×n`), `C` row-major `m×n`,
/// overwritten. Parallelises over row tiles of C when the problem is large
/// enough and `MSD_NUM_THREADS` (or the machine) allows.
// BLAS-style flat signature (dims + strided operands) on purpose: this is
// the conventional sgemm shape and every caller passes the fields of a
// tensor view it already holds.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    let threads = if 2 * m * n * k >= PAR_FLOP_THRESHOLD {
        pool::num_threads()
    } else {
        1
    };
    sgemm_strided_with_threads(m, k, n, a, a_rs, a_cs, b, b_rs, b_cs, c, threads);
}

/// [`sgemm_strided`] with an explicit worker count (used by batched callers
/// that parallelise over the batch axis instead).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sgemm_strided_with_threads(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "sgemm output size");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    debug_assert!((m - 1) * a_rs + (k - 1) * a_cs < a.len());
    debug_assert!((k - 1) * b_rs + (n - 1) * b_cs < b.len());

    // Packing buffers come from a per-thread scratch arena reused across
    // calls: repeated products (every training step) would otherwise spend
    // more time in page faults on freshly calloc'd buffers than in the
    // kernel. Layout: packed B, then one fixed-size A region per row tile.
    let n_panels = n.div_ceil(NR);
    let n_tiles = m.div_ceil(MC);
    let b_len = k * n_panels * NR;
    let a_tile_len = MC.div_ceil(MR) * MR * KC;
    let mut scratch = ScratchGuard::take(b_len + n_tiles * a_tile_len);
    let (packed_b, packed_a_all) = scratch.split_at_mut(b_len);

    // Pack all of B up front: per KC slab, per NR column panel, a kc×NR
    // block in row-major panel order. One pass, shared read-only by every
    // worker.
    {
        let mut slab_base = 0usize;
        let mut k0 = 0usize;
        while k0 < k {
            let kc = KC.min(k - k0);
            for jp in 0..n_panels {
                let dst = &mut packed_b[slab_base + jp * kc * NR..][..kc * NR];
                let nr = NR.min(n - jp * NR);
                for p in 0..kc {
                    let src_row = (k0 + p) * b_rs;
                    if b_cs == 1 && nr == NR {
                        // Contiguous full panel: a straight 16-float copy.
                        dst[p * NR..(p + 1) * NR]
                            .copy_from_slice(&b[src_row + jp * NR..][..NR]);
                    } else {
                        for jj in 0..nr {
                            dst[p * NR + jj] = b[src_row + (jp * NR + jj) * b_cs];
                        }
                        for jj in nr..NR {
                            dst[p * NR + jj] = 0.0;
                        }
                    }
                }
            }
            slab_base += kc * n_panels * NR;
            k0 += kc;
        }
    }

    let c_ptr = SendPtr(c.as_mut_ptr());
    let a_ptr = SendPtr(packed_a_all.as_mut_ptr());
    let packed_b = &*packed_b;
    // Resolve the ISA tier once per product, not per microkernel call: the
    // dispatcher re-reads `MSD_KERNEL_FORCE` on every resolution, which is
    // far too expensive for the inner loop.
    let isa = isa_level();
    pool::parallel_tiles(n_tiles, threads, move |tile| {
        let c_ptr = &c_ptr;
        let a_ptr = &a_ptr;
        let i0 = tile * MC;
        let mc = MC.min(m - i0);
        let mr_panels = mc.div_ceil(MR);
        // SAFETY: each tile owns the disjoint `a_tile_len` slice at its own
        // index within the scratch arena.
        let packed_a = unsafe {
            std::slice::from_raw_parts_mut(a_ptr.0.add(tile * a_tile_len), mr_panels * MR * KC)
        };
        let mut slab_base = 0usize;
        let mut k0 = 0usize;
        let mut first_slab = true;
        while k0 < k {
            let kc = KC.min(k - k0);
            // Pack this tile's slab of A, MR-interleaved with zero padding
            // for the ragged final row panel.
            for ip in 0..mr_panels {
                let dst = &mut packed_a[ip * kc * MR..(ip + 1) * kc * MR];
                let rows = MR.min(mc - ip * MR);
                for p in 0..kc {
                    for ii in 0..rows {
                        dst[p * MR + ii] = a[(i0 + ip * MR + ii) * a_rs + (k0 + p) * a_cs];
                    }
                    for ii in rows..MR {
                        dst[p * MR + ii] = 0.0;
                    }
                }
            }
            for jp in 0..n_panels {
                let b_panel = &packed_b[slab_base + jp * kc * NR..][..kc * NR];
                for ip in 0..mr_panels {
                    let i = i0 + ip * MR;
                    let j = jp * NR;
                    let mr = MR.min(m - i);
                    let nr = NR.min(n - j);
                    let a_panel = &packed_a[ip * kc * MR..][..kc * MR];
                    // SAFETY: each (i, j) block lies inside C, and blocks of
                    // distinct tiles are disjoint row ranges.
                    unsafe {
                        let c_block = c_ptr.0.add(i * n + j);
                        if mr == MR && nr == NR {
                            microkernel(isa, kc, a_panel, b_panel, c_block, n, first_slab);
                        } else {
                            // Ragged edge: run the kernel on a local NR-wide
                            // buffer, then copy the valid region back.
                            let mut buf = [0.0f32; MR * NR];
                            if !first_slab {
                                for ii in 0..mr {
                                    for jj in 0..nr {
                                        buf[ii * NR + jj] = *c_block.add(ii * n + jj);
                                    }
                                }
                            }
                            microkernel(isa, kc, a_panel, b_panel, buf.as_mut_ptr(), NR, first_slab);
                            for ii in 0..mr {
                                for jj in 0..nr {
                                    *c_block.add(ii * n + jj) = buf[ii * NR + jj];
                                }
                            }
                        }
                    }
                }
            }
            slab_base += kc * n_panels * NR;
            k0 += kc;
            first_slab = false;
        }
    });
}

/// A raw output pointer that may cross the scoped-thread boundary. Tiles
/// write disjoint row ranges, so concurrent use is race-free.
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

thread_local! {
    /// Reusable packing arena, one per thread. See [`ScratchGuard`].
    static SCRATCH: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Owns the thread's packing arena for the duration of one product.
///
/// The buffer is *taken out* of the thread-local slot (leaving an empty Vec)
/// and returned on drop, so re-entrant calls on the same thread simply fall
/// back to a fresh allocation instead of aborting on a RefCell borrow. The
/// larger buffer wins on the way back, so the arena converges to the biggest
/// working-set size the thread has seen and stays fault-free afterwards.
struct ScratchGuard(Vec<f32>);

impl ScratchGuard {
    fn take(len: usize) -> Self {
        let mut buf = SCRATCH
            .try_with(|c| std::mem::take(&mut *c.borrow_mut()))
            .unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        Self(buf)
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.0);
        let _ = SCRATCH.try_with(|c| {
            let mut cur = c.borrow_mut();
            if cur.capacity() < buf.capacity() {
                *cur = buf;
            }
        });
    }
}

impl std::ops::Deref for ScratchGuard {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl std::ops::DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.0
    }
}

/// Dispatches one `MR×NR` block: `init` starts accumulators at zero
/// (first k slab), otherwise they continue from the values already in `c`.
///
/// # Safety
/// `a` must hold `kc·MR` packed values, `b` `kc·NR`; `c` must be writable at
/// rows `0..MR` with stride `ldc` and `NR` columns each.
#[inline]
unsafe fn microkernel(
    isa: IsaLevel,
    kc: usize,
    a: &[f32],
    b: &[f32],
    c: *mut f32,
    ldc: usize,
    init: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        match isa {
            IsaLevel::Avx512 => return microkernel_avx512(kc, a, b, c, ldc, init),
            IsaLevel::Fma => return microkernel_fma(kc, a, b, c, ldc, init),
            IsaLevel::Baseline => {}
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    microkernel_scalar(kc, a, b, c, ldc, init);
}

#[derive(Clone, Copy)]
enum IsaLevel {
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx512,
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Fma,
    Baseline,
}

/// Resolves the gemm ISA tier through the shared kernel dispatcher so
/// `MSD_KERNEL_FORCE` governs gemm exactly like every other kernel. All
/// gemm tiers are bit-identical by design (the scalar path uses
/// correctly-rounded `f32::mul_add` to mirror the FMA units), so forcing
/// the tier only changes speed, never bits.
fn isa_level() -> IsaLevel {
    match crate::ops::kernels::tier() {
        crate::ops::kernels::Tier::Avx512 => IsaLevel::Avx512,
        crate::ops::kernels::Tier::Fma => IsaLevel::Fma,
        crate::ops::kernels::Tier::Scalar => IsaLevel::Baseline,
    }
}

/// Portable microkernel: a `[MR][NR]` accumulator grid accumulated with
/// [`f32::mul_add`]. `mul_add` is correctly rounded (soft-float where the
/// target has no FMA unit), so every element matches the AVX kernel bit for
/// bit — this path trades speed for portability, never accuracy.
unsafe fn microkernel_scalar(kc: usize, a: &[f32], b: &[f32], c: *mut f32, ldc: usize, init: bool) {
    let mut acc = [[0.0f32; NR]; MR];
    if !init {
        for (i, row) in acc.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = *c.add(i * ldc + j);
            }
        }
    }
    for p in 0..kc {
        let b_row = &b[p * NR..(p + 1) * NR];
        let a_col = &a[p * MR..(p + 1) * MR];
        for (row, &ai) in acc.iter_mut().zip(a_col) {
            for (v, &bv) in row.iter_mut().zip(b_row) {
                *v = ai.mul_add(bv, *v);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            *c.add(i * ldc + j) = *v;
        }
    }
}

/// FMA microkernel: 6×2 ymm accumulators, one broadcast per A element, two
/// loads per B row, one `vfmadd` per accumulator — 12 live accumulators plus
/// 3 working registers fit the 16 ymm registers with room to spare.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_fma(kc: usize, a: &[f32], b: &[f32], c: *mut f32, ldc: usize, init: bool) {
    use core::arch::x86_64::*;
    let mut acc0: [__m256; MR] = [_mm256_setzero_ps(); MR];
    let mut acc1: [__m256; MR] = [_mm256_setzero_ps(); MR];
    if !init {
        for i in 0..MR {
            acc0[i] = _mm256_loadu_ps(c.add(i * ldc));
            acc1[i] = _mm256_loadu_ps(c.add(i * ldc + 8));
        }
    }
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR));
        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
        for i in 0..MR {
            let ai = _mm256_broadcast_ss(&*ap.add(p * MR + i));
            acc0[i] = _mm256_fmadd_ps(ai, b0, acc0[i]);
            acc1[i] = _mm256_fmadd_ps(ai, b1, acc1[i]);
        }
    }
    for i in 0..MR {
        _mm256_storeu_ps(c.add(i * ldc), acc0[i]);
        _mm256_storeu_ps(c.add(i * ldc + 8), acc1[i]);
    }
}

/// AVX-512 microkernel: one zmm spans the whole `NR = 16` panel, so each of
/// the `MR` rows keeps a single accumulator — one broadcast and one `vfmadd`
/// per (row, k) step, half the instructions of the AVX2 version. The
/// per-element operation sequence (ascending-k fused multiply-add) is the
/// same as every other path, so results stay bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(kc: usize, a: &[f32], b: &[f32], c: *mut f32, ldc: usize, init: bool) {
    use core::arch::x86_64::*;
    let mut acc: [__m512; MR] = [_mm512_setzero_ps(); MR];
    if !init {
        for (i, v) in acc.iter_mut().enumerate() {
            *v = _mm512_loadu_ps(c.add(i * ldc));
        }
    }
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    for p in 0..kc {
        let bv = _mm512_loadu_ps(bp.add(p * NR));
        for (i, v) in acc.iter_mut().enumerate() {
            let ai = _mm512_set1_ps(*ap.add(p * MR + i));
            *v = _mm512_fmadd_ps(ai, bv, *v);
        }
    }
    for (i, v) in acc.iter().enumerate() {
        _mm512_storeu_ps(c.add(i * ldc), *v);
    }
}

/// Batched strided product: `nb` independent `m×k · k×n` problems whose
/// operands advance by `a_step`/`b_step`/`c_step` elements per batch
/// (a step of 0 broadcasts that operand). Parallelises over batch entries;
/// each entry runs the sequential kernel, so results match the
/// one-batch-at-a-time loop bit for bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sgemm_batched_strided(
    nb: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_step: usize,
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_step: usize,
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
) {
    assert_eq!(c.len(), nb * m * n, "batched sgemm output size");
    if nb == 0 {
        return;
    }
    if nb == 1 {
        return sgemm_strided(m, k, n, a, a_rs, a_cs, b, b_rs, b_cs, c);
    }
    let threads = if 2 * nb * m * n * k >= PAR_FLOP_THRESHOLD {
        pool::num_threads()
    } else {
        1
    };
    let c_ptr = SendPtr(c.as_mut_ptr());
    pool::parallel_tiles(nb, threads, move |bi| {
        let c_ptr = &c_ptr;
        // SAFETY: each batch writes its own disjoint m·n slice of C.
        let c_slice =
            unsafe { std::slice::from_raw_parts_mut(c_ptr.0.add(bi * m * n), m * n) };
        sgemm_strided_with_threads(
            m,
            k,
            n,
            &a[bi * a_step..],
            a_rs,
            a_cs,
            &b[bi * b_step..],
            b_rs,
            b_cs,
            c_slice,
            1,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal()).collect()
    }

    /// Elementwise comparison with the slack FMA contraction is allowed: one
    /// rounding per term relative to the mul-then-add reference.
    pub(super) fn assert_close_to_naive(c: &[f32], reference: &[f32], label: &str) {
        assert_eq!(c.len(), reference.len(), "{label}: length");
        for (i, (&x, &y)) in c.iter().zip(reference).enumerate() {
            let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
            assert!(
                (x - y).abs() <= tol,
                "{label}: element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_on_assorted_shapes() {
        let mut rng = Rng::seed_from(7);
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 4),
            (5, 7, 11),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MC, 8, NR * 2),
            (MC + MR - 1, KC - 1, 33),
            (97, 61, 29),
        ] {
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            let mut c = vec![f32::NAN; m * n];
            sgemm_strided(m, k, n, &a, k, 1, &b, n, 1, &mut c);
            assert_close_to_naive(&c, &naive_gemm(m, k, n, &a, &b), &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn strided_reads_compute_transposed_products_bitwise() {
        let mut rng = Rng::seed_from(8);
        let (m, k, n) = (9, 13, 17);
        let a = random(m * k, &mut rng); // row-major [m, k]
        let bt = random(n * k, &mut rng); // row-major [n, k], used as Bᵀ
        let mut c = vec![0.0f32; m * n];
        // B[p, j] = bt[j, p]: row stride 1, column stride k.
        sgemm_strided(m, k, n, &a, k, 1, &bt, 1, k, &mut c);
        let mut b = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                b[p * n + j] = bt[j * k + p];
            }
        }
        // Same kernel, same packing layout either way — strided reads must
        // reproduce the materialised transpose bit for bit.
        let mut c_ref = vec![0.0f32; m * n];
        sgemm_strided(m, k, n, &a, k, 1, &b, n, 1, &mut c_ref);
        assert_eq!(c, c_ref);
    }

    #[test]
    fn k_zero_yields_zeros() {
        let mut c = vec![1.0f32; 6];
        sgemm_strided(2, 0, 3, &[], 0, 0, &[], 0, 0, &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
    }
}
