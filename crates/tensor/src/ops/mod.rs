//! Tensor operations, grouped by kind.
//!
//! All ops are implemented as inherent methods on [`crate::Tensor`] so call
//! sites read naturally (`x.matmul(&w)`), with the implementations split
//! across the submodules below.

mod elementwise;
pub mod gemm;
pub mod kernels;
mod layout;
mod matmul;
mod reduce;

pub use elementwise::{fast_tanh, gelu_grad_scalar, gelu_scalar};
pub use layout::{concat_into, narrow_into, pad_axis_into, permute_into};
pub use matmul::{linear_into, matmul_nn_into};
pub use reduce::sum_axis_into;
