//! Reductions: sums, means, extrema, and statistics along axes.
//!
//! Whole-tensor reductions route through [`crate::ops::kernels::reduce`],
//! which fixes a single blocked accumulation order so results are
//! bit-identical for every SIMD tier and thread count.

use crate::ops::kernels::{self, reduce as kred};
use crate::Tensor;

/// Sums `src` (shape `shape`) along `axis` into `out`, which must be sized
/// for the reduced shape. `out` is fully overwritten (zeroed first).
///
/// This is the single implementation behind [`Tensor::sum_axis`] and the
/// compiled-plan executor; the last-axis path uses the spec'd sequential
/// per-row reduction so results are bit-identical for every SIMD tier and
/// thread count.
pub fn sum_axis_into(shape: &[usize], src: &[f32], axis: usize, out: &mut [f32]) {
    assert!(axis < shape.len(), "sum axis out of range");
    let inner: usize = shape[axis + 1..].iter().product();
    let outer: usize = shape[..axis].iter().product();
    let ext = shape[axis];
    assert_eq!(out.len(), outer * inner, "sum_axis_into output length");
    out.fill(0.0);
    if inner == 1 {
        // Last-axis reduction: one spec'd sequential sum per row,
        // parallel over fixed row blocks (who computes a row never
        // changes what it computes).
        let t = kernels::tier();
        let out_ptr = kernels::SendPtr(out.as_mut_ptr());
        kernels::par_rows(outer, ext, move |_b, r0, n| {
            let out_ptr = &out_ptr;
            for r in r0..r0 + n {
                // SAFETY: each row index is written by exactly one block.
                unsafe {
                    *out_ptr.0.add(r) = kred::sum_seq(t, &src[r * ext..(r + 1) * ext]);
                }
            }
        });
    } else {
        for o in 0..outer {
            for a in 0..ext {
                let base = (o * ext + a) * inner;
                let dst = &mut out[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    *d += s;
                }
            }
        }
    }
}

impl Tensor {
    /// Sum of all elements (spec'd blocked reduction; see the kernel docs).
    pub fn sum_all(&self) -> f32 {
        kred::sum(self.data())
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }

    /// Maximum element, ignoring NaN. `-inf` for an empty tensor.
    pub fn max_all(&self) -> f32 {
        kred::maxv(self.data())
    }

    /// Minimum element, ignoring NaN. `+inf` for an empty tensor.
    pub fn min_all(&self) -> f32 {
        kred::minv(self.data())
    }

    /// Sums along `axis`, removing it from the shape.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert!(axis < self.ndim(), "sum axis out of range");
        let shape = self.shape();
        let inner: usize = shape[axis + 1..].iter().product();
        let outer: usize = shape[..axis].iter().product();
        let mut out_shape = shape.to_vec();
        out_shape.remove(axis);
        let mut out = vec![0.0f32; outer * inner];
        sum_axis_into(shape, self.data(), axis, &mut out);
        Tensor::from_vec(&out_shape, out)
    }

    /// Means along `axis`, removing it from the shape.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let ext = self.shape()[axis] as f32;
        self.sum_axis(axis).scale(1.0 / ext)
    }

    /// Index of the maximum along the last axis, removing it from the shape.
    /// Ties resolve to the first maximum. Used for classification argmax.
    pub fn argmax_last(&self) -> Vec<usize> {
        let last = *self.shape().last().expect("argmax on scalar");
        self.data()
            .chunks_exact(last)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Population variance of all elements.
    pub fn var_all(&self) -> f32 {
        let mean = self.mean_all();
        kred::centered_sumsq(self.data(), mean) / self.len().max(1) as f32
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        kred::sumsq(self.data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_all() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum_all(), 10.0);
        assert_eq!(t.mean_all(), 2.5);
        assert_eq!(t.max_all(), 4.0);
        assert_eq!(t.min_all(), 1.0);
    }

    #[test]
    fn sum_axis_inner_and_outer() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s0 = t.sum_axis(0);
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.data(), &[5.0, 7.0, 9.0]);
        let s1 = t.sum_axis(1);
        assert_eq!(s1.shape(), &[2]);
        assert_eq!(s1.data(), &[6.0, 15.0]);
    }

    #[test]
    fn sum_axis_middle() {
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        let s = t.sum_axis(1);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 4.0, 10.0, 12.0]);
    }

    #[test]
    fn mean_axis_divides_by_extent() {
        let t = Tensor::from_vec(&[2, 4], vec![1.0; 8]);
        let m = t.mean_axis(1);
        assert_eq!(m.data(), &[1.0, 1.0]);
    }

    #[test]
    fn argmax_last_finds_first_max() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.9, 5.0, 1.0, 2.0]);
        assert_eq!(t.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn var_of_constant_is_zero() {
        let t = Tensor::full(&[10], 3.0);
        assert_eq!(t.var_all(), 0.0);
    }

    #[test]
    fn sq_norm() {
        let t = Tensor::from_vec(&[2], vec![3.0, 4.0]);
        assert_eq!(t.sq_norm(), 25.0);
    }
}
