//! Layout transformations: reshape, permute, padding, narrowing, concat.
//!
//! MSD-Mixer's temporal patching (Sec. III-C) is built entirely from these:
//! zero left-padding so the length divides the patch size, a reshape into
//! `[C, L', p]`, and permutes that rotate the mixing axis into last position
//! for the MLP blocks.

use crate::shape::{numel, strides_for};
use crate::Tensor;

/// Writes the permutation of `src` (shape `in_shape`, axes reordered by
/// `perm`) into `out`, which must hold exactly `numel(in_shape)` elements.
///
/// This is the single implementation behind [`Tensor::permute`] and the
/// compiled-plan executor, so both paths produce identical bytes.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..ndim` or `out` has the wrong
/// length.
pub fn permute_into(in_shape: &[usize], src: &[f32], perm: &[usize], out: &mut [f32]) {
    let nd = in_shape.len();
    assert_eq!(perm.len(), nd, "permute rank mismatch");
    let mut seen = vec![false; nd];
    for &p in perm {
        assert!(p < nd && !seen[p], "invalid permutation {:?}", perm);
        seen[p] = true;
    }
    assert_eq!(out.len(), numel(in_shape), "permute_into output length");
    if nd == 0 {
        out.copy_from_slice(src);
        return;
    }
    let in_strides = strides_for(in_shape);
    let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
    // Stride to walk the *input* buffer in output order.
    let walk: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    // Odometer walk over output coordinates, tracking the input offset
    // incrementally so each element costs O(1) amortised.
    let mut coords = vec![0usize; nd];
    let mut offset = 0usize;
    let mut idx = 0usize;
    loop {
        out[idx] = src[offset];
        idx += 1;
        // Increment the innermost coordinate, carrying as needed.
        let mut axis = nd;
        loop {
            if axis == 0 {
                return;
            }
            axis -= 1;
            coords[axis] += 1;
            offset += walk[axis];
            if coords[axis] < out_shape[axis] {
                break;
            }
            offset -= walk[axis] * out_shape[axis];
            coords[axis] = 0;
        }
    }
}

/// Zero-pads `src` (shape `in_shape`) along `axis` into `out`, which must be
/// sized for the padded shape. Shared by [`Tensor::pad_axis`] and the plan
/// executor.
pub fn pad_axis_into(
    in_shape: &[usize],
    src: &[f32],
    axis: usize,
    before: usize,
    after: usize,
    out: &mut [f32],
) {
    assert!(axis < in_shape.len(), "pad axis out of range");
    let inner: usize = in_shape[axis + 1..].iter().product();
    let outer: usize = in_shape[..axis].iter().product();
    let in_block = in_shape[axis] * inner;
    let out_block = (in_shape[axis] + before + after) * inner;
    assert_eq!(out.len(), outer * out_block, "pad_axis_into output length");
    out.fill(0.0);
    for o in 0..outer {
        let s = &src[o * in_block..(o + 1) * in_block];
        let dst = &mut out[o * out_block + before * inner..o * out_block + before * inner + in_block];
        dst.copy_from_slice(s);
    }
}

/// Copies the `len`-wide slice starting at `start` along `axis` of `src`
/// (shape `in_shape`) into `out`. Shared by [`Tensor::narrow`] and the plan
/// executor.
pub fn narrow_into(
    in_shape: &[usize],
    src: &[f32],
    axis: usize,
    start: usize,
    len: usize,
    out: &mut [f32],
) {
    assert!(axis < in_shape.len(), "narrow axis out of range");
    assert!(
        start + len <= in_shape[axis],
        "narrow range {}..{} exceeds axis {} of extent {}",
        start,
        start + len,
        axis,
        in_shape[axis]
    );
    let inner: usize = in_shape[axis + 1..].iter().product();
    let outer: usize = in_shape[..axis].iter().product();
    let in_block = in_shape[axis] * inner;
    let out_block = len * inner;
    assert_eq!(out.len(), outer * out_block, "narrow_into output length");
    for o in 0..outer {
        let base = o * in_block + start * inner;
        out[o * out_block..(o + 1) * out_block].copy_from_slice(&src[base..base + out_block]);
    }
}

/// Concatenates `(shape, data)` parts along `axis` into `out`. All non-axis
/// extents must match. Shared by [`Tensor::concat`] and the plan executor.
pub fn concat_into(parts: &[(&[usize], &[f32])], axis: usize, out: &mut [f32]) {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let first = parts[0].0;
    assert!(axis < first.len(), "concat axis out of range");
    let mut total = 0usize;
    for (s, _) in parts {
        assert_eq!(s.len(), first.len(), "concat rank mismatch");
        for (i, (&a, &b)) in s.iter().zip(first).enumerate() {
            if i != axis {
                assert_eq!(a, b, "concat non-axis extent mismatch on axis {i}");
            }
        }
        total += s[axis];
    }
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    assert_eq!(out.len(), outer * total * inner, "concat_into output length");
    let mut idx = 0usize;
    for o in 0..outer {
        for (s, d) in parts {
            let block = s[axis] * inner;
            out[idx..idx + block].copy_from_slice(&d[o * block..(o + 1) * block]);
            idx += block;
        }
    }
}

impl Tensor {
    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            numel(shape),
            "reshape {:?} -> {:?} changes element count",
            self.shape(),
            shape
        );
        Tensor::from_vec(shape, self.data().to_vec())
    }

    /// Reorders axes: output axis `i` is input axis `perm[i]`. Materialises a
    /// contiguous result.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        if self.ndim() == 0 {
            assert!(perm.is_empty(), "permute rank mismatch");
            return self.clone();
        }
        let in_shape = self.shape();
        let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
        let mut out = vec![0.0f32; self.len()];
        permute_into(in_shape, self.data(), perm, &mut out);
        Tensor::from_vec(&out_shape, out)
    }

    /// Zero-pads axis `axis` with `before` leading and `after` trailing
    /// positions. The paper pads at the *beginning* of the time axis before
    /// patching (Sec. III-C).
    pub fn pad_axis(&self, axis: usize, before: usize, after: usize) -> Tensor {
        assert!(axis < self.ndim(), "pad axis out of range");
        if before == 0 && after == 0 {
            return self.clone();
        }
        let in_shape = self.shape();
        let mut out_shape = in_shape.to_vec();
        out_shape[axis] += before + after;
        let mut out = vec![0.0f32; numel(&out_shape)];
        pad_axis_into(in_shape, self.data(), axis, before, after, &mut out);
        Tensor::from_vec(&out_shape, out)
    }

    /// Slices `len` positions starting at `start` along `axis`.
    ///
    /// # Panics
    /// Panics if the requested range exceeds the axis extent.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        assert!(axis < self.ndim(), "narrow axis out of range");
        let in_shape = self.shape();
        let mut out_shape = in_shape.to_vec();
        out_shape[axis] = len;
        let mut out = vec![0.0f32; numel(&out_shape)];
        narrow_into(in_shape, self.data(), axis, start, len, &mut out);
        Tensor::from_vec(&out_shape, out)
    }

    /// Scatters `self` back into a zero tensor of extent `full_len` along
    /// `axis` starting at `start` — the adjoint of [`Tensor::narrow`].
    pub fn widen(&self, axis: usize, start: usize, full_len: usize) -> Tensor {
        assert!(axis < self.ndim(), "widen axis out of range");
        let in_shape = self.shape();
        assert!(start + in_shape[axis] <= full_len, "widen range exceeds target");
        let mut out_shape = in_shape.to_vec();
        out_shape[axis] = full_len;
        let mut out = Tensor::zeros(&out_shape);
        let inner: usize = in_shape[axis + 1..].iter().product();
        let outer: usize = in_shape[..axis].iter().product();
        let in_block = in_shape[axis] * inner;
        let out_block = full_len * inner;
        for o in 0..outer {
            let src = &self.data()[o * in_block..(o + 1) * in_block];
            let dst_base = o * out_block + start * inner;
            out.data_mut()[dst_base..dst_base + in_block].copy_from_slice(src);
        }
        out
    }

    /// Concatenates tensors along `axis`. All other axes must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let first = parts[0].shape();
        assert!(axis < first.len(), "concat axis out of range");
        let total: usize = parts.iter().map(|p| p.shape()[axis]).sum();
        let mut out_shape = first.to_vec();
        out_shape[axis] = total;
        let mut out = vec![0.0f32; numel(&out_shape)];
        let views: Vec<(&[usize], &[f32])> =
            parts.iter().map(|p| (p.shape(), p.data())).collect();
        concat_into(&views, axis, &mut out);
        Tensor::from_vec(&out_shape, out)
    }

    /// Stacks same-shape tensors along a new leading axis: `n` tensors of
    /// shape `[d0, d1, ..]` become one `[n, d0, d1, ..]` tensor.
    ///
    /// # Panics
    /// Panics on zero tensors or a shape mismatch.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let first = parts[0].shape();
        let mut out_shape = Vec::with_capacity(first.len() + 1);
        out_shape.push(parts.len());
        out_shape.extend_from_slice(first);
        let mut out = Vec::with_capacity(numel(&out_shape));
        for p in parts {
            assert_eq!(p.shape(), first, "stack shape mismatch");
            out.extend_from_slice(p.data());
        }
        Tensor::from_vec(&out_shape, out)
    }

    /// Splits the leading axis into its slices, dropping it: a
    /// `[n, d0, d1, ..]` tensor becomes `n` tensors of shape `[d0, d1, ..]`.
    /// Inverse of [`Tensor::stack`].
    ///
    /// # Panics
    /// Panics on a rank-0 tensor.
    pub fn unstack_leading(&self) -> Vec<Tensor> {
        assert!(self.ndim() >= 1, "unstack_leading on rank-0 tensor");
        let n = self.shape()[0];
        let rest = &self.shape()[1..];
        let block: usize = rest.iter().product();
        (0..n)
            .map(|i| Tensor::from_vec(rest, self.data()[i * block..(i + 1) * block].to_vec()))
            .collect()
    }

    /// Repeats the tensor `reps` times along a new leading axis.
    pub fn tile_leading(&self, reps: usize) -> Tensor {
        let mut out_shape = Vec::with_capacity(self.ndim() + 1);
        out_shape.push(reps);
        out_shape.extend_from_slice(self.shape());
        let mut out = Vec::with_capacity(self.len() * reps);
        for _ in 0..reps {
            out.extend_from_slice(self.data());
        }
        Tensor::from_vec(&out_shape, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn permute_2d_is_transpose() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let p = t.permute(&[1, 0]);
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn permute_3d_known_values() {
        // shape [2,2,2]: value = 4a + 2b + c
        let t = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        let p = t.permute(&[2, 0, 1]); // out[c][a][b] = in[a][b][c]
        assert_eq!(p.shape(), &[2, 2, 2]);
        assert_eq!(p.at(&[1, 0, 1]), t.at(&[0, 1, 1]));
        assert_eq!(p.at(&[0, 1, 0]), t.at(&[1, 0, 0]));
    }

    #[test]
    fn permute_inverse_round_trips() {
        let t = Tensor::from_vec(&[2, 3, 4], (0..24).map(|i| i as f32).collect());
        let p = t.permute(&[2, 0, 1]);
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn pad_axis_leading_zeros() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let p = t.pad_axis(1, 2, 0);
        assert_eq!(p.shape(), &[2, 4]);
        assert_eq!(p.data(), &[0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn pad_then_narrow_round_trips() {
        let t = Tensor::from_vec(&[2, 3], (1..=6).map(|i| i as f32).collect());
        let p = t.pad_axis(1, 2, 1);
        assert_eq!(p.shape(), &[2, 6]);
        assert_eq!(p.narrow(1, 2, 3), t);
    }

    #[test]
    fn narrow_axis0() {
        let t = Tensor::from_vec(&[3, 2], (0..6).map(|i| i as f32).collect());
        let n = t.narrow(0, 1, 2);
        assert_eq!(n.shape(), &[2, 2]);
        assert_eq!(n.data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn widen_is_adjoint_of_narrow() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = t.widen(1, 1, 4);
        assert_eq!(w.shape(), &[2, 4]);
        assert_eq!(w.data(), &[0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0]);
        assert_eq!(w.narrow(1, 1, 2), t);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(&[2, 1], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2, 2], vec![3.0, 4.0, 5.0, 6.0]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn tile_leading_repeats() {
        let t = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let r = t.tile_leading(3);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn stack_unstack_round_trips() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let b = Tensor::from_vec(&[2, 3], (6..12).map(|i| i as f32).collect());
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2, 3]);
        assert_eq!(&s.data()[..6], a.data());
        assert_eq!(&s.data()[6..], b.data());
        let parts = s.unstack_leading();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn stack_matches_concat_of_unsqueezed() {
        let a = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[1, 2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let via_concat = Tensor::concat(&[&a, &b], 0);
        let via_stack = Tensor::stack(&[&a.reshape(&[2, 2]), &b.reshape(&[2, 2])]);
        assert_eq!(via_stack, via_concat);
    }

    #[test]
    #[should_panic(expected = "stack shape mismatch")]
    fn stack_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let _ = Tensor::stack(&[&a, &b]);
    }
}
