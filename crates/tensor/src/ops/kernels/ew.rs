//! Elementwise kernels: exact per-element arithmetic (threaded, trivially
//! bit-identical) and tier-dispatched SIMD for the transcendental-heavy
//! GELU forward/backward.
//!
//! The arithmetic kernels (`binary`, `axpy`, `scale`, …) are pure
//! per-element IEEE-754 single operations: any vectorisation — including
//! the compiler's — produces the same bits lane-for-lane, so they carry no
//! tier dispatch, only fixed-block thread partitioning. GELU is different:
//! its scalar form branches (the `fast_tanh` clamp), which blocks
//! autovectorisation, so the SIMD tiers re-express the *identical*
//! operation sequence branch-free (compare + blend, plain mul/add, no FMA
//! contraction) and are verified bit-for-bit against the scalar form by
//! the differential suite.

use super::simd::SimdVec;
#[cfg(target_arch = "x86_64")]
use super::simd::{V16, V8};
use super::{par_chunks_mut, par_rows_mut, Tier, EW_BLOCK};
use crate::ops::{gelu_grad_scalar, gelu_scalar};

/// Binary elementwise operation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bin {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

/// `out[i] = a[i] ⊕ b[i]` (parallel, exact per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn binary(op: Bin, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "binary length mismatch");
    assert_eq!(a.len(), out.len(), "binary output length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let aa = &a[start..start + chunk.len()];
        let bb = &b[start..start + chunk.len()];
        match op {
            Bin::Add => {
                for ((o, &x), &y) in chunk.iter_mut().zip(aa).zip(bb) {
                    *o = x + y;
                }
            }
            Bin::Sub => {
                for ((o, &x), &y) in chunk.iter_mut().zip(aa).zip(bb) {
                    *o = x - y;
                }
            }
            Bin::Mul => {
                for ((o, &x), &y) in chunk.iter_mut().zip(aa).zip(bb) {
                    *o = x * y;
                }
            }
            Bin::Div => {
                for ((o, &x), &y) in chunk.iter_mut().zip(aa).zip(bb) {
                    *o = x / y;
                }
            }
        }
    });
}

/// `out[i] += b[i]` (parallel, exact per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn add_assign(out: &mut [f32], b: &[f32]) {
    assert_eq!(out.len(), b.len(), "add_assign length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &y) in chunk.iter_mut().zip(&b[start..start + n]) {
            *o += y;
        }
    });
}

/// `out[i] -= b[i]` (parallel, exact per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn sub_assign(out: &mut [f32], b: &[f32]) {
    assert_eq!(out.len(), b.len(), "sub_assign length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &y) in chunk.iter_mut().zip(&b[start..start + n]) {
            *o -= y;
        }
    });
}

/// `out[i] += s * b[i]` — the axpy of gradient accumulation and optimiser
/// updates (parallel, exact per element: plain mul then add, no FMA).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn axpy(s: f32, b: &[f32], out: &mut [f32]) {
    assert_eq!(out.len(), b.len(), "axpy length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &y) in chunk.iter_mut().zip(&b[start..start + n]) {
            *o += s * y;
        }
    });
}

/// `out[i] = x[i] * s` (parallel, exact per element).
pub fn scale(x: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "scale length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &v) in chunk.iter_mut().zip(&x[start..start + n]) {
            *o = v * s;
        }
    });
}

/// `out[i] = x[i] + s` (parallel, exact per element).
pub fn add_scalar(x: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "add_scalar length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &v) in chunk.iter_mut().zip(&x[start..start + n]) {
            *o = v + s;
        }
    });
}

/// `out[i] = x[i] * x[i]` (parallel, exact per element).
pub fn square(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "square length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &v) in chunk.iter_mut().zip(&x[start..start + n]) {
            *o = v * v;
        }
    });
}

/// `out[i] = max(x[i], 0)` (parallel, exact per element; NaN maps to 0
/// like `f32::max`).
pub fn relu(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "relu length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let n = chunk.len();
        for (o, &v) in chunk.iter_mut().zip(&x[start..start + n]) {
            *o = v.max(0.0);
        }
    });
}

/// `out[i] = (a[i] - b[i]) * s` — the fused MSE input-gradient pass
/// (parallel, exact per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn scaled_diff(a: &[f32], b: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "scaled_diff length mismatch");
    assert_eq!(a.len(), out.len(), "scaled_diff output length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let aa = &a[start..start + chunk.len()];
        let bb = &b[start..start + chunk.len()];
        for ((o, &x), &y) in chunk.iter_mut().zip(aa).zip(bb) {
            *o = (x - y) * s;
        }
    });
}

/// `out[i] = ((a[i] - b[i]) * m[i]) * s` — the fused masked-MSE
/// input-gradient pass (parallel, exact per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn masked_scaled_diff(a: &[f32], b: &[f32], m: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "masked_scaled_diff length mismatch");
    assert_eq!(a.len(), m.len(), "masked_scaled_diff mask length mismatch");
    assert_eq!(a.len(), out.len(), "masked_scaled_diff output length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let aa = &a[start..start + chunk.len()];
        let bb = &b[start..start + chunk.len()];
        let mm = &m[start..start + chunk.len()];
        for (((o, &x), &y), &w) in chunk.iter_mut().zip(aa).zip(bb).zip(mm) {
            *o = ((x - y) * w) * s;
        }
    });
}

/// Sign subgradient of `|a - b|` scaled by `s`: `s` where `a > b`, `-s`
/// where `a < b`, `0` elsewhere (including NaN). The fused MAE
/// input-gradient pass (parallel, exact per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn sign_scaled(a: &[f32], b: &[f32], s: f32, out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "sign_scaled length mismatch");
    assert_eq!(a.len(), out.len(), "sign_scaled output length mismatch");
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let aa = &a[start..start + chunk.len()];
        let bb = &b[start..start + chunk.len()];
        for ((o, &x), &y) in chunk.iter_mut().zip(aa).zip(bb) {
            let d = x - y;
            *o = if d > 0.0 {
                s
            } else if d < 0.0 {
                -s
            } else {
                0.0
            };
        }
    });
}

/// Broadcast-add of a bias over contiguous rows: `out[r*d + j] += bias[j]`
/// (parallel over fixed row blocks, exact per element).
///
/// # Panics
/// Panics if `out.len()` is not a multiple of `bias.len()`.
pub fn add_bias(out: &mut [f32], bias: &[f32]) {
    let d = bias.len();
    assert!(d > 0, "add_bias with empty bias");
    assert_eq!(out.len() % d, 0, "add_bias length not a multiple of bias");
    let rows = out.len() / d;
    par_rows_mut(out, rows, d, |_b, _r0, chunk| {
        for row in chunk.chunks_exact_mut(d) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// GELU forward/backward: tier-dispatched SIMD.
// ---------------------------------------------------------------------------

/// Vector transcription of [`crate::ops::fast_tanh`]: identical constants
/// and operation order, with the ±4.97 clamps expressed as ordered-quiet
/// compare + blend (NaN lanes fall through to the rational form, exactly
/// like the scalar branches).
#[inline(always)]
unsafe fn fast_tanh_v<V: SimdVec>(x: V) -> V {
    let x2 = V::mul(x, x);
    let p = V::mul(
        x,
        V::add(
            V::splat(135_135.0),
            V::mul(
                x2,
                V::add(V::splat(17_325.0), V::mul(x2, V::add(V::splat(378.0), x2))),
            ),
        ),
    );
    let q = V::add(
        V::splat(135_135.0),
        V::mul(
            x2,
            V::add(
                V::splat(62_370.0),
                V::mul(x2, V::add(V::splat(3_150.0), V::mul(x2, V::splat(28.0)))),
            ),
        ),
    );
    let r = V::div(p, q);
    let r = V::select_ge(r, x, V::splat(4.97), V::splat(1.0));
    V::select_le(r, x, V::splat(-4.97), V::splat(-1.0))
}

/// Vector transcription of [`gelu_scalar`] — same constants, same
/// left-associated operation order, no FMA.
#[inline(always)]
unsafe fn gelu_v<V: SimdVec>(x: V) -> V {
    const C: f32 = 0.797_884_6; // sqrt(2/pi), as in gelu_scalar
    let x3 = V::mul(V::mul(V::mul(V::splat(0.044715), x), x), x);
    let inner = V::mul(V::splat(C), V::add(x, x3));
    let t = fast_tanh_v(inner);
    V::mul(V::mul(V::splat(0.5), x), V::add(V::splat(1.0), t))
}

/// Vector transcription of [`gelu_grad_scalar`].
#[inline(always)]
unsafe fn gelu_grad_v<V: SimdVec>(x: V) -> V {
    const C: f32 = 0.797_884_6;
    let x3 = V::mul(V::mul(x, x), x);
    let inner = V::mul(V::splat(C), V::add(x, V::mul(V::splat(0.044715), x3)));
    let t = fast_tanh_v(inner);
    let sech2 = V::sub(V::splat(1.0), V::mul(t, t));
    let term1 = V::mul(V::splat(0.5), V::add(V::splat(1.0), t));
    let poly = V::add(
        V::splat(1.0),
        V::mul(V::mul(V::splat(3.0 * 0.044715), x), x),
    );
    let term2 = V::mul(
        V::mul(V::mul(V::mul(V::splat(0.5), x), sech2), V::splat(C)),
        poly,
    );
    V::add(term1, term2)
}

#[inline(always)]
unsafe fn gelu_body<V: SimdVec>(x: &[f32], out: &mut [f32]) {
    let n = x.len();
    let mut i = 0;
    while i + V::W <= n {
        gelu_v(V::load(x.as_ptr().add(i))).store(out.as_mut_ptr().add(i));
        i += V::W;
    }
    for j in i..n {
        out[j] = gelu_scalar(x[j]);
    }
}

#[inline(always)]
unsafe fn gelu_bwd_body<V: SimdVec>(x: &[f32], dy: &[f32], out: &mut [f32]) {
    let n = x.len();
    let mut i = 0;
    while i + V::W <= n {
        let g = gelu_grad_v(V::load(x.as_ptr().add(i)));
        let d = V::load(dy.as_ptr().add(i));
        V::mul(d, g).store(out.as_mut_ptr().add(i));
        i += V::W;
    }
    for j in i..n {
        out[j] = dy[j] * gelu_grad_scalar(x[j]);
    }
}

/// GELU (tanh approximation), tier-dispatched and parallel; bit-identical
/// to `gelu_scalar` applied per element on every tier.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn gelu(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "gelu length mismatch");
    let t = super::tier();
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        gelu_chunk(t, &x[start..start + chunk.len()], chunk);
    });
}

#[inline]
fn gelu_chunk(t: Tier, x: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx")]
        unsafe fn avx2(x: &[f32], out: &mut [f32]) {
            gelu_body::<V8>(x, out)
        }
        #[target_feature(enable = "avx512f")]
        unsafe fn avx512(x: &[f32], out: &mut [f32]) {
            gelu_body::<V16>(x, out)
        }
        match t {
            // SAFETY: dispatch only selects a tier the CPU supports.
            Tier::Avx512 => return unsafe { avx512(x, out) },
            Tier::Fma => return unsafe { avx2(x, out) },
            Tier::Scalar => {}
        }
    }
    let _ = t;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = gelu_scalar(v);
    }
}

/// Fused GELU backward: `out[i] = dy[i] * gelu'(x[i])`, tier-dispatched
/// and parallel; bit-identical to the scalar composition on every tier.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn gelu_bwd(x: &[f32], dy: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), dy.len(), "gelu_bwd length mismatch");
    assert_eq!(x.len(), out.len(), "gelu_bwd output length mismatch");
    let t = super::tier();
    par_chunks_mut(out, EW_BLOCK, |start, chunk| {
        let end = start + chunk.len();
        gelu_bwd_chunk(t, &x[start..end], &dy[start..end], chunk);
    });
}

#[inline]
fn gelu_bwd_chunk(t: Tier, x: &[f32], dy: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx")]
        unsafe fn avx2(x: &[f32], dy: &[f32], out: &mut [f32]) {
            gelu_bwd_body::<V8>(x, dy, out)
        }
        #[target_feature(enable = "avx512f")]
        unsafe fn avx512(x: &[f32], dy: &[f32], out: &mut [f32]) {
            gelu_bwd_body::<V16>(x, dy, out)
        }
        match t {
            // SAFETY: dispatch only selects a tier the CPU supports.
            Tier::Avx512 => return unsafe { avx512(x, dy, out) },
            Tier::Fma => return unsafe { avx2(x, dy, out) },
            Tier::Scalar => {}
        }
    }
    let _ = t;
    for ((o, &v), &d) in out.iter_mut().zip(x).zip(dy) {
        *o = d * gelu_grad_scalar(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn binary_ops_small() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        let mut out = [0.0f32; 3];
        binary(Bin::Add, &a, &b, &mut out);
        assert_eq!(out, [5.0, 7.0, 9.0]);
        binary(Bin::Mul, &a, &b, &mut out);
        assert_eq!(out, [4.0, 10.0, 18.0]);
    }

    #[test]
    fn simd_gelu_matches_scalar_bitwise() {
        // The in-module sanity check; the cross-tier sweep lives in the
        // differential suite.
        let mut rng = Rng::seed_from(11);
        let mut x: Vec<f32> = (0..1000).map(|_| 4.0 * rng.normal()).collect();
        x.extend_from_slice(&[f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0, 4.97, -4.97]);
        let mut out = vec![0.0f32; x.len()];
        gelu(&x, &mut out);
        for (i, (&xi, &oi)) in x.iter().zip(&out).enumerate() {
            let want = gelu_scalar(xi);
            assert_eq!(oi.to_bits(), want.to_bits(), "i={i} x={xi} got {oi} want {want}");
        }
        let dy: Vec<f32> = (0..x.len()).map(|_| rng.normal()).collect();
        let mut dx = vec![0.0f32; x.len()];
        gelu_bwd(&x, &dy, &mut dx);
        for (i, ((&xi, &di), &gi)) in x.iter().zip(&dy).zip(&dx).enumerate() {
            let want = di * gelu_grad_scalar(xi);
            assert_eq!(gi.to_bits(), want.to_bits(), "i={i} x={xi}");
        }
    }

    #[test]
    fn add_bias_rows() {
        let mut out = vec![0.0f32, 0.0, 0.0, 1.0, 1.0, 1.0];
        add_bias(&mut out, &[1.0, 2.0, 3.0]);
        assert_eq!(out, [1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
    }
}
