//! Minimal SIMD vector abstraction shared by the kernel tiers.
//!
//! One generic kernel body is written against [`SimdVec`] and instantiated
//! three times: `F1` (scalar, 16 one-lane "vectors"), `V8` (AVX2 tier, two
//! 8-lane registers), and `V16` (AVX-512, one 16-lane register). Because
//! the virtual 16-lane accumulator layout is identical in all three
//! instantiations, the tiers are bit-identical by construction.
//!
//! Methods are `unsafe` because the x86 impls require their ISA extension
//! to be enabled; dispatch guarantees this by feature-detecting before
//! selecting a tier, and the public entry points wrap the generic body in
//! `#[target_feature]` shims.

/// A pack of `W` f32 lanes with the handful of operations kernels need.
///
/// All operations are exact per-element IEEE-754 single ops (no FMA
/// contraction, no reassociation), so every implementation produces the
/// same bits for the same lanes.
pub(crate) trait SimdVec: Copy {
    /// Lane count.
    const W: usize;
    /// Broadcast one value to all lanes.
    unsafe fn splat(v: f32) -> Self;
    /// Unaligned load of `W` consecutive f32s.
    unsafe fn load(p: *const f32) -> Self;
    /// Unaligned store of `W` consecutive f32s.
    unsafe fn store(self, p: *mut f32);
    /// Lanewise `a + b`.
    unsafe fn add(a: Self, b: Self) -> Self;
    /// Lanewise `a - b`.
    unsafe fn sub(a: Self, b: Self) -> Self;
    /// Lanewise `a * b`.
    unsafe fn mul(a: Self, b: Self) -> Self;
    /// Lanewise `a / b`.
    unsafe fn div(a: Self, b: Self) -> Self;
    /// Lanewise sign-bit clear (`f32::abs` bit semantics, NaN included).
    unsafe fn abs(a: Self) -> Self;
    /// Lanewise `if v > acc { v } else { acc }` — NaN `v` keeps `acc`,
    /// and `+0.0 > -0.0` is false so the first-seen zero wins.
    unsafe fn pick_gt(acc: Self, v: Self) -> Self;
    /// Lanewise `if v < acc { v } else { acc }` (same NaN/zero rules).
    unsafe fn pick_lt(acc: Self, v: Self) -> Self;
    /// Lanewise `if v >= thr { hi } else { a }` — NaN `v` keeps `a`.
    unsafe fn select_ge(a: Self, v: Self, thr: Self, hi: Self) -> Self;
    /// Lanewise `if v <= thr { lo } else { a }` — NaN `v` keeps `a`.
    unsafe fn select_le(a: Self, v: Self, thr: Self, lo: Self) -> Self;
}

/// Scalar "vector" of one lane: the portable tier and the shape of the
/// reduction specification itself.
#[derive(Clone, Copy)]
pub(crate) struct F1(pub f32);

impl SimdVec for F1 {
    const W: usize = 1;
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        F1(v)
    }
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self {
        F1(*p)
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f32) {
        *p = self.0;
    }
    #[inline(always)]
    unsafe fn add(a: Self, b: Self) -> Self {
        F1(a.0 + b.0)
    }
    #[inline(always)]
    unsafe fn sub(a: Self, b: Self) -> Self {
        F1(a.0 - b.0)
    }
    #[inline(always)]
    unsafe fn mul(a: Self, b: Self) -> Self {
        F1(a.0 * b.0)
    }
    #[inline(always)]
    unsafe fn div(a: Self, b: Self) -> Self {
        F1(a.0 / b.0)
    }
    #[inline(always)]
    unsafe fn abs(a: Self) -> Self {
        F1(f32::from_bits(a.0.to_bits() & 0x7fff_ffff))
    }
    #[inline(always)]
    unsafe fn pick_gt(acc: Self, v: Self) -> Self {
        if v.0 > acc.0 {
            v
        } else {
            acc
        }
    }
    #[inline(always)]
    unsafe fn pick_lt(acc: Self, v: Self) -> Self {
        if v.0 < acc.0 {
            v
        } else {
            acc
        }
    }
    #[inline(always)]
    unsafe fn select_ge(a: Self, v: Self, thr: Self, hi: Self) -> Self {
        if v.0 >= thr.0 {
            hi
        } else {
            a
        }
    }
    #[inline(always)]
    unsafe fn select_le(a: Self, v: Self, thr: Self, lo: Self) -> Self {
        if v.0 <= thr.0 {
            lo
        } else {
            a
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{V16, V8};

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::SimdVec;
    use std::arch::x86_64::*;

    /// AVX 8-lane vector (the FMA tier uses two of these per 16-lane group).
    #[derive(Clone, Copy)]
    pub(crate) struct V8(pub __m256);

    impl SimdVec for V8 {
        const W: usize = 8;
        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            V8(_mm256_set1_ps(v))
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            V8(_mm256_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm256_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(a: Self, b: Self) -> Self {
            V8(_mm256_add_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn sub(a: Self, b: Self) -> Self {
            V8(_mm256_sub_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn mul(a: Self, b: Self) -> Self {
            V8(_mm256_mul_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn div(a: Self, b: Self) -> Self {
            V8(_mm256_div_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn abs(a: Self) -> Self {
            V8(_mm256_andnot_ps(_mm256_set1_ps(-0.0), a.0))
        }
        #[inline(always)]
        unsafe fn pick_gt(acc: Self, v: Self) -> Self {
            // v > acc is ordered-quiet: NaN lanes compare false, keep acc.
            let m = _mm256_cmp_ps::<_CMP_GT_OQ>(v.0, acc.0);
            V8(_mm256_blendv_ps(acc.0, v.0, m))
        }
        #[inline(always)]
        unsafe fn pick_lt(acc: Self, v: Self) -> Self {
            let m = _mm256_cmp_ps::<_CMP_LT_OQ>(v.0, acc.0);
            V8(_mm256_blendv_ps(acc.0, v.0, m))
        }
        #[inline(always)]
        unsafe fn select_ge(a: Self, v: Self, thr: Self, hi: Self) -> Self {
            let m = _mm256_cmp_ps::<_CMP_GE_OQ>(v.0, thr.0);
            V8(_mm256_blendv_ps(a.0, hi.0, m))
        }
        #[inline(always)]
        unsafe fn select_le(a: Self, v: Self, thr: Self, lo: Self) -> Self {
            let m = _mm256_cmp_ps::<_CMP_LE_OQ>(v.0, thr.0);
            V8(_mm256_blendv_ps(a.0, lo.0, m))
        }
    }

    /// AVX-512 16-lane vector: one register holds a whole lane group.
    #[derive(Clone, Copy)]
    pub(crate) struct V16(pub __m512);

    impl SimdVec for V16 {
        const W: usize = 16;
        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            V16(_mm512_set1_ps(v))
        }
        #[inline(always)]
        unsafe fn load(p: *const f32) -> Self {
            V16(_mm512_loadu_ps(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f32) {
            _mm512_storeu_ps(p, self.0)
        }
        #[inline(always)]
        unsafe fn add(a: Self, b: Self) -> Self {
            V16(_mm512_add_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn sub(a: Self, b: Self) -> Self {
            V16(_mm512_sub_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn mul(a: Self, b: Self) -> Self {
            V16(_mm512_mul_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn div(a: Self, b: Self) -> Self {
            V16(_mm512_div_ps(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn abs(a: Self) -> Self {
            V16(_mm512_abs_ps(a.0))
        }
        #[inline(always)]
        unsafe fn pick_gt(acc: Self, v: Self) -> Self {
            let m = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v.0, acc.0);
            V16(_mm512_mask_blend_ps(m, acc.0, v.0))
        }
        #[inline(always)]
        unsafe fn pick_lt(acc: Self, v: Self) -> Self {
            let m = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(v.0, acc.0);
            V16(_mm512_mask_blend_ps(m, acc.0, v.0))
        }
        #[inline(always)]
        unsafe fn select_ge(a: Self, v: Self, thr: Self, hi: Self) -> Self {
            let m = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(v.0, thr.0);
            V16(_mm512_mask_blend_ps(m, a.0, hi.0))
        }
        #[inline(always)]
        unsafe fn select_le(a: Self, v: Self, thr: Self, lo: Self) -> Self {
            let m = _mm512_cmp_ps_mask::<_CMP_LE_OQ>(v.0, thr.0);
            V16(_mm512_mask_blend_ps(m, a.0, lo.0))
        }
    }
}
