//! Reduction kernels implementing the fixed 16-lane / fixed-block-order
//! accumulation specification (see the module docs of
//! [`crate::ops::kernels`]).
//!
//! Every reduction is defined by three nested, fully deterministic folds:
//!
//! 1. **Lane accumulation** — within one block, element `i` updates
//!    virtual lane `i % LANES`.
//! 2. **Lane fold** — the 16 lanes combine in a fixed pairwise tree
//!    (`l[j] ⊕= l[j+8]`, then `+4`, `+2`, finally `l[0] ⊕ l[1]`).
//! 3. **Block fold** — block partials combine sequentially in block
//!    order, starting from the reduction's identity.
//!
//! The SIMD tiers implement step 1 with registers (AVX-512: one 16-lane
//! register; AVX2: two 8-lane registers covering lanes 0–7 and 8–15) and
//! steps 2–3 in scalar code shared with the portable tier, so all tiers
//! produce identical bits. Thread parallelism distributes whole blocks and
//! never changes any fold order.

use super::simd::{SimdVec, F1};
#[cfg(target_arch = "x86_64")]
use super::simd::{V16, V8};
use super::{SendPtr, Tier, LANES, PAR_MIN, RED_BLOCK};
use crate::pool;

/// An additive reduction's per-element term. `a`/`b` are the two input
/// streams (single-input reductions are called with `b = a` and ignore
/// it); `c` is a broadcast constant (e.g. the mean for centered sums).
trait RedOp {
    fn scalar(a: f32, b: f32, c: f32) -> f32;
    /// Vector form of [`RedOp::scalar`] — must use the same operations in
    /// the same order (exact per-element ops only).
    unsafe fn vec<V: SimdVec>(a: V, b: V, c: V) -> V;
}

/// `Σ a`
struct SumOp;
impl RedOp for SumOp {
    #[inline(always)]
    fn scalar(a: f32, _b: f32, _c: f32) -> f32 {
        a
    }
    #[inline(always)]
    unsafe fn vec<V: SimdVec>(a: V, _b: V, _c: V) -> V {
        a
    }
}

/// `Σ a·a`
struct SumSqOp;
impl RedOp for SumSqOp {
    #[inline(always)]
    fn scalar(a: f32, _b: f32, _c: f32) -> f32 {
        a * a
    }
    #[inline(always)]
    unsafe fn vec<V: SimdVec>(a: V, _b: V, _c: V) -> V {
        V::mul(a, a)
    }
}

/// `Σ a·b`
struct DotOp;
impl RedOp for DotOp {
    #[inline(always)]
    fn scalar(a: f32, b: f32, _c: f32) -> f32 {
        a * b
    }
    #[inline(always)]
    unsafe fn vec<V: SimdVec>(a: V, b: V, _c: V) -> V {
        V::mul(a, b)
    }
}

/// `Σ (a-b)²`
struct SseOp;
impl RedOp for SseOp {
    #[inline(always)]
    fn scalar(a: f32, b: f32, _c: f32) -> f32 {
        let d = a - b;
        d * d
    }
    #[inline(always)]
    unsafe fn vec<V: SimdVec>(a: V, b: V, _c: V) -> V {
        let d = V::sub(a, b);
        V::mul(d, d)
    }
}

/// `Σ |a-b|`
struct SadOp;
impl RedOp for SadOp {
    #[inline(always)]
    fn scalar(a: f32, b: f32, _c: f32) -> f32 {
        f32::from_bits((a - b).to_bits() & 0x7fff_ffff)
    }
    #[inline(always)]
    unsafe fn vec<V: SimdVec>(a: V, b: V, _c: V) -> V {
        V::abs(V::sub(a, b))
    }
}

/// `Σ (a-c)²` — centered sum of squares against a broadcast constant.
struct CenteredSqOp;
impl RedOp for CenteredSqOp {
    #[inline(always)]
    fn scalar(a: f32, _b: f32, c: f32) -> f32 {
        let d = a - c;
        d * d
    }
    #[inline(always)]
    unsafe fn vec<V: SimdVec>(a: V, _b: V, c: V) -> V {
        let d = V::sub(a, c);
        V::mul(d, d)
    }
}

/// Fixed pairwise lane-fold tree: 16 → 8 → 4 → 2 → 1.
#[inline(always)]
fn fold_lanes(mut l: [f32; LANES], f: impl Fn(f32, f32) -> f32) -> f32 {
    for j in 0..8 {
        l[j] = f(l[j], l[j + 8]);
    }
    for j in 0..4 {
        l[j] = f(l[j], l[j + 4]);
    }
    for j in 0..2 {
        l[j] = f(l[j], l[j + 2]);
    }
    f(l[0], l[1])
}

/// One block of an additive reduction, generic over op and vector width.
/// `K = LANES / V::W` vectors cover one 16-lane group.
#[inline(always)]
unsafe fn additive_block<O: RedOp, V: SimdVec, const K: usize>(
    a: &[f32],
    b: &[f32],
    c: f32,
) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(V::W * K, LANES);
    let n = a.len();
    let cv = V::splat(c);
    let mut acc = [V::splat(0.0); K];
    let groups = n / LANES;
    for g in 0..groups {
        let base = g * LANES;
        for (k, av) in acc.iter_mut().enumerate() {
            let x = V::load(a.as_ptr().add(base + k * V::W));
            let y = V::load(b.as_ptr().add(base + k * V::W));
            *av = V::add(*av, O::vec(x, y, cv));
        }
    }
    let mut lanes = [0.0f32; LANES];
    for (k, av) in acc.iter().enumerate() {
        av.store(lanes.as_mut_ptr().add(k * V::W));
    }
    let base = groups * LANES;
    for i in base..n {
        lanes[i - base] += O::scalar(a[i], b[i], c);
    }
    fold_lanes(lanes, |x, y| x + y)
}

macro_rules! additive_shims {
    ($op:ty, $name:ident) => {
        #[inline]
        fn $name(t: Tier, a: &[f32], b: &[f32], c: f32) -> f32 {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx")]
                unsafe fn avx2(a: &[f32], b: &[f32], c: f32) -> f32 {
                    additive_block::<$op, V8, 2>(a, b, c)
                }
                #[target_feature(enable = "avx512f")]
                unsafe fn avx512(a: &[f32], b: &[f32], c: f32) -> f32 {
                    additive_block::<$op, V16, 1>(a, b, c)
                }
                match t {
                    // SAFETY: dispatch only selects a tier the CPU supports.
                    Tier::Avx512 => return unsafe { avx512(a, b, c) },
                    Tier::Fma => return unsafe { avx2(a, b, c) },
                    Tier::Scalar => {}
                }
            }
            let _ = t;
            // SAFETY: the scalar instantiation performs no SIMD.
            unsafe { additive_block::<$op, F1, 16>(a, b, c) }
        }
    };
}

additive_shims!(SumOp, sum_block);
additive_shims!(SumSqOp, sumsq_block);
additive_shims!(DotOp, dot_block);
additive_shims!(SseOp, sse_block);
additive_shims!(SadOp, sad_block);
additive_shims!(CenteredSqOp, centered_sq_block);

/// Sequential block-fold driver: cuts `[0, n)` into `RED_BLOCK` blocks and
/// folds their partials in block order starting from `init`.
#[inline]
fn run_seq(n: usize, init: f32, combine: impl Fn(f32, f32) -> f32, block: impl Fn(usize, usize) -> f32) -> f32 {
    let mut acc = init;
    let mut start = 0;
    while start < n {
        let end = (start + RED_BLOCK).min(n);
        acc = combine(acc, block(start, end));
        start = end;
    }
    acc
}

/// Parallel block-fold driver: identical block decomposition and fold
/// order as [`run_seq`]; threads only change which worker computes each
/// partial.
fn run_par(
    n: usize,
    init: f32,
    combine: impl Fn(f32, f32) -> f32,
    block: impl Fn(usize, usize) -> f32 + Sync,
) -> f32 {
    let n_blocks = n.div_ceil(RED_BLOCK);
    let threads = if n >= PAR_MIN { pool::num_threads() } else { 1 };
    if threads <= 1 || n_blocks <= 1 {
        return run_seq(n, init, combine, block);
    }
    let mut partials = vec![init; n_blocks];
    let ptr = SendPtr(partials.as_mut_ptr());
    pool::parallel_tiles(n_blocks, threads, |b| {
        let ptr = &ptr;
        let start = b * RED_BLOCK;
        let end = (start + RED_BLOCK).min(n);
        // SAFETY: each tile writes exactly one distinct partial slot.
        unsafe { ptr.0.add(b).write(block(start, end)) };
    });
    partials.into_iter().fold(init, combine)
}

// ---------------------------------------------------------------------------
// Public API — parallel entry points (Tensor-level callers).
// ---------------------------------------------------------------------------

/// Sum of all elements (parallel; fixed-order spec).
pub fn sum(x: &[f32]) -> f32 {
    let t = super::tier();
    run_par(x.len(), 0.0, |a, b| a + b, |s, e| sum_block(t, &x[s..e], &x[s..e], 0.0))
}

/// Sum of squares of all elements (parallel).
pub fn sumsq(x: &[f32]) -> f32 {
    let t = super::tier();
    run_par(x.len(), 0.0, |a, b| a + b, |s, e| sumsq_block(t, &x[s..e], &x[s..e], 0.0))
}

/// Dot product `Σ a[i]·b[i]` (parallel).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let t = super::tier();
    run_par(a.len(), 0.0, |x, y| x + y, |s, e| dot_block(t, &a[s..e], &b[s..e], 0.0))
}

/// Sum of squared errors `Σ (a[i]-b[i])²` (parallel).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sse length mismatch");
    let t = super::tier();
    run_par(a.len(), 0.0, |x, y| x + y, |s, e| sse_block(t, &a[s..e], &b[s..e], 0.0))
}

/// Sum of absolute errors `Σ |a[i]-b[i]|` (parallel).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sad(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sad length mismatch");
    let t = super::tier();
    run_par(a.len(), 0.0, |x, y| x + y, |s, e| sad_block(t, &a[s..e], &b[s..e], 0.0))
}

/// Centered sum of squares `Σ (x[i]-c)²` (parallel).
pub fn centered_sumsq(x: &[f32], c: f32) -> f32 {
    let t = super::tier();
    run_par(x.len(), 0.0, |a, b| a + b, |s, e| centered_sq_block(t, &x[s..e], &x[s..e], c))
}

/// Masked squared-error pass for imputation losses: returns
/// `(Σ (m[i]·d)·d, Σ m[i])` with `d = a[i]-b[i]`, fused into one sweep
/// over the three streams (parallel). The two accumulations are
/// independent, so fusing them is bit-identical to two separate
/// reductions under the same spec.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn masked_sse(a: &[f32], b: &[f32], m: &[f32]) -> (f32, f32) {
    assert_eq!(a.len(), b.len(), "masked_sse length mismatch");
    assert_eq!(a.len(), m.len(), "masked_sse mask length mismatch");
    let t = super::tier();
    let n = a.len();
    let n_blocks = n.div_ceil(RED_BLOCK);
    let threads = if n >= PAR_MIN { pool::num_threads() } else { 1 };
    let combine = |x: (f32, f32), y: (f32, f32)| (x.0 + y.0, x.1 + y.1);
    let block = |s: usize, e: usize| masked_sse_block(t, &a[s..e], &b[s..e], &m[s..e]);
    if threads <= 1 || n_blocks <= 1 {
        let mut acc = (0.0f32, 0.0f32);
        let mut start = 0;
        while start < n {
            let end = (start + RED_BLOCK).min(n);
            acc = combine(acc, block(start, end));
            start = end;
        }
        return acc;
    }
    let mut partials = vec![(0.0f32, 0.0f32); n_blocks];
    let ptr = SendPtr(partials.as_mut_ptr());
    pool::parallel_tiles(n_blocks, threads, |bi| {
        let ptr = &ptr;
        let start = bi * RED_BLOCK;
        let end = (start + RED_BLOCK).min(n);
        // SAFETY: each tile writes exactly one distinct partial slot.
        unsafe { ptr.0.add(bi).write(block(start, end)) };
    });
    partials.into_iter().fold((0.0, 0.0), combine)
}

/// One block of the fused masked-SSE pass: two lane sets updated in one
/// sweep, each folded by the standard tree.
#[inline]
fn masked_sse_block(t: Tier, a: &[f32], b: &[f32], m: &[f32]) -> (f32, f32) {
    #[inline(always)]
    unsafe fn body<V: SimdVec, const K: usize>(a: &[f32], b: &[f32], m: &[f32]) -> (f32, f32) {
        let n = a.len();
        let mut acc = [V::splat(0.0); K];
        let mut cnt = [V::splat(0.0); K];
        let groups = n / LANES;
        for g in 0..groups {
            let base = g * LANES;
            for k in 0..K {
                let x = V::load(a.as_ptr().add(base + k * V::W));
                let y = V::load(b.as_ptr().add(base + k * V::W));
                let w = V::load(m.as_ptr().add(base + k * V::W));
                let d = V::sub(x, y);
                acc[k] = V::add(acc[k], V::mul(V::mul(w, d), d));
                cnt[k] = V::add(cnt[k], w);
            }
        }
        let mut loss_lanes = [0.0f32; LANES];
        let mut cnt_lanes = [0.0f32; LANES];
        for k in 0..K {
            acc[k].store(loss_lanes.as_mut_ptr().add(k * V::W));
            cnt[k].store(cnt_lanes.as_mut_ptr().add(k * V::W));
        }
        let base = groups * LANES;
        for i in base..n {
            let d = a[i] - b[i];
            loss_lanes[i - base] += (m[i] * d) * d;
            cnt_lanes[i - base] += m[i];
        }
        (
            fold_lanes(loss_lanes, |x, y| x + y),
            fold_lanes(cnt_lanes, |x, y| x + y),
        )
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx")]
        unsafe fn avx2(a: &[f32], b: &[f32], m: &[f32]) -> (f32, f32) {
            body::<V8, 2>(a, b, m)
        }
        #[target_feature(enable = "avx512f")]
        unsafe fn avx512(a: &[f32], b: &[f32], m: &[f32]) -> (f32, f32) {
            body::<V16, 1>(a, b, m)
        }
        match t {
            // SAFETY: dispatch only selects a tier the CPU supports.
            Tier::Avx512 => return unsafe { avx512(a, b, m) },
            Tier::Fma => return unsafe { avx2(a, b, m) },
            Tier::Scalar => {}
        }
    }
    let _ = t;
    // SAFETY: scalar instantiation performs no SIMD.
    unsafe { body::<F1, 16>(a, b, m) }
}

/// Maximum element (parallel). `-inf` for an empty slice. NaN elements are
/// skipped; `+0.0`/`-0.0` resolve to the first seen (fixed order).
pub fn maxv(x: &[f32]) -> f32 {
    let t = super::tier();
    run_par(
        x.len(),
        f32::NEG_INFINITY,
        pick_max,
        |s, e| minmax_block::<true>(t, &x[s..e]),
    )
}

/// Minimum element (parallel). `+inf` for an empty slice; NaN skipped.
pub fn minv(x: &[f32]) -> f32 {
    let t = super::tier();
    run_par(
        x.len(),
        f32::INFINITY,
        pick_min,
        |s, e| minmax_block::<false>(t, &x[s..e]),
    )
}

#[inline(always)]
fn pick_max(acc: f32, v: f32) -> f32 {
    if v > acc {
        v
    } else {
        acc
    }
}

#[inline(always)]
fn pick_min(acc: f32, v: f32) -> f32 {
    if v < acc {
        v
    } else {
        acc
    }
}

/// One extremum block. `IS_MAX` selects max vs min; the lane update, lane
/// fold, and block fold all use the same `pick` rule.
#[inline]
fn minmax_block<const IS_MAX: bool>(t: Tier, x: &[f32]) -> f32 {
    #[inline(always)]
    unsafe fn body<V: SimdVec, const K: usize, const IS_MAX: bool>(x: &[f32]) -> f32 {
        let init = if IS_MAX { f32::NEG_INFINITY } else { f32::INFINITY };
        let n = x.len();
        let mut acc = [V::splat(init); K];
        let groups = n / LANES;
        for g in 0..groups {
            let base = g * LANES;
            for (k, av) in acc.iter_mut().enumerate() {
                let v = V::load(x.as_ptr().add(base + k * V::W));
                *av = if IS_MAX { V::pick_gt(*av, v) } else { V::pick_lt(*av, v) };
            }
        }
        let mut lanes = [0.0f32; LANES];
        for (k, av) in acc.iter().enumerate() {
            av.store(lanes.as_mut_ptr().add(k * V::W));
        }
        let base = groups * LANES;
        for i in base..n {
            let l = &mut lanes[i - base];
            *l = if IS_MAX { pick_max(*l, x[i]) } else { pick_min(*l, x[i]) };
        }
        fold_lanes(lanes, if IS_MAX { pick_max } else { pick_min })
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "avx")]
        unsafe fn avx2<const IS_MAX: bool>(x: &[f32]) -> f32 {
            body::<V8, 2, IS_MAX>(x)
        }
        #[target_feature(enable = "avx512f")]
        unsafe fn avx512<const IS_MAX: bool>(x: &[f32]) -> f32 {
            body::<V16, 1, IS_MAX>(x)
        }
        match t {
            // SAFETY: dispatch only selects a tier the CPU supports.
            Tier::Avx512 => return unsafe { avx512::<IS_MAX>(x) },
            Tier::Fma => return unsafe { avx2::<IS_MAX>(x) },
            Tier::Scalar => {}
        }
    }
    let _ = t;
    // SAFETY: scalar instantiation performs no SIMD.
    unsafe { body::<F1, 16, IS_MAX>(x) }
}

// ---------------------------------------------------------------------------
// Sequential entry points — for callers that already parallelised an outer
// loop (per-row normalisations, per-row ACF terms) and must not nest pools.
// ---------------------------------------------------------------------------

/// Sequential [`sum`] with an explicit tier (for row loops inside kernels).
pub fn sum_seq(t: Tier, x: &[f32]) -> f32 {
    run_seq(x.len(), 0.0, |a, b| a + b, |s, e| sum_block(t, &x[s..e], &x[s..e], 0.0))
}

/// Sequential [`dot`] with an explicit tier.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_seq(t: Tier, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    run_seq(a.len(), 0.0, |x, y| x + y, |s, e| dot_block(t, &a[s..e], &b[s..e], 0.0))
}

/// Sequential [`centered_sumsq`] with an explicit tier.
pub fn centered_sumsq_seq(t: Tier, x: &[f32], c: f32) -> f32 {
    run_seq(x.len(), 0.0, |a, b| a + b, |s, e| centered_sq_block(t, &x[s..e], &x[s..e], c))
}

/// Sequential [`maxv`] with an explicit tier.
pub fn maxv_seq(t: Tier, x: &[f32]) -> f32 {
    run_seq(x.len(), f32::NEG_INFINITY, pick_max, |s, e| {
        minmax_block::<true>(t, &x[s..e])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn small_exact_values() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(sum(&x), 10.0);
        assert_eq!(sumsq(&x), 30.0);
        assert_eq!(dot(&x, &x), 30.0);
        assert_eq!(sse(&x, &x), 0.0);
        assert_eq!(sad(&[1.0, -2.0], &[0.0, 0.0]), 3.0);
        assert_eq!(maxv(&x), 4.0);
        assert_eq!(minv(&x), 1.0);
        assert_eq!(centered_sumsq(&x, 2.5), 5.0);
    }

    #[test]
    fn empty_inputs_return_identities() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(maxv(&[]), f32::NEG_INFINITY);
        assert_eq!(minv(&[]), f32::INFINITY);
    }

    #[test]
    fn nan_skipped_by_extrema_propagated_by_sums() {
        let x = [1.0f32, f32::NAN, 3.0];
        assert_eq!(maxv(&x), 3.0);
        assert_eq!(minv(&x), 1.0);
        assert!(sum(&x).is_nan());
    }

    #[test]
    fn matches_sequential_across_sizes() {
        // The parallel driver must give the same bits as the sequential
        // one for every size, including non-multiples of LANES/RED_BLOCK.
        let mut rng = Rng::seed_from(7);
        for n in [0usize, 1, 15, 16, 17, 255, 4096, 4097, 40_000] {
            let x: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
            let t = super::super::tier();
            assert_eq!(sum(&x).to_bits(), sum_seq(t, &x).to_bits(), "n={n}");
            assert_eq!(maxv(&x).to_bits(), maxv_seq(t, &x).to_bits(), "n={n}");
        }
    }
}
