//! Naive reference oracles for every dispatched kernel.
//!
//! These are deliberately plain, readable scalar loops that transcribe the
//! kernel layer's accumulation specification directly (fixed blocks,
//! 16 interleaved lanes, fixed pairwise lane fold, in-order block fold).
//! **The oracle defines the semantics**: the dispatched kernels — every
//! SIMD tier, every thread count — must match these functions bit for
//! bit, and `tests/kernels_differential.rs` enforces exactly that over
//! random shapes and NaN/±inf inputs. The oracles share no SIMD
//! machinery, no generics, and no dispatch with the production kernels,
//! so a bug in that machinery cannot hide.

use super::{LANES, RED_BLOCK};
use crate::ops::{gelu_grad_scalar, gelu_scalar};

/// The spec's additive reduction: per-block 16-lane interleaved
/// accumulation of `term(i)`, pairwise lane fold, blocks folded in order.
fn additive_spec(n: usize, term: impl Fn(usize) -> f32) -> f32 {
    let mut acc = 0.0f32;
    let mut start = 0;
    while start < n {
        let end = (start + RED_BLOCK).min(n);
        let mut lanes = [0.0f32; LANES];
        for i in start..end {
            lanes[(i - start) % LANES] += term(i);
        }
        for j in 0..8 {
            lanes[j] += lanes[j + 8];
        }
        for j in 0..4 {
            lanes[j] += lanes[j + 4];
        }
        for j in 0..2 {
            lanes[j] += lanes[j + 2];
        }
        acc += lanes[0] + lanes[1];
        start = end;
    }
    acc
}

/// The spec's extremum reduction. `pick(acc, v)` keeps `acc` unless `v` is
/// strictly better; NaN `v` never wins, and ties (including ±0.0) keep the
/// earlier value.
fn extremum_spec(n: usize, init: f32, pick: impl Fn(f32, f32) -> f32, x: impl Fn(usize) -> f32) -> f32 {
    let mut acc = init;
    let mut start = 0;
    while start < n {
        let end = (start + RED_BLOCK).min(n);
        let mut lanes = [init; LANES];
        for i in start..end {
            let l = (i - start) % LANES;
            lanes[l] = pick(lanes[l], x(i));
        }
        for j in 0..8 {
            lanes[j] = pick(lanes[j], lanes[j + 8]);
        }
        for j in 0..4 {
            lanes[j] = pick(lanes[j], lanes[j + 4]);
        }
        for j in 0..2 {
            lanes[j] = pick(lanes[j], lanes[j + 2]);
        }
        acc = pick(acc, pick(lanes[0], lanes[1]));
        start = end;
    }
    acc
}

/// Reference for [`super::reduce::sum`].
pub fn sum(x: &[f32]) -> f32 {
    additive_spec(x.len(), |i| x[i])
}

/// Reference for [`super::reduce::sumsq`].
pub fn sumsq(x: &[f32]) -> f32 {
    additive_spec(x.len(), |i| x[i] * x[i])
}

/// Reference for [`super::reduce::dot`].
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    additive_spec(a.len(), |i| a[i] * b[i])
}

/// Reference for [`super::reduce::sse`].
pub fn sse(a: &[f32], b: &[f32]) -> f32 {
    additive_spec(a.len(), |i| {
        let d = a[i] - b[i];
        d * d
    })
}

/// Reference for [`super::reduce::sad`].
pub fn sad(a: &[f32], b: &[f32]) -> f32 {
    additive_spec(a.len(), |i| f32::from_bits((a[i] - b[i]).to_bits() & 0x7fff_ffff))
}

/// Reference for [`super::reduce::centered_sumsq`].
pub fn centered_sumsq(x: &[f32], c: f32) -> f32 {
    additive_spec(x.len(), |i| {
        let d = x[i] - c;
        d * d
    })
}

/// Reference for [`super::reduce::masked_sse`]. The fused kernel's two
/// accumulator sets are independent, so the reference is simply the two
/// additive reductions run separately.
pub fn masked_sse(a: &[f32], b: &[f32], m: &[f32]) -> (f32, f32) {
    let loss = additive_spec(a.len(), |i| {
        let d = a[i] - b[i];
        (m[i] * d) * d
    });
    let count = additive_spec(m.len(), |i| m[i]);
    (loss, count)
}

/// Reference for [`super::reduce::maxv`].
pub fn maxv(x: &[f32]) -> f32 {
    extremum_spec(
        x.len(),
        f32::NEG_INFINITY,
        |acc, v| if v > acc { v } else { acc },
        |i| x[i],
    )
}

/// Reference for [`super::reduce::minv`].
pub fn minv(x: &[f32]) -> f32 {
    extremum_spec(
        x.len(),
        f32::INFINITY,
        |acc, v| if v < acc { v } else { acc },
        |i| x[i],
    )
}

/// Reference for [`super::ew::gelu`]: the scalar form per element.
pub fn gelu(x: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = gelu_scalar(v);
    }
}

/// Reference for [`super::ew::gelu_bwd`].
pub fn gelu_bwd(x: &[f32], dy: &[f32], out: &mut [f32]) {
    for ((o, &v), &d) in out.iter_mut().zip(x).zip(dy) {
        *o = d * gelu_grad_scalar(v);
    }
}

/// Reference for [`super::ew::binary`].
pub fn binary(op: super::ew::Bin, a: &[f32], b: &[f32], out: &mut [f32]) {
    use super::ew::Bin;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = match op {
            Bin::Add => x + y,
            Bin::Sub => x - y,
            Bin::Mul => x * y,
            Bin::Div => x / y,
        };
    }
}

/// Reference for [`super::ew::axpy`].
pub fn axpy(s: f32, b: &[f32], out: &mut [f32]) {
    for (o, &y) in out.iter_mut().zip(b) {
        *o += s * y;
    }
}

/// Reference for [`super::ew::scaled_diff`].
pub fn scaled_diff(a: &[f32], b: &[f32], s: f32, out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (x - y) * s;
    }
}

/// Reference for [`super::ew::masked_scaled_diff`].
pub fn masked_scaled_diff(a: &[f32], b: &[f32], m: &[f32], s: f32, out: &mut [f32]) {
    for (((o, &x), &y), &w) in out.iter_mut().zip(a).zip(b).zip(m) {
        *o = ((x - y) * w) * s;
    }
}

/// Reference for [`super::ew::sign_scaled`].
pub fn sign_scaled(a: &[f32], b: &[f32], s: f32, out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        let d = x - y;
        *o = if d > 0.0 {
            s
        } else if d < 0.0 {
            -s
        } else {
            0.0
        };
    }
}

/// Reference for [`super::ew::add_bias`].
pub fn add_bias(out: &mut [f32], bias: &[f32]) {
    for row in out.chunks_exact_mut(bias.len()) {
        for (o, &bv) in row.iter_mut().zip(bias) {
            *o += bv;
        }
    }
}

/// Reference for [`super::norm::layernorm_fwd`]: row-sequential, built on
/// the oracle reductions.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_fwd(
    x: &[f32],
    d: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
) {
    for (r, (orow, row)) in out.chunks_exact_mut(d).zip(x.chunks_exact(d)).enumerate() {
        let m = sum(row) / d as f32;
        let var = centered_sumsq(row, m) / d as f32;
        let rs = 1.0 / (var + eps).sqrt();
        mean[r] = m;
        rstd[r] = rs;
        for ((o, &xv), (&gv, &bv)) in orow.iter_mut().zip(row).zip(gamma.iter().zip(beta)) {
            *o = ((xv - m) * rs) * gv + bv;
        }
    }
}

/// Reference for [`super::norm::layernorm_bwd`]. The `dγ`/`dβ` sums
/// replicate the spec's fixed row-block decomposition ([`super::row_blocks`])
/// so they match the parallel kernel bit for bit: per-block partial sums,
/// folded in block order.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_bwd(
    x: &[f32],
    d: usize,
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let rows = x.len() / d;
    let (rows_per_block, n_blocks) = super::row_blocks(rows, d);
    dgamma.fill(0.0);
    dbeta.fill(0.0);
    let mut xh = vec![0.0f32; d];
    let mut g = vec![0.0f32; d];
    for b in 0..n_blocks {
        let r0 = b * rows_per_block;
        let r1 = (r0 + rows_per_block).min(rows);
        let mut gsum = vec![0.0f32; d];
        let mut bsum = vec![0.0f32; d];
        for r in r0..r1 {
            let row = &x[r * d..(r + 1) * d];
            let dyr = &dy[r * d..(r + 1) * d];
            let dxr = &mut dx[r * d..(r + 1) * d];
            let (m, rs) = (mean[r], rstd[r]);
            for (h, &xv) in xh.iter_mut().zip(row) {
                *h = (xv - m) * rs;
            }
            for ((gv, &dv), &gam) in g.iter_mut().zip(dyr).zip(gamma) {
                *gv = dv * gam;
            }
            let s1 = sum(&g) / d as f32;
            let s2 = dot(&g, &xh) / d as f32;
            for ((o, &gv), &h) in dxr.iter_mut().zip(&g).zip(&xh) {
                *o = ((gv - s1) - h * s2) * rs;
            }
            for ((gs, &dv), &h) in gsum.iter_mut().zip(dyr).zip(&xh) {
                *gs += dv * h;
            }
            for (bs, &dv) in bsum.iter_mut().zip(dyr) {
                *bs += dv;
            }
        }
        for (o, &p) in dgamma.iter_mut().zip(&gsum) {
            *o += p;
        }
        for (o, &p) in dbeta.iter_mut().zip(&bsum) {
            *o += p;
        }
    }
}

/// Reference for [`super::norm::softmax_rows`].
pub fn softmax_rows(x: &[f32], d: usize, out: &mut [f32]) {
    for (orow, row) in out.chunks_exact_mut(d).zip(x.chunks_exact(d)) {
        let m = maxv(row);
        for (o, &xv) in orow.iter_mut().zip(row) {
            *o = (xv - m).exp();
        }
        let inv = 1.0 / sum(orow);
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
}
