//! Normalisation kernels: fused LayerNorm forward/backward and row
//! softmax, parallel over fixed row blocks and built on the spec'd
//! reductions of [`super::reduce`], so results are bit-identical across
//! tiers and thread counts.

use super::reduce::{centered_sumsq_seq, dot_seq, maxv_seq, sum_seq};
use super::{par_rows, par_rows_map_mut, SendPtr};

/// Fused LayerNorm forward over contiguous rows of length `d`:
///
/// ```text
/// mean_r = Σ x_r / d                    (spec'd 16-lane sum)
/// var_r  = Σ (x_r - mean_r)² / d        (spec'd centered sum of squares)
/// rstd_r = 1 / sqrt(var_r + eps)
/// out[j] = ((x[j] - mean_r) * rstd_r) * gamma[j] + beta[j]
/// ```
///
/// `mean`/`rstd` receive one value per row (saved for the backward pass).
///
/// # Panics
/// Panics on any length mismatch.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_fwd(
    x: &[f32],
    d: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
) {
    assert!(d > 0, "layernorm on empty rows");
    assert_eq!(x.len() % d, 0, "layernorm length not a multiple of d");
    let rows = x.len() / d;
    assert_eq!(gamma.len(), d, "layernorm gamma length mismatch");
    assert_eq!(beta.len(), d, "layernorm beta length mismatch");
    assert_eq!(out.len(), x.len(), "layernorm output length mismatch");
    assert_eq!(mean.len(), rows, "layernorm mean length mismatch");
    assert_eq!(rstd.len(), rows, "layernorm rstd length mismatch");
    let t = super::tier();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let mean_ptr = SendPtr(mean.as_mut_ptr());
    let rstd_ptr = SendPtr(rstd.as_mut_ptr());
    par_rows(rows, d, move |_b, r0, n| {
        let (out_ptr, mean_ptr, rstd_ptr) = (&out_ptr, &mean_ptr, &rstd_ptr);
        for r in r0..r0 + n {
            let row = &x[r * d..(r + 1) * d];
            let m = sum_seq(t, row) / d as f32;
            let var = centered_sumsq_seq(t, row, m) / d as f32;
            let rs = 1.0 / (var + eps).sqrt();
            // SAFETY: rows (and their per-row stats) are written by exactly
            // one tile; blocks are disjoint row ranges.
            unsafe {
                *mean_ptr.0.add(r) = m;
                *rstd_ptr.0.add(r) = rs;
                let o = std::slice::from_raw_parts_mut(out_ptr.0.add(r * d), d);
                for ((ov, &xv), (&gv, &bv)) in
                    o.iter_mut().zip(row).zip(gamma.iter().zip(beta))
                {
                    *ov = ((xv - m) * rs) * gv + bv;
                }
            }
        }
    });
}

/// Fused LayerNorm backward. Given the saved per-row `mean`/`rstd`:
///
/// ```text
/// x̂[j]  = (x[j] - mean_r) * rstd_r
/// g[j]  = dy[j] * gamma[j]
/// s1    = Σ g          s2 = Σ g·x̂          (spec'd reductions)
/// dx[j] = ((g[j] - s1/d) - x̂[j] * (s2/d)) * rstd_r
/// dγ[j] = Σ_rows dy[j]·x̂[j]     dβ[j] = Σ_rows dy[j]
/// ```
///
/// The `dγ`/`dβ` sums accumulate per row block and fold in block order, so
/// they are identical for every thread count. `dgamma`/`dbeta` are
/// overwritten.
///
/// # Panics
/// Panics on any length mismatch.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_bwd(
    x: &[f32],
    d: usize,
    gamma: &[f32],
    mean: &[f32],
    rstd: &[f32],
    dy: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    assert!(d > 0, "layernorm on empty rows");
    assert_eq!(x.len() % d, 0, "layernorm length not a multiple of d");
    let rows = x.len() / d;
    assert_eq!(gamma.len(), d, "layernorm gamma length mismatch");
    assert_eq!(mean.len(), rows, "layernorm mean length mismatch");
    assert_eq!(rstd.len(), rows, "layernorm rstd length mismatch");
    assert_eq!(dy.len(), x.len(), "layernorm dy length mismatch");
    assert_eq!(dx.len(), x.len(), "layernorm dx length mismatch");
    assert_eq!(dgamma.len(), d, "layernorm dgamma length mismatch");
    assert_eq!(dbeta.len(), d, "layernorm dbeta length mismatch");
    let t = super::tier();
    let partials: Vec<(Vec<f32>, Vec<f32>)> =
        par_rows_map_mut(dx, rows, d, move |_b, r0, chunk| {
            let mut gsum = vec![0.0f32; d];
            let mut bsum = vec![0.0f32; d];
            let mut xh = vec![0.0f32; d];
            let mut g = vec![0.0f32; d];
            for (i, dxr) in chunk.chunks_exact_mut(d).enumerate() {
                let r = r0 + i;
                let row = &x[r * d..(r + 1) * d];
                let dyr = &dy[r * d..(r + 1) * d];
                let (m, rs) = (mean[r], rstd[r]);
                for (h, &xv) in xh.iter_mut().zip(row) {
                    *h = (xv - m) * rs;
                }
                for ((gv, &dv), &gam) in g.iter_mut().zip(dyr).zip(gamma) {
                    *gv = dv * gam;
                }
                let s1 = sum_seq(t, &g) / d as f32;
                let s2 = dot_seq(t, &g, &xh) / d as f32;
                for ((o, &gv), &h) in dxr.iter_mut().zip(&g).zip(&xh) {
                    *o = ((gv - s1) - h * s2) * rs;
                }
                for ((gs, &dv), &h) in gsum.iter_mut().zip(dyr).zip(&xh) {
                    *gs += dv * h;
                }
                for (bs, &dv) in bsum.iter_mut().zip(dyr) {
                    *bs += dv;
                }
            }
            (gsum, bsum)
        });
    dgamma.fill(0.0);
    dbeta.fill(0.0);
    for (gsum, bsum) in &partials {
        for (o, &p) in dgamma.iter_mut().zip(gsum) {
            *o += p;
        }
        for (o, &p) in dbeta.iter_mut().zip(bsum) {
            *o += p;
        }
    }
}

/// Numerically-stable softmax over contiguous rows of length `d`:
/// row max and row sum use the spec'd reductions, `exp` is the shared
/// libm call on every tier, and the final scale is one reciprocal
/// multiply — identical bits for every tier and thread count.
///
/// # Panics
/// Panics on any length mismatch.
pub fn softmax_rows(x: &[f32], d: usize, out: &mut [f32]) {
    assert!(d > 0, "softmax on empty rows");
    assert_eq!(x.len() % d, 0, "softmax length not a multiple of d");
    assert_eq!(out.len(), x.len(), "softmax output length mismatch");
    let rows = x.len() / d;
    let t = super::tier();
    super::par_rows_mut(out, rows, d, move |_b, r0, chunk| {
        for (i, orow) in chunk.chunks_exact_mut(d).enumerate() {
            let row = &x[(r0 + i) * d..(r0 + i + 1) * d];
            let m = maxv_seq(t, row);
            for (o, &xv) in orow.iter_mut().zip(row) {
                *o = (xv - m).exp();
            }
            let inv = 1.0 / sum_seq(t, orow);
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn layernorm_normalises_rows() {
        let mut rng = Rng::seed_from(3);
        let (rows, d) = (5usize, 32usize);
        let x: Vec<f32> = (0..rows * d).map(|_| 2.0 + rng.normal()).collect();
        let gamma = vec![1.0f32; d];
        let beta = vec![0.0f32; d];
        let mut out = vec![0.0f32; rows * d];
        let mut mean = vec![0.0f32; rows];
        let mut rstd = vec![0.0f32; rows];
        layernorm_fwd(&x, d, &gamma, &beta, 1e-5, &mut out, &mut mean, &mut rstd);
        for row in out.chunks_exact(d) {
            let m: f32 = row.iter().sum::<f32>() / d as f32;
            let v: f32 = row.iter().map(|&y| (y - m) * (y - m)).sum::<f32>() / d as f32;
            assert!(m.abs() < 1e-4, "row mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "row var {v}");
        }
    }

    #[test]
    fn layernorm_affine_applies_gamma_beta() {
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let gamma = vec![2.0f32, 2.0, 2.0, 2.0];
        let beta = vec![10.0f32, 10.0, 10.0, 10.0];
        let mut out = vec![0.0f32; 4];
        let (mut mean, mut rstd) = (vec![0.0f32; 1], vec![0.0f32; 1]);
        layernorm_fwd(&x, 4, &gamma, &beta, 1e-5, &mut out, &mut mean, &mut rstd);
        let m: f32 = out.iter().sum::<f32>() / 4.0;
        assert!((m - 10.0).abs() < 1e-4, "mean {m}");
        assert_eq!(mean[0], 2.5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut out = vec![0.0f32; 6];
        softmax_rows(&x, 3, &mut out);
        for row in out.chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }
}
