//! Quantized inference primitives: IEEE-754 binary16 storage conversion,
//! symmetric int8 scale quantization, and the int8 GEMM with a
//! dequantize-fused bias/activation epilogue.
//!
//! # Quantization math
//!
//! Both reduced-precision tiers are *symmetric scale* schemes with no zero
//! point:
//!
//! * **f16 storage** keeps IEEE semantics: each f32 weight is rounded to
//!   the nearest binary16 (ties to even), stored as its 16 bits, and
//!   widened back to f32 at load time. Compute stays on the f32 kernels.
//! * **int8 compute** stores `q = round(x / s)` clamped to `[-127, 127]`
//!   with one scale per output channel (the last axis of a rank ≥ 2
//!   weight) chosen as `s = max|x| / 127`, so the representable range
//!   exactly covers the channel. An all-zero channel takes `s = 1` and
//!   round-trips to zeros. Activations are quantized dynamically per GEMM
//!   row with the same rule.
//!
//! # Determinism contract
//!
//! The int8 GEMM accumulates in `i32` — exact integer arithmetic — so its
//! accumulator value is independent of summation order by construction.
//! The dequantize epilogue (`acc as f32 * (s_row * s_col)`, then bias,
//! then optional GELU) is a fixed per-element scalar sequence. Results are
//! therefore bit-identical across every SIMD tier and thread count, and
//! the differential suite pins the dispatched kernels against
//! [`linear_i8_oracle`] anyway, exactly like the f32 kernels.

use super::Tier;

/// Converts an `f32` to IEEE binary16 bits with round-to-nearest-even.
///
/// Overflow goes to ±inf, underflow rounds into the subnormal range and
/// then to (signed) zero, and NaN stays NaN (payload truncated, quiet bit
/// forced so the payload never silently becomes inf).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf or NaN. Keep the top mantissa bits and force the quiet bit
        // for NaN so a payload of only-low-bits cannot collapse to inf.
        if man != 0 {
            return sign | 0x7e00 | ((man >> 13) as u16 & 0x03ff);
        }
        return sign | 0x7c00;
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → inf
    }
    if e <= 0 {
        // Subnormal (or zero) in f16. Value = M · 2^(e-14) / 2^10 with the
        // implicit bit restored; shift out `14 - e` bits with RNE.
        if e < -10 {
            return sign; // below half the smallest subnormal → ±0
        }
        let m24 = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        let kept = m24 >> shift;
        let rem = m24 & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && (kept & 1) != 0);
        return sign | (kept + round_up as u32) as u16;
    }
    // Normal: drop 13 mantissa bits with RNE. A mantissa carry bumps the
    // exponent, and a carry out of the top exponent lands exactly on the
    // inf encoding — both are the correct IEEE results.
    let kept = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && (kept & 1) != 0);
    sign | (kept + round_up as u32) as u16
}

/// Widens IEEE binary16 bits back to `f32`. Exact: every f16 value
/// (including subnormals, ±0, ±inf) has an exact f32 representation.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (man << 13));
    }
    if exp == 0 {
        // Subnormal: man · 2^-24, computed exactly (power-of-two scale).
        let v = man as f32 * (1.0 / 16_777_216.0);
        return f32::from_bits(sign | v.to_bits());
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// Why a tensor could not be quantized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuantError {
    /// A NaN at the given flat index — unrepresentable at any tier.
    Nan {
        /// Flat index of the offending element.
        index: usize,
    },
    /// An infinity at the given flat index. f16 storage represents it, but
    /// an int8 scale derived from an infinite magnitude would collapse the
    /// whole channel to zeros, so int8 rejects it.
    Infinite {
        /// Flat index of the offending element.
        index: usize,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Nan { index } => write!(f, "NaN weight at flat index {index}"),
            QuantError::Infinite { index } => {
                write!(f, "infinite weight at flat index {index} (int8 needs a finite scale)")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Encodes a weight slice as f16 bits, rejecting NaN (a NaN weight is a
/// corrupted artifact, not a precision choice). ±inf passes through.
pub fn encode_f16(xs: &[f32]) -> Result<Vec<u16>, QuantError> {
    if let Some(index) = xs.iter().position(|v| v.is_nan()) {
        return Err(QuantError::Nan { index });
    }
    Ok(xs.iter().map(|&v| f32_to_f16_bits(v)).collect())
}

/// Decodes f16 bits back to f32 values.
pub fn decode_f16(hs: &[u16]) -> Vec<f32> {
    hs.iter().map(|&h| f16_bits_to_f32(h)).collect()
}

/// A symmetrically quantized int8 tensor: `data[i] ≈ value[i] / scale(i)`.
///
/// Scales are per output channel — one per element of the **last axis**
/// for rank ≥ 2 tensors (the output-feature axis of a `[in, out]` linear
/// weight), one for the whole tensor otherwise.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantTensor {
    /// Quantized values in `[-127, 127]`, row-major, same layout as the
    /// source tensor.
    pub data: Vec<i8>,
    /// One positive finite scale per channel (`shape.last()` entries for
    /// rank ≥ 2, exactly one otherwise).
    pub scales: Vec<f32>,
    /// Source tensor shape.
    pub shape: Vec<usize>,
}

impl QuantTensor {
    /// Quantizes `values` (shaped `shape`) with per-channel symmetric
    /// scales. Typed errors for NaN or ±inf inputs; never panics on data.
    pub fn quantize(values: &[f32], shape: &[usize]) -> Result<QuantTensor, QuantError> {
        assert_eq!(
            values.len(),
            shape.iter().product::<usize>(),
            "quantize: data/shape mismatch"
        );
        for (i, v) in values.iter().enumerate() {
            if v.is_nan() {
                return Err(QuantError::Nan { index: i });
            }
            if v.is_infinite() {
                return Err(QuantError::Infinite { index: i });
            }
        }
        let channels = if shape.len() >= 2 {
            *shape.last().unwrap()
        } else {
            1
        };
        let mut scales = vec![0.0f32; channels.max(1)];
        if channels > 0 {
            for (i, v) in values.iter().enumerate() {
                let c = i % channels.max(1);
                scales[c] = scales[c].max(v.abs());
            }
        }
        for s in &mut scales {
            *s = if *s == 0.0 { 1.0 } else { *s / 127.0 };
        }
        let data = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let s = scales[i % scales.len()];
                (v / s).round().clamp(-127.0, 127.0) as i8
            })
            .collect();
        Ok(QuantTensor {
            data,
            scales,
            shape: shape.to_vec(),
        })
    }

    /// Dequantizes back to f32 values (`data[i] as f32 * scale(i)`).
    pub fn dequantize(&self) -> Vec<f32> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, &q)| q as f32 * self.scales[i % self.scales.len()])
            .collect()
    }

    /// Heap bytes of the quantized representation (data + scales), the
    /// number the bytes-per-model benchmark reports.
    pub fn encoded_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

/// A borrowed view of a [`QuantTensor`], handed across the
/// `ParamSource` trait without cloning.
#[derive(Clone, Copy, Debug)]
pub struct QuantView<'a> {
    /// Quantized values, row-major.
    pub data: &'a [i8],
    /// Per-channel scales.
    pub scales: &'a [f32],
    /// Source tensor shape.
    pub shape: &'a [usize],
}

impl QuantTensor {
    /// A borrowed view of this tensor.
    pub fn view(&self) -> QuantView<'_> {
        QuantView {
            data: &self.data,
            scales: &self.scales,
            shape: &self.shape,
        }
    }
}

/// Largest `in_dim` the int8 GEMM accepts: |q| ≤ 127 on both sides, so i32
/// accumulation is exact as long as `in_dim · 127² < 2³¹`. Every model in
/// this workspace is orders of magnitude below the bound; plan lowering
/// checks it and keeps oversized matmuls on the f32 path.
pub const I8_MAX_IN_DIM: usize = (i32::MAX / (127 * 127)) as usize;

/// Dynamically quantizes `rows` rows of `k` activations each: per-row
/// symmetric scale `max|x| / 127` (1 for an all-zero row), values rounded
/// half-away and clamped. Non-finite activations saturate to ±127 under a
/// scale from the largest *finite* magnitude — inference inputs are not
/// validated at save time, so the kernel must stay total.
pub fn quantize_rows_i8(x: &[f32], rows: usize, k: usize, q: &mut [i8], scales: &mut [f32]) {
    assert_eq!(x.len(), rows * k, "quantize_rows_i8: input length mismatch");
    assert_eq!(q.len(), rows * k, "quantize_rows_i8: output length mismatch");
    assert_eq!(scales.len(), rows, "quantize_rows_i8: scales length mismatch");
    for r in 0..rows {
        let row = &x[r * k..(r + 1) * k];
        let mut maxabs = 0.0f32;
        for &v in row {
            if v.is_finite() {
                maxabs = maxabs.max(v.abs());
            }
        }
        let s = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
        scales[r] = s;
        for (o, &v) in q[r * k..(r + 1) * k].iter_mut().zip(row) {
            *o = (v / s).round().clamp(-127.0, 127.0) as i8;
        }
    }
}

/// The fused epilogue applied to one dequantized row: bias add then
/// optional GELU, as plain scalar per-element sequences (identical on
/// every tier by construction).
#[inline]
fn epilogue_row(row: &mut [f32], bias: Option<&[f32]>, gelu: bool) {
    if let Some(b) = bias {
        for (o, &bv) in row.iter_mut().zip(b) {
            *o += bv;
        }
    }
    if gelu {
        for o in row.iter_mut() {
            *o = crate::ops::gelu_scalar(*o);
        }
    }
}

/// Reference transcription of the int8 linear spec: quantize activations
/// per row, accumulate `i32` products naively, dequantize with
/// `s_row · s_col`, add bias, apply GELU. The differential suite pins
/// [`linear_i8_into`] against this bit-for-bit.
pub fn linear_i8_oracle(
    x: &[f32],
    rows: usize,
    in_dim: usize,
    w: QuantView<'_>,
    bias: Option<&[f32]>,
    gelu: bool,
    out: &mut [f32],
) {
    let out_dim = *w.shape.last().expect("int8 weight needs a shape");
    assert_eq!(w.shape, &[in_dim, out_dim], "int8 weight shape mismatch");
    assert_eq!(w.scales.len(), out_dim, "int8 weight scales mismatch");
    assert_eq!(out.len(), rows * out_dim, "int8 output length mismatch");
    let mut xq = vec![0i8; rows * in_dim];
    let mut sx = vec![0.0f32; rows];
    quantize_rows_i8(x, rows, in_dim, &mut xq, &mut sx);
    for r in 0..rows {
        for c in 0..out_dim {
            let mut acc = 0i32;
            for i in 0..in_dim {
                acc += xq[r * in_dim + i] as i32 * w.data[i * out_dim + c] as i32;
            }
            out[r * out_dim + c] = acc as f32 * (sx[r] * w.scales[c]);
        }
        epilogue_row(&mut out[r * out_dim..(r + 1) * out_dim], bias, gelu);
    }
}

/// int8 linear with dequantize-fused epilogue, tier-dispatched and
/// parallel over rows: `out = dequant(quant(x) · Wq) + b`, optionally
/// through GELU. Bit-identical to [`linear_i8_oracle`] on every tier and
/// thread count (integer accumulation is order-exact; the epilogue is a
/// fixed scalar sequence).
///
/// # Panics
/// Panics on shape mismatches, and if `in_dim` exceeds the overflow-safe
/// accumulation bound (`i32::MAX / 127²` ≈ 133k elements).
pub fn linear_i8_into(
    x: &[f32],
    rows: usize,
    in_dim: usize,
    w: QuantView<'_>,
    bias: Option<&[f32]>,
    gelu: bool,
    out: &mut [f32],
) {
    let out_dim = *w.shape.last().expect("int8 weight needs a shape");
    assert_eq!(w.shape, &[in_dim, out_dim], "int8 weight shape mismatch");
    assert_eq!(w.scales.len(), out_dim, "int8 weight scales mismatch");
    assert_eq!(x.len(), rows * in_dim, "int8 input length mismatch");
    assert_eq!(out.len(), rows * out_dim, "int8 output length mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), out_dim, "int8 bias length mismatch");
    }
    assert!(
        in_dim <= I8_MAX_IN_DIM,
        "int8 linear: in_dim {in_dim} exceeds the exact-accumulation bound"
    );
    if rows == 0 || out_dim == 0 {
        return;
    }
    let mut xq = vec![0i8; rows * in_dim];
    let mut sx = vec![0.0f32; rows];
    quantize_rows_i8(x, rows, in_dim, &mut xq, &mut sx);
    let t = super::tier();
    let xq_ref = &xq;
    let sx_ref = &sx;
    super::par_rows_mut(out, rows, out_dim, |_, r0, chunk| {
        for (ri, row_out) in chunk.chunks_mut(out_dim).enumerate() {
            let r = r0 + ri;
            let xrow = &xq_ref[r * in_dim..(r + 1) * in_dim];
            row_kernel(t, xrow, w.data, out_dim, sx_ref[r], w.scales, row_out);
            epilogue_row(row_out, bias, gelu);
        }
    });
}

/// One output row of the int8 GEMM: `out[c] = (Σ_i x[i]·w[i,c]) · sx·sw[c]`.
#[inline]
fn row_kernel(
    t: Tier,
    xrow: &[i8],
    w: &[i8],
    out_dim: usize,
    sx: f32,
    sw: &[f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        match t {
            // SAFETY: dispatch only selects a tier the CPU supports.
            Tier::Avx512 => return unsafe { row_avx512(xrow, w, out_dim, sx, sw, out) },
            Tier::Fma => return unsafe { row_avx2(xrow, w, out_dim, sx, sw, out) },
            Tier::Scalar => {}
        }
    }
    let _ = t;
    row_scalar(xrow, w, out_dim, sx, sw, out);
}

fn row_scalar(xrow: &[i8], w: &[i8], out_dim: usize, sx: f32, sw: &[f32], out: &mut [f32]) {
    for (c, o) in out.iter_mut().enumerate() {
        let mut acc = 0i32;
        for (i, &xv) in xrow.iter().enumerate() {
            acc += xv as i32 * w[i * out_dim + c] as i32;
        }
        *o = acc as f32 * (sx * sw[c]);
    }
}

/// AVX2 row kernel: 8 output columns per vector, widening `i8 → i32` and
/// accumulating with `mullo/add` — the same exact integer sums as scalar.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_avx2(xrow: &[i8], w: &[i8], out_dim: usize, sx: f32, sw: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut c = 0;
    while c + 8 <= out_dim {
        let mut acc = _mm256_setzero_si256();
        for (i, &xv) in xrow.iter().enumerate() {
            let wv = _mm_loadl_epi64(w.as_ptr().add(i * out_dim + c) as *const __m128i);
            let wv32 = _mm256_cvtepi8_epi32(wv);
            let xv32 = _mm256_set1_epi32(xv as i32);
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(wv32, xv32));
        }
        let accf = _mm256_cvtepi32_ps(acc);
        let scale = _mm256_mul_ps(_mm256_set1_ps(sx), _mm256_loadu_ps(sw.as_ptr().add(c)));
        _mm256_storeu_ps(out.as_mut_ptr().add(c), _mm256_mul_ps(accf, scale));
        c += 8;
    }
    if c < out_dim {
        row_scalar_tail(xrow, w, out_dim, sx, sw, out, c);
    }
}

/// AVX-512 row kernel: 16 output columns per vector, same exact sums.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
unsafe fn row_avx512(xrow: &[i8], w: &[i8], out_dim: usize, sx: f32, sw: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut c = 0;
    while c + 16 <= out_dim {
        let mut acc = _mm512_setzero_si512();
        for (i, &xv) in xrow.iter().enumerate() {
            let wv = _mm_loadu_si128(w.as_ptr().add(i * out_dim + c) as *const __m128i);
            let wv32 = _mm512_cvtepi8_epi32(wv);
            let xv32 = _mm512_set1_epi32(xv as i32);
            acc = _mm512_add_epi32(acc, _mm512_mullo_epi32(wv32, xv32));
        }
        let accf = _mm512_cvtepi32_ps(acc);
        let scale = _mm512_mul_ps(_mm512_set1_ps(sx), _mm512_loadu_ps(sw.as_ptr().add(c)));
        _mm512_storeu_ps(out.as_mut_ptr().add(c), _mm512_mul_ps(accf, scale));
        c += 16;
    }
    if c < out_dim {
        row_scalar_tail(xrow, w, out_dim, sx, sw, out, c);
    }
}

#[cfg(target_arch = "x86_64")]
fn row_scalar_tail(
    xrow: &[i8],
    w: &[i8],
    out_dim: usize,
    sx: f32,
    sw: &[f32],
    out: &mut [f32],
    from: usize,
) {
    for c in from..out_dim {
        let mut acc = 0i32;
        for (i, &xv) in xrow.iter().enumerate() {
            acc += xv as i32 * w[i * out_dim + c] as i32;
        }
        out[c] = acc as f32 * (sx * sw[c]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_known_answers() {
        // Normals.
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(0.5), 0x3800);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16 max
        // Overflow → inf; inf stays inf.
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        // NaN stays NaN (quiet bit set, never collapses to inf).
        let nan = f32_to_f16_bits(f32::NAN);
        assert_eq!(nan & 0x7c00, 0x7c00);
        assert_ne!(nan & 0x03ff, 0);
        // Smallest f16 subnormal is 2^-24; half of it ties to even (zero).
        assert_eq!(f32_to_f16_bits(f32::from_bits(0x3380_0000)), 0x0001); // 2^-24
        assert_eq!(f32_to_f16_bits(f32::from_bits(0x3300_0000)), 0x0000); // 2^-25: tie → even
        assert_eq!(f32_to_f16_bits(1.5 * f32::from_bits(0x3300_0000)), 0x0001);
        // An f32 subnormal is far below half the smallest f16 subnormal.
        assert_eq!(f32_to_f16_bits(f32::from_bits(1)), 0x0000);
        assert_eq!(f32_to_f16_bits(-f32::from_bits(1)), 0x8000);
        // RNE on normals: 1 + 2^-11 is exactly halfway to the next f16 and
        // ties to even (mantissa stays 0); 1 + 3·2^-12 is 0.75 of a step
        // and rounds up to the next representable value.
        assert_eq!(f32_to_f16_bits(1.0 + 2.0f32.powi(-11)), 0x3c00);
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 2.0f32.powi(-12)), 0x3c01);
    }

    #[test]
    fn f16_widen_known_answers() {
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0xc000), -2.0);
        assert_eq!(f16_bits_to_f32(0x7bff), 65504.0);
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x03ff), 1023.0 * 2.0f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x0400), 2.0f32.powi(-14)); // smallest normal
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xfc00), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(0x7e00).is_nan());
        assert_eq!(f16_bits_to_f32(0x0000).to_bits(), 0.0f32.to_bits());
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn f16_round_trips_every_bit_pattern() {
        // Every f16 value widens exactly and narrows back to itself; NaNs
        // keep NaN-ness (payload may move into the quiet form).
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(f);
            if f.is_nan() {
                assert_eq!(back & 0x7c00, 0x7c00, "h={h:#06x}");
                assert_ne!(back & 0x03ff, 0, "h={h:#06x} NaN collapsed to inf");
                assert_eq!(back & 0x8000, h & 0x8000, "h={h:#06x} sign lost");
            } else {
                assert_eq!(back, h, "h={h:#06x} f={f}");
            }
        }
    }

    #[test]
    fn encode_f16_rejects_nan_with_a_typed_error() {
        let err = encode_f16(&[1.0, f32::NAN, 3.0]).unwrap_err();
        assert_eq!(err, QuantError::Nan { index: 1 });
        // ±inf is representable and passes through.
        let hs = encode_f16(&[f32::INFINITY, f32::NEG_INFINITY]).unwrap();
        assert_eq!(decode_f16(&hs), vec![f32::INFINITY, f32::NEG_INFINITY]);
    }

    #[test]
    fn int8_quantize_known_answers_and_edge_tensors() {
        // Per-tensor (rank 1): scale = max|x|/127.
        let q = QuantTensor::quantize(&[0.0, 63.5, -127.0], &[3]).unwrap();
        assert_eq!(q.scales, vec![1.0]);
        assert_eq!(q.data, vec![0, 64, -127]); // 63.5 rounds half-away to 64
        assert_eq!(q.dequantize(), vec![0.0, 64.0, -127.0]);
        // Per-channel (rank 2, shape [2, 3]): one scale per column.
        let vals = [1.0, 10.0, 0.0, -2.0, -5.0, 0.0];
        let q = QuantTensor::quantize(&vals, &[2, 3]).unwrap();
        assert_eq!(q.scales.len(), 3);
        assert!((q.scales[0] - 2.0 / 127.0).abs() < 1e-9);
        assert!((q.scales[1] - 10.0 / 127.0).abs() < 1e-9);
        assert_eq!(q.scales[2], 1.0); // all-zero channel
        let dq = q.dequantize();
        // Channel maxima are exactly representable (q = ±127).
        assert_eq!(dq[1], 10.0);
        assert_eq!(dq[3], -2.0);
        assert_eq!(dq[2], 0.0);
        assert_eq!(dq[5], 0.0);
        // All-zero tensor round-trips exactly.
        let q = QuantTensor::quantize(&[0.0; 4], &[4]).unwrap();
        assert_eq!(q.dequantize(), vec![0.0; 4]);
        // Single-element tensor round-trips exactly (q = ±127).
        let q = QuantTensor::quantize(&[-3.75], &[1]).unwrap();
        assert_eq!(q.dequantize(), vec![-3.75]);
        // Subnormal weights survive: scale is subnormal-range but finite.
        let tiny = f32::from_bits(1);
        let q = QuantTensor::quantize(&[tiny, -tiny], &[2]).unwrap();
        let dq = q.dequantize();
        assert!(dq[0] >= 0.0 && dq[1] <= 0.0);
        // ±0.0 quantizes to 0 and dequantizes to +0.0.
        let q = QuantTensor::quantize(&[0.0, -0.0], &[2]).unwrap();
        assert_eq!(q.data, vec![0, 0]);
        // Typed errors for NaN and ±inf.
        assert_eq!(
            QuantTensor::quantize(&[0.0, f32::NAN], &[2]).unwrap_err(),
            QuantError::Nan { index: 1 }
        );
        assert_eq!(
            QuantTensor::quantize(&[f32::INFINITY], &[1]).unwrap_err(),
            QuantError::Infinite { index: 0 }
        );
    }

    #[test]
    fn int8_max_magnitude_is_exact() {
        // The channel maximum always maps to ±127 exactly, so the largest
        // weight in every channel round-trips bit-exactly.
        let vals = [3.0e37, -3.0e37, 1.5e37];
        let q = QuantTensor::quantize(&vals, &[3]).unwrap();
        let dq = q.dequantize();
        assert_eq!(dq[0], 3.0e37);
        assert_eq!(dq[1], -3.0e37);
    }

    #[test]
    fn linear_i8_matches_oracle_and_handles_bias_gelu() {
        let mut rng = crate::rng::Rng::seed_from(71_100);
        for &(rows, k, n) in &[(1usize, 5usize, 3usize), (4, 16, 8), (3, 33, 17), (2, 8, 16)] {
            let x = Tensor::randn(&[rows, k], 1.0, &mut rng);
            let wt = Tensor::randn(&[k, n], 0.5, &mut rng);
            let b = Tensor::randn(&[n], 0.1, &mut rng);
            let w = QuantTensor::quantize(wt.data(), &[k, n]).unwrap();
            for &gelu in &[false, true] {
                for bias in [None, Some(b.data())] {
                    let mut want = vec![0.0f32; rows * n];
                    let mut got = vec![0.0f32; rows * n];
                    linear_i8_oracle(x.data(), rows, k, w.view(), bias, gelu, &mut want);
                    linear_i8_into(x.data(), rows, k, w.view(), bias, gelu, &mut got);
                    assert!(
                        want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "rows={rows} k={k} n={n} gelu={gelu} bias={}",
                        bias.is_some()
                    );
                }
            }
        }
    }

    #[test]
    fn linear_i8_is_batch_composition_invariant() {
        // Row r of a batched call must equal the single-row call on row r:
        // activation scales are per row, so batch packing changes nothing.
        let mut rng = crate::rng::Rng::seed_from(71_101);
        let (rows, k, n) = (5usize, 12usize, 9usize);
        let x = Tensor::randn(&[rows, k], 1.0, &mut rng);
        let wt = Tensor::randn(&[k, n], 0.5, &mut rng);
        let w = QuantTensor::quantize(wt.data(), &[k, n]).unwrap();
        let mut batched = vec![0.0f32; rows * n];
        linear_i8_into(x.data(), rows, k, w.view(), None, false, &mut batched);
        for r in 0..rows {
            let mut single = vec![0.0f32; n];
            linear_i8_into(&x.data()[r * k..(r + 1) * k], 1, k, w.view(), None, false, &mut single);
            assert!(
                single
                    .iter()
                    .zip(&batched[r * n..(r + 1) * n])
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "row {r} differs between batch sizes"
            );
        }
    }

    #[test]
    fn int8_accuracy_is_within_the_symmetric_scheme_bound() {
        // Weight round-trip error is at most scale/2 per element.
        let mut rng = crate::rng::Rng::seed_from(71_102);
        let wt = Tensor::randn(&[32, 24], 1.0, &mut rng);
        let q = QuantTensor::quantize(wt.data(), &[32, 24]).unwrap();
        let dq = q.dequantize();
        for (i, (&a, &b)) in wt.data().iter().zip(&dq).enumerate() {
            let s = q.scales[i % q.scales.len()];
            assert!((a - b).abs() <= 0.5 * s + 1e-12, "i={i} a={a} b={b} s={s}");
        }
    }

    use crate::Tensor;
}
