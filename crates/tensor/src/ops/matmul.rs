//! Matrix multiplication and the fused linear kernel.
//!
//! These are the hot loops of the whole reproduction: every MLP block in
//! MSD-Mixer and every baseline reduces to `linear` over the last axis. All
//! products route through the blocked, packed SGEMM in [`crate::ops::gemm`],
//! which parallelises over fixed row tiles (see [`crate::pool`]) and returns
//! bit-identical results for every thread count. The transpose-aware
//! variants [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`] read the
//! transposed operand through strides during packing, so backward passes
//! never materialise a transposed copy.

use crate::ops::gemm::sgemm_batched_strided;
use crate::shape::numel;
use crate::Tensor;

/// Which operand of a product is stored transposed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// `A[m,k] · B[k,n]`
    Nn,
    /// `A[m,k] · B[n,k]ᵀ`
    Nt,
    /// `A[k,m]ᵀ · B[k,n]`
    Tn,
}

/// Shared driver for the three product layouts; handles 2-D, the
/// `[..., m, k] · 2-D` broadcast, and equal-rank batched inputs.
fn product(a: &Tensor, b: &Tensor, layout: Layout, name: &str) -> Tensor {
    let (a_shape, b_shape) = (a.shape(), b.shape());
    let out_shape = product_out_shape(a_shape, b_shape, layout, name);
    let mut out = vec![0.0f32; numel(&out_shape)];
    product_into(a_shape, a.data(), b_shape, b.data(), layout, name, &mut out);
    Tensor::from_vec(&out_shape, out)
}

/// The output shape `product_into` will produce, after validating operand
/// shapes for `layout`.
fn product_out_shape(a_shape: &[usize], b_shape: &[usize], layout: Layout, name: &str) -> Vec<usize> {
    assert!(a_shape.len() >= 2, "{name} lhs must have rank >= 2, got {a_shape:?}");
    let (al2, al1) = (a_shape[a_shape.len() - 2], a_shape[a_shape.len() - 1]);
    let (m, _k) = match layout {
        Layout::Tn => (al1, al2),
        _ => (al2, al1),
    };
    let (bl2, bl1) = (b_shape[b_shape.len() - 2], b_shape[b_shape.len() - 1]);
    let (_k2, n) = match layout {
        Layout::Nt => (bl1, bl2),
        _ => (bl2, bl1),
    };
    let mut out_shape = a_shape[..a_shape.len() - 2].to_vec();
    out_shape.extend_from_slice(&[m, n]);
    out_shape
}

/// Slice-level product driver shared by the `Tensor` methods and the
/// compiled-plan executor; writes the product into `out` (fully overwritten).
fn product_into(
    a_shape: &[usize],
    a_data: &[f32],
    b_shape: &[usize],
    b_data: &[f32],
    layout: Layout,
    name: &str,
    out: &mut [f32],
) {
    assert!(a_shape.len() >= 2, "{name} lhs must have rank >= 2, got {a_shape:?}");
    let (al2, al1) = (a_shape[a_shape.len() - 2], a_shape[a_shape.len() - 1]);
    // Logical (m, k) of the left operand.
    let (m, k) = match layout {
        Layout::Tn => (al1, al2),
        _ => (al2, al1),
    };

    let rhs_2d = b_shape.len() == 2;
    if !rhs_2d {
        assert_eq!(
            a_shape.len(),
            b_shape.len(),
            "batched {name} needs equal rank: {a_shape:?} vs {b_shape:?}"
        );
        assert_eq!(
            &a_shape[..a_shape.len() - 2],
            &b_shape[..b_shape.len() - 2],
            "batched {name} batch dims: {a_shape:?} vs {b_shape:?}"
        );
    }
    let (bl2, bl1) = (b_shape[b_shape.len() - 2], b_shape[b_shape.len() - 1]);
    // Logical (k, n) of the right operand.
    let (k2, n) = match layout {
        Layout::Nt => (bl1, bl2),
        _ => (bl2, bl1),
    };
    assert_eq!(k, k2, "{name} inner dim: {a_shape:?} vs {b_shape:?}");

    let batches = numel(&a_shape[..a_shape.len() - 2]);
    assert_eq!(out.len(), batches * m * n, "{name} output length");

    let (a_rs, a_cs) = match layout {
        Layout::Tn => (1, m),
        _ => (k, 1),
    };
    let (b_rs, b_cs) = match layout {
        Layout::Nt => (1, k),
        _ => (n, 1),
    };
    sgemm_batched_strided(
        batches,
        m,
        k,
        n,
        a_data,
        m * k,
        a_rs,
        a_cs,
        b_data,
        if rhs_2d { 0 } else { k * n },
        b_rs,
        b_cs,
        out,
    );
}

/// Writes `A · B` (the [`Tensor::matmul`] layout: 2-D, broadcast-2-D rhs, or
/// equal-rank batched) into `out`, fully overwriting it. Shared by the
/// `Tensor` method and the compiled-plan executor so both produce identical
/// bytes.
pub fn matmul_nn_into(
    a_shape: &[usize],
    a_data: &[f32],
    b_shape: &[usize],
    b_data: &[f32],
    out: &mut [f32],
) {
    product_into(a_shape, a_data, b_shape, b_data, Layout::Nn, "matmul", out);
}

/// Writes the fused affine map `x · W (+ b)` over the last axis into `out`
/// (fully overwritten). `x` is `rows` rows of `in_dim`; `weight` is
/// `[in_dim, out_dim]` row-major; `bias`, if present, is `[out_dim]`. Shared
/// by [`Tensor::linear`] and the compiled-plan executor.
pub fn linear_into(
    x: &[f32],
    rows: usize,
    in_dim: usize,
    weight: &[f32],
    out_dim: usize,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(out.len(), rows * out_dim, "linear output length");
    crate::ops::gemm::sgemm_strided(rows, in_dim, out_dim, x, in_dim, 1, weight, out_dim, 1, out);
    if let Some(b) = bias {
        assert_eq!(b.len(), out_dim, "linear bias shape");
        crate::ops::kernels::ew::add_bias(out, b);
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// * `[m, k] · [k, n] -> [m, n]` for 2-D inputs;
    /// * for higher-rank `self` of shape `[..., m, k]` against a 2-D `[k, n]`
    ///   right-hand side, the product is applied to each leading batch,
    ///   producing `[..., m, n]`;
    /// * for equal-rank batched inputs `[..., m, k] · [..., k, n]` the leading
    ///   axes must match elementwise and the product is applied per batch.
    ///
    /// # Panics
    /// Panics on inner-dimension or batch-shape mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        product(self, other, Layout::Nn, "matmul")
    }

    /// Matrix product with a transposed right-hand side: `A · Bᵀ`.
    ///
    /// `self` is `[..., m, k]`; `other` is `[n, k]` (broadcast over leading
    /// batches) or `[..., n, k]` (equal-rank batched); the result is
    /// `[..., m, n]`. Equivalent to `self.matmul(&other.transpose_last2())`
    /// but reads `other` through strides instead of materialising the
    /// transpose — the fast path for `dX = dY · Wᵀ` in backward passes.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        product(self, other, Layout::Nt, "matmul_nt")
    }

    /// Matrix product with a transposed left-hand side: `Aᵀ · B`.
    ///
    /// `self` is `[..., k, m]`; `other` is `[k, n]` (broadcast) or
    /// `[..., k, n]` (equal-rank batched); the result is `[..., m, n]`.
    /// Equivalent to `self.transpose_last2().matmul(other)` without the
    /// materialised transpose — the fast path for `dW = Xᵀ · dY`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        product(self, other, Layout::Tn, "matmul_tn")
    }

    /// Fused affine map over the last axis:
    /// `y[..., j] = sum_i x[..., i] * w[i][j] + b[j]`.
    ///
    /// `weight` is `[in, out]`; `bias`, if present, is `[out]`. This is the
    /// workhorse of every MLP in the workspace.
    pub fn linear(&self, weight: &Tensor, bias: Option<&Tensor>) -> Tensor {
        assert_eq!(weight.ndim(), 2, "linear weight must be 2-D");
        let in_dim = *self.shape().last().expect("linear on scalar");
        assert_eq!(
            weight.shape()[0],
            in_dim,
            "linear: input last dim {} vs weight in dim {}",
            in_dim,
            weight.shape()[0]
        );
        let out_dim = weight.shape()[1];
        let rows = self.len() / in_dim;
        let mut out = vec![0.0f32; rows * out_dim];
        linear_into(
            self.data(),
            rows,
            in_dim,
            weight.data(),
            out_dim,
            bias.map(Tensor::data),
            &mut out,
        );
        let mut shape = self.shape().to_vec();
        *shape.last_mut().unwrap() = out_dim;
        Tensor::from_vec(&shape, out)
    }

    /// Swaps the last two axes (materialising the result). A common companion
    /// to [`Tensor::matmul`] in layout code; backward passes use
    /// [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`] instead.
    pub fn transpose_last2(&self) -> Tensor {
        let nd = self.ndim();
        assert!(nd >= 2, "transpose_last2 needs rank >= 2");
        let mut perm: Vec<usize> = (0..nd).collect();
        perm.swap(nd - 2, nd - 1);
        self.permute(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_broadcast_rhs_over_batches() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_batched_equal_rank() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2, 1], vec![1.0, 1.0, 2.0, 2.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 1]);
        assert_eq!(c.data(), &[3.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "inner dim")]
    fn matmul_rejects_mismatched_inner() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_nt_matches_materialised_transpose() {
        let mut rng = crate::rng::Rng::seed_from(11);
        let a = Tensor::randn(&[3, 5, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 7], 1.0, &mut rng);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose_last2()));
        let bb = Tensor::randn(&[3, 4, 7], 1.0, &mut rng);
        assert_eq!(a.matmul_nt(&bb), a.matmul(&bb.transpose_last2()));
    }

    #[test]
    fn matmul_tn_matches_materialised_transpose() {
        let mut rng = crate::rng::Rng::seed_from(12);
        let a = Tensor::randn(&[3, 7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 7, 4], 1.0, &mut rng);
        assert_eq!(a.matmul_tn(&b), a.transpose_last2().matmul(&b));
        let a2 = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b2 = Tensor::randn(&[7, 4], 1.0, &mut rng);
        assert_eq!(a2.matmul_tn(&b2), a2.transpose_last2().matmul(&b2));
    }

    #[test]
    #[should_panic(expected = "inner dim")]
    fn matmul_nt_rejects_mismatched_inner() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul_nt(&b);
    }

    #[test]
    fn linear_matches_matmul_plus_bias() {
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|i| i as f32).collect());
        let w = Tensor::from_vec(&[3, 2], vec![1.0, -1.0, 0.5, 0.5, 2.0, 0.0]);
        let b = Tensor::from_vec(&[2], vec![0.1, -0.1]);
        let y = x.linear(&w, Some(&b));
        assert_eq!(y.shape(), &[2, 2, 2]);
        // Hand-check the first row: [0,1,2]·W = [0*1+1*0.5+2*2, 0*-1+1*0.5] = [4.5, 0.5]
        assert!((y.data()[0] - 4.6).abs() < 1e-6);
        assert!((y.data()[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn linear_without_bias() {
        let x = Tensor::ones(&[1, 2]);
        let w = Tensor::from_vec(&[2, 1], vec![3.0, 4.0]);
        assert_eq!(x.linear(&w, None).data(), &[7.0]);
    }

    #[test]
    fn transpose_last2_swaps() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}
