//! Matrix multiplication and the fused linear kernel.
//!
//! These are the hot loops of the whole reproduction: every MLP block in
//! MSD-Mixer and every baseline reduces to `linear` over the last axis. The
//! kernels are written i-k-j (accumulating rows of the output against rows of
//! the right-hand matrix) so the inner loop is a contiguous axpy that the
//! compiler auto-vectorises, and bounds checks are hoisted by slicing rows
//! up front.

use crate::shape::numel;
use crate::Tensor;

/// `out[i][j] += sum_k a[i][k] * b[k][j]` for row-major `m×k · k×n` panels.
#[inline]
fn matmul_panel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

impl Tensor {
    /// Matrix product.
    ///
    /// * `[m, k] · [k, n] -> [m, n]` for 2-D inputs;
    /// * for higher-rank `self` of shape `[..., m, k]` against a 2-D `[k, n]`
    ///   right-hand side, the product is applied to each leading batch,
    ///   producing `[..., m, n]`;
    /// * for equal-rank batched inputs `[..., m, k] · [..., k, n]` the leading
    ///   axes must match elementwise and the product is applied per batch.
    ///
    /// # Panics
    /// Panics on inner-dimension or batch-shape mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (a_shape, b_shape) = (self.shape(), other.shape());
        assert!(a_shape.len() >= 2, "matmul lhs must have rank >= 2, got {:?}", a_shape);
        let (m, k) = (a_shape[a_shape.len() - 2], a_shape[a_shape.len() - 1]);

        if b_shape.len() == 2 {
            let (k2, n) = (b_shape[0], b_shape[1]);
            assert_eq!(k, k2, "matmul inner dim: {:?} vs {:?}", a_shape, b_shape);
            let batches = numel(&a_shape[..a_shape.len() - 2]);
            let mut out_shape = a_shape[..a_shape.len() - 2].to_vec();
            out_shape.extend_from_slice(&[m, n]);
            let mut out = vec![0.0f32; batches * m * n];
            for bi in 0..batches {
                matmul_panel(
                    &self.data()[bi * m * k..(bi + 1) * m * k],
                    other.data(),
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            return Tensor::from_vec(&out_shape, out);
        }

        assert_eq!(
            a_shape.len(),
            b_shape.len(),
            "batched matmul needs equal rank: {:?} vs {:?}",
            a_shape,
            b_shape
        );
        assert_eq!(
            &a_shape[..a_shape.len() - 2],
            &b_shape[..b_shape.len() - 2],
            "batched matmul batch dims: {:?} vs {:?}",
            a_shape,
            b_shape
        );
        let (k2, n) = (b_shape[b_shape.len() - 2], b_shape[b_shape.len() - 1]);
        assert_eq!(k, k2, "matmul inner dim: {:?} vs {:?}", a_shape, b_shape);
        let batches = numel(&a_shape[..a_shape.len() - 2]);
        let mut out_shape = a_shape[..a_shape.len() - 2].to_vec();
        out_shape.extend_from_slice(&[m, n]);
        let mut out = vec![0.0f32; batches * m * n];
        for bi in 0..batches {
            matmul_panel(
                &self.data()[bi * m * k..(bi + 1) * m * k],
                &other.data()[bi * k * n..(bi + 1) * k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor::from_vec(&out_shape, out)
    }

    /// Fused affine map over the last axis:
    /// `y[..., j] = sum_i x[..., i] * w[i][j] + b[j]`.
    ///
    /// `weight` is `[in, out]`; `bias`, if present, is `[out]`. This is the
    /// workhorse of every MLP in the workspace.
    pub fn linear(&self, weight: &Tensor, bias: Option<&Tensor>) -> Tensor {
        assert_eq!(weight.ndim(), 2, "linear weight must be 2-D");
        let in_dim = *self.shape().last().expect("linear on scalar");
        assert_eq!(
            weight.shape()[0],
            in_dim,
            "linear: input last dim {} vs weight in dim {}",
            in_dim,
            weight.shape()[0]
        );
        let out_dim = weight.shape()[1];
        let rows = self.len() / in_dim;
        let mut out = vec![0.0f32; rows * out_dim];
        matmul_panel(self.data(), weight.data(), &mut out, rows, in_dim, out_dim);
        if let Some(b) = bias {
            assert_eq!(b.shape(), &[out_dim], "linear bias shape");
            let bd = b.data();
            for chunk in out.chunks_exact_mut(out_dim) {
                for (o, &bv) in chunk.iter_mut().zip(bd) {
                    *o += bv;
                }
            }
        }
        let mut shape = self.shape().to_vec();
        *shape.last_mut().unwrap() = out_dim;
        Tensor::from_vec(&shape, out)
    }

    /// Swaps the last two axes (materialising the result). A common companion
    /// to [`Tensor::matmul`] in backward passes.
    pub fn transpose_last2(&self) -> Tensor {
        let nd = self.ndim();
        assert!(nd >= 2, "transpose_last2 needs rank >= 2");
        let mut perm: Vec<usize> = (0..nd).collect();
        perm.swap(nd - 2, nd - 1);
        self.permute(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_broadcast_rhs_over_batches() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_batched_equal_rank() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2, 1], vec![1.0, 1.0, 2.0, 2.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 1, 1]);
        assert_eq!(c.data(), &[3.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "inner dim")]
    fn matmul_rejects_mismatched_inner() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn linear_matches_matmul_plus_bias() {
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|i| i as f32).collect());
        let w = Tensor::from_vec(&[3, 2], vec![1.0, -1.0, 0.5, 0.5, 2.0, 0.0]);
        let b = Tensor::from_vec(&[2], vec![0.1, -0.1]);
        let y = x.linear(&w, Some(&b));
        assert_eq!(y.shape(), &[2, 2, 2]);
        // Hand-check the first row: [0,1,2]·W = [0*1+1*0.5+2*2, 0*-1+1*0.5] = [4.5, 0.5]
        assert!((y.data()[0] - 4.6).abs() < 1e-6);
        assert!((y.data()[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn linear_without_bias() {
        let x = Tensor::ones(&[1, 2]);
        let w = Tensor::from_vec(&[2, 1], vec![3.0, 4.0]);
        assert_eq!(x.linear(&w, None).data(), &[7.0]);
    }

    #[test]
    fn transpose_last2_swaps() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}
