//! Elementwise arithmetic and activation functions.
//!
//! The hot methods route through the multi-threaded kernel layer in
//! [`crate::ops::kernels::ew`]; results are bit-identical to the plain
//! per-element loops for every thread count (see the kernel module docs).

use crate::ops::kernels::ew;
use crate::Tensor;

impl Tensor {
    fn binary_kernel(&self, other: &Tensor, op: ew::Bin) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; self.len()];
        ew::binary(op, self.data(), other.data(), &mut out);
        Tensor::from_vec(self.shape(), out)
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_mut shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum. Shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.binary_kernel(other, ew::Bin::Add)
    }

    /// Elementwise difference (`self - other`). Shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.binary_kernel(other, ew::Bin::Sub)
    }

    /// Elementwise product (Hadamard). Shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.binary_kernel(other, ew::Bin::Mul)
    }

    /// Elementwise quotient. Shapes must match exactly.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.binary_kernel(other, ew::Bin::Div)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        ew::add_assign(self.data_mut(), other.data());
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        ew::sub_assign(self.data_mut(), other.data());
    }

    /// In-place `self += scale * other` (the axpy kernel that dominates
    /// gradient accumulation and optimiser updates).
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        self.assert_same_shape(other);
        ew::axpy(scale, other.data(), self.data_mut());
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        ew::scale(self.data(), s, &mut out);
        Tensor::from_vec(self.shape(), out)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        ew::add_scalar(self.data(), s, &mut out);
        Tensor::from_vec(self.shape(), out)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        ew::square(self.data(), &mut out);
        Tensor::from_vec(self.shape(), out)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Rectified linear unit: `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        ew::relu(self.data(), &mut out);
        Tensor::from_vec(self.shape(), out)
    }

    /// Gaussian Error Linear Unit, tanh approximation — the nonlinearity of
    /// the paper's MLP block (Fig. 3a).
    ///
    /// `gelu(x) = 0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))`
    ///
    /// Dispatches to the SIMD kernel, which is bit-identical to
    /// [`gelu_scalar`] per element on every tier.
    pub fn gelu(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        ew::gelu(self.data(), &mut out);
        Tensor::from_vec(self.shape(), out)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Broadcast-add of a 1-D bias over the last axis: `self[..., j] + bias[j]`.
    ///
    /// # Panics
    /// Panics if `bias` is not 1-D with length equal to the last axis extent.
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let last = *self.shape().last().expect("add_bias on scalar");
        assert_eq!(bias.shape(), &[last], "bias shape mismatch");
        let mut out = self.clone();
        ew::add_bias(out.data_mut(), bias.data());
        out
    }
}

/// Fast `tanh` via the degree-7/6 continued-fraction rational
/// approximation, clamped to ±1 outside ±4.97 where the true value is
/// within 2e-4 of ±1. Max absolute error ≈ 3e-5 — far below training
/// noise — at roughly 5× the speed of libm `tanh`, which matters because
/// GELU dominates the per-step cost of MLP-heavy models.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    if x >= 4.97 {
        return 1.0;
    }
    if x <= -4.97 {
        return -1.0;
    }
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    p / q
}

/// GELU on a scalar (tanh approximation). Shared with the autograd backward
/// pass, which needs the derivative at the same approximation.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu_scalar`] with respect to its input.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = fast_tanh(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(&[v.len()], v.to_vec())
    }

    #[test]
    fn arithmetic() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.neg().data(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.square().data(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(t(&[-1.0, 0.0, 2.0]).relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn fast_tanh_accuracy() {
        let mut worst = 0.0f32;
        let mut x = -6.0f32;
        while x < 6.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            if err > worst { worst = err; }
            x += 0.001;
        }
        assert!(worst < 2e-4, "worst fast_tanh error {worst}");
        assert_eq!(fast_tanh(10.0), 1.0);
        assert_eq!(fast_tanh(-10.0), -1.0);
        assert_eq!(fast_tanh(0.0), 0.0);
    }

    #[test]
    fn gelu_reference_values() {
        // Reference values from the tanh approximation itself, cross-checked
        // against PyTorch's gelu(approximate="tanh").
        let g = gelu_scalar(1.0);
        assert!((g - 0.841_192).abs() < 1e-4, "gelu(1)={g}");
        let g = gelu_scalar(-1.0);
        assert!((g + 0.158_808).abs() < 1e-4, "gelu(-1)={g}");
        assert_eq!(gelu_scalar(0.0), 0.0);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let fd = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            let an = gelu_grad_scalar(x);
            assert!((fd - an).abs() < 1e-3, "x={x} fd={fd} an={an}");
        }
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let x = Tensor::from_vec(&[2, 3], vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        let y = x.add_bias(&b);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "bias shape mismatch")]
    fn add_bias_rejects_wrong_length() {
        let x = Tensor::zeros(&[2, 3]);
        let b = t(&[1.0, 2.0]);
        let _ = x.add_bias(&b);
    }
}
