//! Kernel dispatch layer: SIMD-tiered, thread-parallel elementwise,
//! reduction, and normalisation kernels.
//!
//! # Dispatch
//!
//! Every kernel picks one of three implementation tiers at runtime —
//! AVX-512, AVX2 (the FMA tier), or portable scalar — via [`tier`]. The
//! detected ISA is probed once per process; the `MSD_KERNEL_FORCE`
//! environment variable (`scalar`, `fma`/`avx2`, `avx512`, `auto`) is read
//! on every dispatch so tests can flip tiers at runtime, exactly like
//! `MSD_NUM_THREADS` re-reads the worker count. Forcing a tier above what
//! the machine supports clamps to the detected level.
//!
//! # Determinism contract
//!
//! Results are **bit-identical for every tier and every thread count**:
//!
//! * elementwise kernels are pure per-element functions whose SIMD bodies
//!   replicate the scalar operation sequence exactly (plain mul/add, no
//!   FMA contraction, branch-free clamps via compare+blend that preserve
//!   NaN/±inf propagation);
//! * reductions follow a *fixed accumulation-order specification*: the
//!   input is cut into [`RED_BLOCK`]-sized blocks (boundaries depend only
//!   on the length), each block accumulates into [`LANES`] interleaved
//!   lanes (lane `i` takes elements `i`, `i + LANES`, …), lanes fold in a
//!   fixed pairwise tree (16 → 8 → 4 → 2 → 1), and block partials fold
//!   sequentially in block order. Every tier implements this one spec —
//!   AVX-512 with one 16-lane register, AVX2 with two 8-lane registers,
//!   scalar with a 16-element array — so the bits cannot differ;
//! * thread partitioning assigns whole fixed blocks to workers through
//!   [`crate::pool::parallel_tiles`]; threads change *who* computes a
//!   block, never *how*, and partials always fold in block order.
//!
//! One deliberate carve-out: **NaN payload/sign is unspecified**. When
//! both operands of an addition are NaN, IEEE 754 lets the implementation
//! return either payload; x86 `addss`/`addps` return the first operand's,
//! and LLVM freely commutes `fadd`, so two correct compilations of the
//! same accumulation order can surface different NaN bits. Whether a
//! result *is* NaN is fully deterministic — only which of several input
//! NaN payloads survives is not. All non-NaN results, including ±inf and
//! signed zeros, are covered by the bit-identity guarantee.
//!
//! The naive reference implementations of the same specification live in
//! [`oracle`] and stay compiled into every build: the differential test
//! suite (`tests/kernels_differential.rs`) sweeps random shapes and
//! NaN/±inf inputs comparing each dispatched kernel bit-for-bit against
//! its oracle (NaNs canonicalised before comparing, per the carve-out
//! above), across tiers and `MSD_NUM_THREADS` settings.

use std::sync::OnceLock;

pub mod ew;
pub mod norm;
pub mod oracle;
pub mod quant;
pub mod reduce;
mod simd;

/// Number of virtual accumulator lanes in the reduction specification.
/// Chosen to match one AVX-512 register (and two AVX2 registers) so every
/// tier can implement the spec at full width.
pub const LANES: usize = 16;

/// Elements per reduction block. Block boundaries depend only on the input
/// length — never on the thread count — so partial folds are deterministic.
/// A multiple of [`LANES`]; sized so one block's working set stays L1-hot.
pub const RED_BLOCK: usize = 4096;

/// Elements per elementwise parallel block.
pub(crate) const EW_BLOCK: usize = 1 << 14;

/// Minimum problem size (elements) before a kernel engages the thread pool;
/// below this, spawn cost exceeds the work.
pub(crate) const PAR_MIN: usize = 1 << 15;

/// The SIMD implementation tier a kernel dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable scalar loops — also the shape of the test oracles.
    Scalar,
    /// AVX2 + FMA x86-64 tier (FMA is required by the gemm microkernel;
    /// pointwise kernels use plain mul/add to stay bit-identical with the
    /// scalar tier).
    Fma,
    /// AVX-512F x86-64 tier.
    Avx512,
}

impl Tier {
    /// Human-readable tier name (for bench reports and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Fma => "fma",
            Tier::Avx512 => "avx512",
        }
    }
}

/// The highest tier the running CPU supports (probed once per process).
pub fn detected_tier() -> Tier {
    static DETECTED: OnceLock<Tier> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Tier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Tier::Fma;
            }
        }
        Tier::Scalar
    })
}

/// The tier kernels dispatch to right now: the detected tier, clamped by
/// the `MSD_KERNEL_FORCE` environment variable if set.
///
/// Recognised values: `scalar`, `fma` (alias `avx2`), `avx512`, `auto`
/// (same as unset). Unknown values fall back to `auto`. The variable is
/// re-read on every call so tests and benches can flip the tier at
/// runtime; a forced tier above the machine's capability clamps down to
/// [`detected_tier`].
pub fn tier() -> Tier {
    let detected = detected_tier();
    match std::env::var("MSD_KERNEL_FORCE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scalar" => Tier::Scalar,
            "fma" | "avx2" => detected.min(Tier::Fma),
            "avx512" => detected.min(Tier::Avx512),
            _ => detected,
        },
        Err(_) => detected,
    }
}

/// A raw pointer that may cross the scoped-thread boundary. Every user
/// guarantees that concurrent tiles touch disjoint index ranges.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Runs `work(start, chunk)` over fixed `block`-sized chunks of `out`,
/// in parallel when `len >= PAR_MIN`. Chunk boundaries depend only on the
/// output length, and each chunk is written by exactly one worker.
pub(crate) fn par_chunks_mut(
    out: &mut [f32],
    block: usize,
    work: impl Fn(usize, &mut [f32]) + Sync,
) {
    let len = out.len();
    if len == 0 {
        return;
    }
    let n_blocks = len.div_ceil(block);
    let threads = if len >= PAR_MIN {
        crate::pool::num_threads()
    } else {
        1
    };
    if threads <= 1 || n_blocks <= 1 {
        for b in 0..n_blocks {
            let start = b * block;
            let end = (start + block).min(len);
            // Re-borrowing per block keeps the sequential path free of
            // unsafe; per-element kernels are insensitive to the split.
            work(start, &mut out[start..end]);
        }
        return;
    }
    let ptr = SendPtr(out.as_mut_ptr());
    crate::pool::parallel_tiles(n_blocks, threads, move |b| {
        let ptr = &ptr;
        let start = b * block;
        let end = (start + block).min(len);
        // SAFETY: blocks are disjoint ranges of `out`, one tile each.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
        work(start, chunk);
    });
}

/// The fixed row-block decomposition for a `rows × row_len` problem:
/// returns `(rows_per_block, n_blocks)`. Depends only on the shape, so
/// per-block partial results always fold in the same order regardless of
/// the thread count.
pub fn row_blocks(rows: usize, row_len: usize) -> (usize, usize) {
    if rows == 0 {
        return (1, 0);
    }
    // Aim for blocks of ~EW_BLOCK elements, at least one row.
    let rows_per_block = (EW_BLOCK / row_len.max(1)).clamp(1, rows);
    (rows_per_block, rows.div_ceil(rows_per_block))
}

/// Runs `row_work(block, first_row, row_count)` over the fixed row-block
/// decomposition of [`row_blocks`], in parallel when the problem is large
/// enough.
pub fn par_rows(rows: usize, row_len: usize, row_work: impl Fn(usize, usize, usize) + Sync) {
    let (rows_per_block, n_blocks) = row_blocks(rows, row_len);
    if n_blocks == 0 {
        return;
    }
    let threads = if rows * row_len >= PAR_MIN {
        crate::pool::num_threads()
    } else {
        1
    };
    crate::pool::parallel_tiles(n_blocks, threads.min(n_blocks), move |b| {
        let r0 = b * rows_per_block;
        let n = rows_per_block.min(rows - r0);
        row_work(b, r0, n);
    });
}

/// Like [`par_rows`], but hands each block its disjoint `&mut` window of
/// `out` (which must hold exactly `rows * row_len` elements).
///
/// # Panics
/// Panics if `out.len() != rows * row_len`.
pub fn par_rows_mut(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    row_work: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    assert_eq!(out.len(), rows * row_len, "par_rows_mut length mismatch");
    let ptr = SendPtr(out.as_mut_ptr());
    par_rows(rows, row_len, move |b, r0, n| {
        let ptr = &ptr;
        // SAFETY: row blocks are disjoint ranges of `out`, one tile each.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(ptr.0.add(r0 * row_len), n * row_len) };
        row_work(b, r0, chunk);
    });
}

/// Like [`par_rows_mut`], but additionally collects one partial result per
/// block, returned **in block order** so callers can fold partials
/// deterministically (the fused ACF loss folds per-row-block `f64` loss
/// terms this way; LayerNorm backward folds per-block `dγ`/`dβ` buffers).
///
/// # Panics
/// Panics if `out.len() != rows * row_len`.
pub fn par_rows_map_mut<P: Send + Default>(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    row_work: impl Fn(usize, usize, &mut [f32]) -> P + Sync,
) -> Vec<P> {
    assert_eq!(out.len(), rows * row_len, "par_rows_map_mut length mismatch");
    let (_, n_blocks) = row_blocks(rows, row_len);
    let mut partials: Vec<P> = std::iter::repeat_with(P::default).take(n_blocks).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let part_ptr = SendPtr(partials.as_mut_ptr());
    par_rows(rows, row_len, move |b, r0, n| {
        let (out_ptr, part_ptr) = (&out_ptr, &part_ptr);
        // SAFETY: row blocks are disjoint ranges of `out`, and each tile
        // writes exactly one distinct partial slot.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(r0 * row_len), n * row_len) };
        let p = row_work(b, r0, chunk);
        unsafe { *part_ptr.0.add(b) = p };
    });
    partials
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_force_is_clamped_and_lenient() {
        // Can't mutate the process env safely in parallel tests, but the
        // ordering invariants are static.
        assert!(Tier::Scalar < Tier::Fma);
        assert!(Tier::Fma < Tier::Avx512);
        assert!(tier() <= detected_tier());
        assert_eq!(Tier::Avx512.name(), "avx512");
    }

    #[test]
    fn par_chunks_cover_everything_once() {
        let mut out = vec![0.0f32; 10_007];
        par_chunks_mut(&mut out, 256, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (start + i) as f32;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn par_rows_cover_all_rows() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
        par_rows(37, 8, |_b, r0, n| {
            for h in &hits[r0..r0 + n] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
