//! The dense row-major tensor type.

use crate::rng::Rng;
use crate::shape::{numel, strides_for, Shape};

/// A dense, contiguous, row-major `f32` tensor.
///
/// The data buffer always has exactly `shape.iter().product()` elements.
/// All ops that change layout produce new contiguous tensors; there are no
/// views, which keeps the op implementations simple and the memory behaviour
/// predictable (one allocation per produced tensor).
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from a shape and an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the number of elements of
    /// `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            numel(shape),
            data.len(),
            "shape {:?} needs {} elements, got {}",
            shape,
            numel(shape),
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// A zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Standard-normal samples, shape `shape`, scaled by `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        let data = (0..numel(shape)).map(|_| rng.normal() * std).collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let data = (0..numel(shape))
            .map(|_| lo + (hi - lo) * rng.uniform())
            .collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape (outermost axis first).
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major order).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major order).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row-major strides for the current shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// The single value of a rank-0 / one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with shape {:?}", self.shape);
        self.data[0]
    }

    /// Value at the given multi-axis coordinates.
    pub fn at(&self, coords: &[usize]) -> f32 {
        let strides = self.strides();
        debug_assert_eq!(coords.len(), self.shape.len());
        let mut idx = 0;
        for (i, (&c, &s)) in coords.iter().zip(&strides).enumerate() {
            debug_assert!(c < self.shape[i], "coord {} out of bounds on axis {}", c, i);
            idx += c * s;
        }
        self.data[idx]
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise against `other` (same shape), producing a new
    /// tensor.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place elementwise update against `other` (same shape).
    pub fn zip_mut(&mut self, other: &Self, f: impl Fn(&mut f32, f32)) {
        assert_eq!(
            self.shape, other.shape,
            "zip_mut shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            f(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));

        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&x| x == 1.0));

        let s = Tensor::scalar(3.5);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn at_indexes_row_major() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_statistics_are_plausible() {
        let mut rng = Rng::seed_from(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
