//! Shape and stride arithmetic shared by the tensor ops.

/// A tensor shape: the extent of each axis, outermost first.
pub type Shape = Vec<usize>;

/// Row-major strides for `shape`: `strides[i]` is the linear-index step for
/// advancing one position along axis `i`.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Total number of elements of `shape` (1 for a scalar / empty shape).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Decomposes a linear row-major index into per-axis coordinates.
#[allow(dead_code)]
pub(crate) fn unravel(mut idx: usize, shape: &[usize], out: &mut [usize]) {
    debug_assert_eq!(shape.len(), out.len());
    for i in (0..shape.len()).rev() {
        out[i] = idx % shape[i];
        idx /= shape[i];
    }
}

/// Recomposes per-axis coordinates into a linear index given `strides`.
#[inline]
#[allow(dead_code)]
pub(crate) fn ravel(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides).map(|(c, s)| c * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn numel_matches_product() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[7, 0]), 0);
    }

    #[test]
    fn unravel_ravel_round_trip() {
        let shape = [2usize, 3, 4];
        let strides = strides_for(&shape);
        let mut coords = [0usize; 3];
        for idx in 0..numel(&shape) {
            unravel(idx, &shape, &mut coords);
            assert_eq!(ravel(&coords, &strides), idx);
        }
    }

    #[test]
    fn unravel_known_values() {
        let mut coords = [0usize; 3];
        unravel(17, &[2, 3, 4], &mut coords);
        // 17 = 1*12 + 1*4 + 1
        assert_eq!(coords, [1, 1, 1]);
    }
}
