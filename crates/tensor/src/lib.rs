#![warn(missing_docs)]

//! # msd-tensor
//!
//! A small, dependency-light ND tensor library used as the compute substrate
//! of the MSD-Mixer reproduction. Tensors are dense, row-major, contiguous
//! `f32` buffers with an explicit shape. The op surface is exactly what the
//! models in this workspace need:
//!
//! * layout ops: [`Tensor::reshape`], [`Tensor::permute`], padding, narrowing,
//!   concatenation;
//! * linear algebra: [`Tensor::matmul`] (2-D and batched), the
//!   transpose-aware [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`], and
//!   fused [`Tensor::linear`] (`x · W + b` over the last axis) — all backed
//!   by the blocked, SIMD-dispatched SGEMM in [`ops::gemm`], parallelised
//!   via [`pool`] (`MSD_NUM_THREADS` caps the workers);
//! * elementwise arithmetic and activations;
//! * reductions along arbitrary axes.
//!
//! Everything is deterministic given an RNG seed; see [`rng`] for the
//! Gaussian sampling helpers used in parameter initialisation and data
//! generation. Matrix products are additionally bit-identical for every
//! thread count and SIMD path (see [`ops::gemm`] for why).

mod shape;
mod tensor;
pub mod fft;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod stats;

pub use ops::kernels::quant::{QuantError, QuantTensor, QuantView};
pub use shape::{strides_for, Shape};
pub use tensor::Tensor;

/// Crate-wide absolute tolerance used by tests and debug assertions when
/// comparing floating point tensors.
pub const TEST_EPS: f32 = 1e-4;

/// Returns `true` when `a` and `b` are elementwise within `tol` of each other
/// (relative to magnitude) and have identical shapes. Intended for tests and
/// validation code, not hot paths.
pub fn allclose(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol + tol * y.abs().max(x.abs()))
}
