//! Small statistical utilities shared across the workspace: autocorrelation
//! and white-noise bounds, as used by the paper's Residual Loss (Sec. III-E)
//! and the Figure 4 case study.

/// Sample autocorrelation coefficients of `series` for lags `1..=max_lag`,
/// following Eq. 5 of the paper:
///
/// `a_j = Σ_{t=j+1..L} (z_t − z̄)(z_{t−j} − z̄) / Σ_t (z_t − z̄)²`
///
/// Returns zeros when the series is (numerically) constant, matching the
/// convention that a constant series carries no autocorrelation signal.
pub fn acf(series: &[f32], max_lag: usize) -> Vec<f32> {
    let l = series.len();
    if l == 0 {
        return vec![0.0; max_lag];
    }
    let mean = series.iter().sum::<f32>() / l as f32;
    let centered: Vec<f64> = series.iter().map(|&z| (z - mean) as f64).collect();
    let denom: f64 = centered.iter().map(|y| y * y).sum();
    if denom < 1e-12 {
        return vec![0.0; max_lag];
    }
    (1..=max_lag)
        .map(|j| {
            if j >= l {
                return 0.0;
            }
            let num: f64 = (j..l).map(|t| centered[t] * centered[t - j]).sum();
            (num / denom) as f32
        })
        .collect()
}

/// The `±2/√L` white-noise band classically used to judge whether
/// autocorrelation coefficients are consistent with white noise.
pub fn white_noise_bound(len: usize) -> f32 {
    2.0 / (len.max(1) as f32).sqrt()
}

/// Fraction of the first `max_lag` autocorrelation coefficients that fall
/// outside the white-noise band — a scalar summary used when reporting the
/// Figure 4 case study.
pub fn acf_violation_rate(series: &[f32], max_lag: usize) -> f32 {
    let bound = white_noise_bound(series.len());
    let coeffs = acf(series, max_lag);
    if coeffs.is_empty() {
        return 0.0;
    }
    coeffs.iter().filter(|a| a.abs() > bound).count() as f32 / coeffs.len() as f32
}

/// Welford's online mean/variance accumulator.
///
/// All arithmetic is sequential `f64`, so the result depends only on the
/// order of `push` calls — never on `MSD_NUM_THREADS` or the kernel tier.
/// That makes it safe to use on the streaming hot path under the repo's
/// replay-determinism contract. `variance` is the *population* variance
/// (`M2 / n`), matching [`crate::stats`]-style normalisation and the
/// `StandardScaler` convention in `msd-data`; it is `0.0` until two samples
/// have been pushed.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` while empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population variance `M2 / n` (`0.0` for fewer than two
    /// observations; never negative).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// `variance().sqrt()`.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_on_random_data() {
        let mut rng = crate::rng::Rng::seed_from(42);
        let xs: Vec<f64> = (0..1000).map(|_| rng.normal() as f64 * 3.0 + 7.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12, "mean {} vs {}", w.mean(), mean);
        assert!((w.variance() - var).abs() < 1e-12, "var {} vs {}", w.variance(), var);
    }

    #[test]
    fn welford_constant_series_has_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..100 {
            w.push(3.25);
        }
        assert_eq!(w.mean(), 3.25);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std(), 0.0);
    }

    #[test]
    fn welford_edge_counts() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(-4.5);
        assert_eq!(w1.count(), 1);
        assert_eq!(w1.mean(), -4.5);
        assert_eq!(w1.variance(), 0.0, "one sample has no spread");
    }

    #[test]
    fn acf_of_constant_is_zero() {
        let s = vec![5.0; 32];
        assert!(acf(&s, 5).iter().all(|&a| a == 0.0));
    }

    #[test]
    fn acf_lag_is_one_for_linear_trend_at_small_lags() {
        // A strongly trending series has ACF near 1 at lag 1.
        let s: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let a = acf(&s, 3);
        assert!(a[0] > 0.9, "lag-1 acf {}", a[0]);
    }

    #[test]
    fn acf_of_alternating_series_is_negative_at_lag_one() {
        let s: Vec<f32> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let a = acf(&s, 2);
        assert!(a[0] < -0.9, "lag-1 acf {}", a[0]);
        assert!(a[1] > 0.9, "lag-2 acf {}", a[1]);
    }

    #[test]
    fn acf_of_period_series_peaks_at_period() {
        let s: Vec<f32> = (0..200)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 10.0).sin())
            .collect();
        let a = acf(&s, 20);
        // Lag 10 (one full period) should be strongly positive; lag 5 negative.
        assert!(a[9] > 0.8, "lag-10 acf {}", a[9]);
        assert!(a[4] < -0.8, "lag-5 acf {}", a[4]);
    }

    #[test]
    fn white_noise_mostly_inside_band() {
        let mut rng = crate::rng::Rng::seed_from(11);
        let s: Vec<f32> = (0..512).map(|_| rng.normal()).collect();
        let rate = acf_violation_rate(&s, 64);
        assert!(rate < 0.15, "violation rate {rate}");
    }

    #[test]
    fn bound_shrinks_with_length() {
        assert!(white_noise_bound(400) < white_noise_bound(100));
        assert!((white_noise_bound(100) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn lags_beyond_length_are_zero() {
        let s = vec![1.0, 2.0, 3.0];
        let a = acf(&s, 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a[3], 0.0);
        assert_eq!(a[4], 0.0);
    }
}
