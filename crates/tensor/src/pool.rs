//! A minimal scoped worker pool for data-parallel kernels (std-only).
//!
//! Work is expressed as a fixed set of tiles, claimed by workers from a
//! shared atomic counter. Because the tile decomposition is chosen by the
//! caller *independently of the thread count*, and every output element is
//! written by exactly one tile with a fixed internal accumulation order,
//! kernels built on this pool produce bit-identical results for every
//! `MSD_NUM_THREADS` setting — threads only change *which worker* runs a
//! tile, never *how* a tile is computed.
//!
//! Threads are spawned per call with [`std::thread::scope`]. That keeps the
//! implementation free of global state and `unsafe`, and lets workers borrow
//! from the caller's stack. Spawn cost (~10 µs/thread) is negligible against
//! the flop threshold at which callers engage the pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count for parallel kernels.
///
/// Reads `MSD_NUM_THREADS` on every call (so tests and applications can
/// re-tune at runtime), falling back to [`std::thread::available_parallelism`].
/// Values are clamped to at least 1; unparsable settings fall back to the
/// default.
pub fn num_threads() -> usize {
    match std::env::var("MSD_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `work(tile)` for every tile index in `0..n_tiles`, using up to
/// `threads` workers. Tiles are claimed dynamically from an atomic counter,
/// so imbalanced tiles do not stall the whole call.
///
/// With `threads <= 1` (or a single tile) everything runs inline on the
/// caller's thread — the sequential path involves no synchronisation at all.
pub fn parallel_tiles<F: Fn(usize) + Sync>(n_tiles: usize, threads: usize, work: F) {
    let threads = threads.min(n_tiles);
    if threads <= 1 {
        for t in 0..n_tiles {
            work(t);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // The calling thread acts as worker 0; spawn the remainder.
        for _ in 1..threads {
            s.spawn(|| {
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n_tiles {
                        break;
                    }
                    work(t);
                }
            });
        }
        loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= n_tiles {
                break;
            }
            work(t);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn every_tile_runs_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let hits: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
            parallel_tiles(hits.len(), threads, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_tiles_is_a_no_op() {
        parallel_tiles(0, 4, |_| panic!("no tiles to run"));
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }
}
