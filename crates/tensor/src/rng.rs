//! Deterministic random number generation.
//!
//! Wraps `rand`'s `StdRng` and adds Box–Muller Gaussian sampling so the
//! workspace does not need an extra distribution crate.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Seedable RNG used throughout the workspace for parameter initialisation,
/// data generation, shuffling, and dropout masks.
pub struct Rng {
    inner: StdRng,
    /// Second Box–Muller sample cached between `normal()` calls.
    spare: Option<f32>,
}

impl Rng {
    /// Creates an RNG from a 64-bit seed. Equal seeds give equal streams.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        let z0 = (r * theta.cos()) as f32;
        let z1 = (r * theta.sin()) as f32;
        self.spare = Some(z1);
        z0
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(3);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements an identity shuffle is astronomically unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
