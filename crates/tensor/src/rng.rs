//! Deterministic random number generation.
//!
//! In-tree xoshiro256++ generator (Blackman & Vigna) seeded through
//! SplitMix64, plus Box–Muller Gaussian sampling, so the workspace carries
//! no external dependency for randomness and builds fully offline. Equal
//! seeds give equal streams on every platform.

/// Seedable RNG used throughout the workspace for parameter initialisation,
/// data generation, shuffling, and dropout masks.
pub struct Rng {
    /// xoshiro256++ state, never all-zero (guaranteed by SplitMix64 seeding).
    s: [u64; 4],
    /// Second Box–Muller sample cached between `normal()` calls.
    spare: Option<f32>,
}

/// The complete serialisable state of an [`Rng`]: the four xoshiro256++
/// words plus the cached Box–Muller spare. Capturing and restoring this
/// state resumes the stream exactly where it left off, which is what makes
/// checkpointed training runs bit-identical to uninterrupted ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngState {
    /// xoshiro256++ state words.
    pub s: [u64; 4],
    /// Pending second Box–Muller sample, if any.
    pub spare: Option<f32>,
}

/// One step of SplitMix64; used only to expand the 64-bit seed into the
/// 256-bit xoshiro state, as recommended by the xoshiro authors.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates an RNG from a 64-bit seed. Equal seeds give equal streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 output is equidistributed, so the state is all-zero
        // with probability 2^-256 — i.e. never in practice — but guard
        // anyway to keep the generator's invariant unconditional.
        let mut s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Self { s, spare: None }
    }

    /// Captures the generator's full state for checkpointing.
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s,
            spare: self.spare,
        }
    }

    /// Rebuilds a generator from a captured [`RngState`], continuing the
    /// stream exactly where [`Rng::state`] observed it.
    ///
    /// An all-zero state word array (impossible to produce via seeding, but
    /// representable in a corrupt checkpoint) is nudged to keep the
    /// generator's never-all-zero invariant.
    pub fn from_state(state: RngState) -> Self {
        let mut s = state.s;
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Self {
            s,
            spare: state.spare,
        }
    }

    /// Next raw 64-bit output of xoshiro256++.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        // Top 24 bits -> all representable multiples of 2^-24 in [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's multiply-shift: unbiased enough for shuffles/sampling
        // (bias < 2^-64 relative), branch-free, and deterministic.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        let z0 = (r * theta.cos()) as f32;
        let z1 = (r * theta.sin()) as f32;
        self.spare = Some(z1);
        z0
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4} produces this sequence
        // (first outputs of the reference C implementation).
        let mut rng = Rng::seed_from(0);
        rng.s = [1, 2, 3, 4];
        rng.spare = None;
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn state_round_trip_resumes_stream_exactly() {
        let mut a = Rng::seed_from(42);
        // Burn an odd number of normal() calls so a spare is cached.
        for _ in 0..7 {
            a.normal();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Mixed-use streams (normal consumes the spare first) also agree.
        let mut a = Rng::seed_from(43);
        a.normal();
        let mut b = Rng::from_state(a.state());
        for _ in 0..16 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.below(13), b.below(13));
        }
    }

    #[test]
    fn from_state_guards_all_zero_words() {
        let mut rng = Rng::from_state(RngState {
            s: [0; 4],
            spare: None,
        });
        // Degenerate state must still generate (xoshiro with all-zero state
        // would be stuck at 0 forever).
        let outs: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(outs.iter().any(|&o| o != 0));
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from(11);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(3);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Rng::seed_from(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements an identity shuffle is astronomically unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
