//! A small iterative radix-2 FFT and periodogram utilities.
//!
//! Used by the TimesNet-lite baseline for dominant-period detection
//! (TimesNet discovers the top-k periods of a series from its amplitude
//! spectrum) and available as a general analysis tool.

use std::f64::consts::PI;

/// In-place iterative radix-2 Cooley–Tukey FFT over interleaved complex
/// `(re, im)` pairs. `data.len()` must be `2 * n` with `n` a power of two.
fn fft_inplace(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    assert_eq!(re.len(), im.len());

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2usize;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cur_r - vi0 * cur_i;
                let vi = vr0 * cur_i + vi0 * cur_r;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Amplitude spectrum of a real series: `|FFT(x)|` for frequency bins
/// `0..=n/2` after zero-padding to the next power of two. Bin `f`
/// corresponds to `f` cycles over the padded length.
pub fn amplitude_spectrum(series: &[f32]) -> Vec<f32> {
    if series.is_empty() {
        return vec![];
    }
    let n = series.len().next_power_of_two();
    let mut re: Vec<f64> = series.iter().map(|&x| x as f64).collect();
    re.resize(n, 0.0);
    let mut im = vec![0.0f64; n];
    fft_inplace(&mut re, &mut im);
    (0..=n / 2)
        .map(|k| ((re[k] * re[k] + im[k] * im[k]).sqrt() / n as f64) as f32)
        .collect()
}

/// The `k` dominant periods of a series (in steps), found as the frequency
/// bins with the largest amplitude (excluding the DC bin), mapped to
/// periods `padded_len / bin`, deduplicated and clamped to `2..=len`.
pub fn dominant_periods(series: &[f32], k: usize) -> Vec<usize> {
    let len = series.len();
    if len < 4 || k == 0 {
        return vec![];
    }
    let spec = amplitude_spectrum(series);
    let padded = (len.next_power_of_two()) as f32;
    let mut bins: Vec<usize> = (1..spec.len()).collect();
    bins.sort_by(|&a, &b| spec[b].total_cmp(&spec[a]));
    let mut periods = Vec::with_capacity(k);
    for bin in bins {
        let period = (padded / bin as f32).round() as usize;
        let period = period.clamp(2, len);
        if !periods.contains(&period) {
            periods.push(period);
            if periods.len() == k {
                break;
            }
        }
    }
    periods
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_of_pure_tone_peaks_at_its_bin() {
        // 8 cycles over 64 samples (power of two: no padding distortion).
        let n = 64;
        let series: Vec<f32> = (0..n)
            .map(|t| (2.0 * std::f32::consts::PI * 8.0 * t as f32 / n as f32).sin())
            .collect();
        let spec = amplitude_spectrum(&series);
        let peak = (1..spec.len())
            .max_by(|&a, &b| spec[a].total_cmp(&spec[b]))
            .unwrap();
        assert_eq!(peak, 8, "peak at bin {peak}");
        // Pure tone amplitude 1 → |X_k|/n = 0.5 at the peak.
        assert!((spec[8] - 0.5).abs() < 0.05, "peak amplitude {}", spec[8]);
    }

    #[test]
    fn spectrum_of_constant_is_dc_only() {
        let spec = amplitude_spectrum(&[3.0; 32]);
        assert!(spec[0] > 2.9);
        assert!(spec[1..].iter().all(|&a| a < 1e-4));
    }

    #[test]
    fn dominant_periods_find_the_planted_cycle() {
        let n = 128;
        let series: Vec<f32> = (0..n)
            .map(|t| {
                (2.0 * std::f32::consts::PI * t as f32 / 16.0).sin()
                    + 0.4 * (2.0 * std::f32::consts::PI * t as f32 / 4.0).sin()
            })
            .collect();
        let periods = dominant_periods(&series, 2);
        assert!(periods.contains(&16), "periods {periods:?}");
        assert!(periods.contains(&4), "periods {periods:?}");
    }

    #[test]
    fn dominant_periods_bounded_and_deduped() {
        let mut rng = crate::rng::Rng::seed_from(3);
        let series: Vec<f32> = (0..100).map(|_| rng.normal()).collect();
        let periods = dominant_periods(&series, 5);
        assert!(periods.len() <= 5);
        for &p in &periods {
            assert!((2..=100).contains(&p));
        }
        let mut dedup = periods.clone();
        dedup.dedup();
        assert_eq!(dedup, periods);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let mut rng = crate::rng::Rng::seed_from(4);
        let n = 16;
        let x: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let spec = amplitude_spectrum(&x);
        // Naive DFT.
        #[allow(clippy::needless_range_loop)]
        for k in 0..=n / 2 {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (t, &v) in x.iter().enumerate() {
                let ang = -2.0 * PI * k as f64 * t as f64 / n as f64;
                re += v as f64 * ang.cos();
                im += v as f64 * ang.sin();
            }
            let mag = ((re * re + im * im).sqrt() / n as f64) as f32;
            assert!(
                (spec[k] - mag).abs() < 1e-4,
                "bin {k}: fft {} vs dft {mag}",
                spec[k]
            );
        }
    }

    #[test]
    fn empty_and_short_inputs_are_safe() {
        assert!(amplitude_spectrum(&[]).is_empty());
        assert!(dominant_periods(&[1.0, 2.0], 3).is_empty());
    }
}
