//! Integration tests for the blocked SGEMM: equality (within one FMA
//! rounding per term) against the naive reference across tile-boundary
//! shapes, bit-identical results for every thread count, and IEEE
//! special-value propagation (the old kernel's zero-skip masked NaN/inf —
//! these are the regression tests for that fix).

use msd_tensor::ops::gemm::{naive_gemm, sgemm_strided, MR, NR};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

fn random(len: usize, rng: &mut Rng) -> Vec<f32> {
    (0..len).map(|_| rng.normal()).collect()
}

/// Comparison against the naive mul-then-add loop: the blocked kernel fuses
/// each multiply-add (FMA), which differs by at most one rounding per term,
/// so the reference match is toleranced. Determinism across thread counts is
/// still asserted bit for bit elsewhere in this file.
fn assert_close(c: &[f32], reference: &[f32], label: &str) {
    assert_eq!(c.len(), reference.len(), "{label}: length");
    for (i, (&x, &y)) in c.iter().zip(reference).enumerate() {
        let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
        assert!((x - y).abs() <= tol, "{label}: element {i}: {x} vs {y}");
    }
}

/// Shapes chosen to hit every packing edge case: unit dims, sub-tile sizes,
/// exact microkernel/tile multiples, one-off-the-boundary sizes, ragged
/// everything, and a k crossing multiple KC slabs.
fn boundary_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (1, 1, 1),
        (1, 1, 2),
        (2, 1, 1),
        (1, 5, 1),
        (3, 2, 5),
        (7, 11, 13),
    ];
    for &m in &[MR - 1, MR, MR + 1, 2 * MR, 96, 97] {
        for &n in &[NR - 1, NR, NR + 1, 2 * NR + 3] {
            shapes.push((m, 9, n));
        }
    }
    // k crossing the KC=256 slab boundary exercises the accumulate path.
    shapes.push((10, 255, 18));
    shapes.push((10, 256, 18));
    shapes.push((10, 257, 18));
    shapes.push((10, 600, 18));
    shapes
}

#[test]
fn matmul_matches_naive_reference() {
    let mut rng = Rng::seed_from(100);
    for (m, k, n) in boundary_shapes() {
        let a = random(m * k, &mut rng);
        let b = random(k * n, &mut rng);
        let c = Tensor::from_vec(&[m, k], a.clone())
            .matmul(&Tensor::from_vec(&[k, n], b.clone()));
        assert_close(
            c.data(),
            &naive_gemm(m, k, n, &a, &b),
            &format!("shape {m}x{k}x{n}"),
        );
    }
}

#[test]
fn batched_and_broadcast_matmul_match_per_batch_naive() {
    let mut rng = Rng::seed_from(101);
    let (bsz, m, k, n) = (5, 7, 9, 11);
    let a = random(bsz * m * k, &mut rng);
    let b2 = random(k * n, &mut rng);
    let bb = random(bsz * k * n, &mut rng);
    let ta = Tensor::from_vec(&[bsz, m, k], a.clone());

    let broadcast = ta.matmul(&Tensor::from_vec(&[k, n], b2.clone()));
    let batched = ta.matmul(&Tensor::from_vec(&[bsz, k, n], bb.clone()));
    for bi in 0..bsz {
        let a_bi = &a[bi * m * k..(bi + 1) * m * k];
        assert_close(
            &broadcast.data()[bi * m * n..(bi + 1) * m * n],
            &naive_gemm(m, k, n, a_bi, &b2),
            &format!("broadcast batch {bi}"),
        );
        assert_close(
            &batched.data()[bi * m * n..(bi + 1) * m * n],
            &naive_gemm(m, k, n, a_bi, &bb[bi * k * n..(bi + 1) * k * n]),
            &format!("batched batch {bi}"),
        );
    }
}

#[test]
fn results_are_bit_identical_for_every_thread_count() {
    // Large enough that the parallel path engages (2·m·n·k > 2^21), ragged
    // enough that tiles of every shape occur.
    let mut rng = Rng::seed_from(102);
    let (m, k, n) = (161, 83, 139);
    let a = Tensor::from_vec(&[m, k], random(m * k, &mut rng));
    let b = Tensor::from_vec(&[k, n], random(k * n, &mut rng));
    let w = Tensor::from_vec(&[n, k], random(n * k, &mut rng));
    let x = Tensor::from_vec(&[m, n], random(m * n, &mut rng));

    let reference = {
        std::env::set_var("MSD_NUM_THREADS", "1");
        (a.matmul(&b), a.matmul_nt(&w), x.matmul_tn(&a), x.linear(&w, None))
    };
    for threads in ["2", "8"] {
        std::env::set_var("MSD_NUM_THREADS", threads);
        assert_eq!(a.matmul(&b), reference.0, "matmul, {threads} threads");
        assert_eq!(a.matmul_nt(&w), reference.1, "matmul_nt, {threads} threads");
        assert_eq!(x.matmul_tn(&a), reference.2, "matmul_tn, {threads} threads");
        assert_eq!(x.linear(&w, None), reference.3, "linear, {threads} threads");
    }
    std::env::remove_var("MSD_NUM_THREADS");
}

#[test]
fn nan_propagates_through_matmul() {
    // Regression: the old kernel skipped a[i][k] == 0.0 terms, so a NaN/inf
    // in B could be silently dropped. IEEE says 0·NaN = NaN and the product
    // must reflect it.
    let a = Tensor::from_vec(&[2, 2], vec![0.0, 1.0, 2.0, 3.0]);
    let b = Tensor::from_vec(&[2, 2], vec![f32::NAN, 1.0, 1.0, 1.0]);
    let c = a.matmul(&b);
    // Row 0: 0·NaN + 1·1 = NaN; row 1: 2·NaN + 3·1 = NaN.
    assert!(c.data()[0].is_nan(), "0·NaN must propagate, got {}", c.data()[0]);
    assert!(c.data()[2].is_nan());
    assert_eq!(c.data()[1], 1.0);
    assert_eq!(c.data()[3], 5.0);
}

#[test]
fn infinity_propagates_through_matmul() {
    let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
    let b = Tensor::from_vec(&[2, 1], vec![f32::INFINITY, 2.0]);
    let c = a.matmul(&b);
    // 0·inf = NaN, NaN + 2 = NaN.
    assert!(c.data()[0].is_nan());
}

#[test]
fn nan_propagates_through_linear() {
    let x = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
    let w = Tensor::from_vec(&[2, 2], vec![f32::NAN, 1.0, 1.0, 1.0]);
    let b = Tensor::from_vec(&[2], vec![0.5, 0.5]);
    let y = x.linear(&w, Some(&b));
    assert!(y.data()[0].is_nan(), "0·NaN must propagate through linear");
    assert_eq!(y.data()[1], 1.5);
}

#[test]
fn nan_lhs_propagates_too() {
    let a = Tensor::from_vec(&[1, 2], vec![f32::NAN, 0.0]);
    let b = Tensor::from_vec(&[2, 1], vec![0.0, 5.0]);
    assert!(a.matmul(&b).data()[0].is_nan());
}

#[test]
fn strided_gemm_handles_degenerate_dims() {
    // m == 0 and n == 0 products are legal no-ops; k == 0 zero-fills.
    let mut c: Vec<f32> = vec![];
    sgemm_strided(0, 3, 4, &[], 3, 1, &[0.0; 12], 4, 1, &mut c);
    let mut c2 = vec![7.0f32; 4];
    sgemm_strided(2, 0, 2, &[], 0, 0, &[], 0, 0, &mut c2);
    assert_eq!(c2, vec![0.0; 4]);
}

#[test]
fn large_square_matches_naive() {
    // One "real" size (crosses MC, KC and NR boundaries simultaneously).
    let mut rng = Rng::seed_from(103);
    let (m, k, n) = (200, 300, 100);
    let a = random(m * k, &mut rng);
    let b = random(k * n, &mut rng);
    let c = Tensor::from_vec(&[m, k], a.clone()).matmul(&Tensor::from_vec(&[k, n], b.clone()));
    assert_close(c.data(), &naive_gemm(m, k, n, &a, &b), "200x300x100");
}
