//! Differential test suite for the kernel dispatch layer.
//!
//! Every dispatched kernel must produce results **bit-identical** to its
//! naive oracle in `msd_tensor::ops::kernels::oracle`, for every SIMD tier
//! (forced via `MSD_KERNEL_FORCE`) and every thread count (forced via
//! `MSD_NUM_THREADS`), over seeded random shapes seeded with NaN and ±inf.
//!
//! Everything runs inside ONE `#[test]` because the sweep mutates process
//! environment variables; Rust runs tests in threads by default, and two
//! tests flipping `MSD_KERNEL_FORCE` concurrently would race.
//!
//! Comparison is on raw bits with ONE carve-out: NaN payload/sign is
//! canonicalised before comparing. When both operands of `x + y` are NaN,
//! IEEE 754 lets the implementation pick either payload, x86 `addss`
//! returns the first operand's, and LLVM freely commutes `fadd` — so two
//! correct compilations of the *same* accumulation order can surface
//! different NaN bits. Whether a value IS NaN, and every non-NaN bit
//! (including ±inf and signed zeros), is still exact.

use msd_tensor::ops::kernels::{self, ew, norm, oracle, quant, reduce};
use msd_tensor::rng::Rng;

/// Raw bits, with every NaN collapsed to the canonical quiet NaN.
fn canon(x: f32) -> u32 {
    if x.is_nan() {
        0x7fc0_0000
    } else {
        x.to_bits()
    }
}

fn assert_bits(label: &str, got: f32, want: f32, ctx: &str) {
    assert!(
        canon(got) == canon(want),
        "{label}: {got:?} ({:#010x}) != oracle {want:?} ({:#010x}) [{ctx}]",
        got.to_bits(),
        want.to_bits()
    );
}

fn assert_slice_bits(label: &str, got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{label} length [{ctx}]");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            canon(*g) == canon(*w),
            "{label}[{i}]: {g:?} ({:#010x}) != oracle {w:?} ({:#010x}) [{ctx}]",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Random data with NaN and ±inf sprinkled in (when `specials` is set).
fn gen(rng: &mut Rng, n: usize, specials: bool) -> Vec<f32> {
    (0..n)
        .map(|_| {
            if specials {
                match rng.below(64) {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    _ => rng.normal() * 3.0,
                }
            } else {
                rng.normal()
            }
        })
        .collect()
}

/// 0/1 mask with roughly 30% zeros.
fn gen_mask(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| if rng.below(10) < 3 { 0.0 } else { 1.0 }).collect()
}

/// Lengths that exercise empty input, sub-lane tails, exact lane groups,
/// block boundaries, and multi-block parallel splits.
const LENS: &[usize] = &[0, 1, 7, 16, 17, 255, 1024, 4096, 4097, 12_288, 70_001];

fn check_reductions(rng: &mut Rng, ctx: &str) {
    for &n in LENS {
        for specials in [false, true] {
            let a = gen(rng, n, specials);
            let b = gen(rng, n, specials);
            let m = gen_mask(rng, n);
            let c = ctx.to_string() + &format!(" n={n} specials={specials}");
            assert_bits("sum", reduce::sum(&a), oracle::sum(&a), &c);
            assert_bits("sumsq", reduce::sumsq(&a), oracle::sumsq(&a), &c);
            assert_bits("dot", reduce::dot(&a, &b), oracle::dot(&a, &b), &c);
            assert_bits("sse", reduce::sse(&a, &b), oracle::sse(&a, &b), &c);
            assert_bits("sad", reduce::sad(&a, &b), oracle::sad(&a, &b), &c);
            assert_bits(
                "centered_sumsq",
                reduce::centered_sumsq(&a, 0.37),
                oracle::centered_sumsq(&a, 0.37),
                &c,
            );
            let (gl, gc) = reduce::masked_sse(&a, &b, &m);
            let (wl, wc) = oracle::masked_sse(&a, &b, &m);
            assert_bits("masked_sse.loss", gl, wl, &c);
            assert_bits("masked_sse.count", gc, wc, &c);
            assert_bits("maxv", reduce::maxv(&a), oracle::maxv(&a), &c);
            assert_bits("minv", reduce::minv(&a), oracle::minv(&a), &c);
        }
    }
}

fn check_elementwise(rng: &mut Rng, ctx: &str) {
    for &n in LENS {
        for specials in [false, true] {
            let a = gen(rng, n, specials);
            let b = gen(rng, n, specials);
            let m = gen_mask(rng, n);
            let c = ctx.to_string() + &format!(" n={n} specials={specials}");
            let mut got = vec![0.0f32; n];
            let mut want = vec![0.0f32; n];
            for op in [ew::Bin::Add, ew::Bin::Sub, ew::Bin::Mul, ew::Bin::Div] {
                ew::binary(op, &a, &b, &mut got);
                oracle::binary(op, &a, &b, &mut want);
                assert_slice_bits("binary", &got, &want, &c);
            }
            got.copy_from_slice(&a);
            want.copy_from_slice(&a);
            ew::axpy(0.5, &b, &mut got);
            oracle::axpy(0.5, &b, &mut want);
            assert_slice_bits("axpy", &got, &want, &c);

            ew::scaled_diff(&a, &b, 1.7, &mut got);
            oracle::scaled_diff(&a, &b, 1.7, &mut want);
            assert_slice_bits("scaled_diff", &got, &want, &c);

            ew::masked_scaled_diff(&a, &b, &m, 1.7, &mut got);
            oracle::masked_scaled_diff(&a, &b, &m, 1.7, &mut want);
            assert_slice_bits("masked_scaled_diff", &got, &want, &c);

            ew::sign_scaled(&a, &b, 0.25, &mut got);
            oracle::sign_scaled(&a, &b, 0.25, &mut want);
            assert_slice_bits("sign_scaled", &got, &want, &c);

            ew::gelu(&a, &mut got);
            oracle::gelu(&a, &mut want);
            assert_slice_bits("gelu", &got, &want, &c);

            ew::gelu_bwd(&a, &b, &mut got);
            oracle::gelu_bwd(&a, &b, &mut want);
            assert_slice_bits("gelu_bwd", &got, &want, &c);
        }
    }
    // add_bias over rows.
    for &(rows, d) in &[(1usize, 8usize), (3, 33), (64, 128), (257, 96)] {
        let base = gen(rng, rows * d, true);
        let bias = gen(rng, d, true);
        let c = ctx.to_string() + &format!(" rows={rows} d={d}");
        let mut got = base.clone();
        let mut want = base.clone();
        ew::add_bias(&mut got, &bias);
        oracle::add_bias(&mut want, &bias);
        assert_slice_bits("add_bias", &got, &want, &c);
    }
}

fn check_norms(rng: &mut Rng, ctx: &str) {
    for &(rows, d) in &[(1usize, 4usize), (2, 16), (5, 33), (64, 128), (300, 96)] {
        let c = ctx.to_string() + &format!(" rows={rows} d={d}");
        let x = gen(rng, rows * d, false);
        let gamma = gen(rng, d, false);
        let beta = gen(rng, d, false);
        let dy = gen(rng, rows * d, false);

        let (mut out_g, mut mean_g, mut rstd_g) =
            (vec![0.0f32; rows * d], vec![0.0f32; rows], vec![0.0f32; rows]);
        let (mut out_w, mut mean_w, mut rstd_w) =
            (vec![0.0f32; rows * d], vec![0.0f32; rows], vec![0.0f32; rows]);
        norm::layernorm_fwd(&x, d, &gamma, &beta, 1e-5, &mut out_g, &mut mean_g, &mut rstd_g);
        oracle::layernorm_fwd(&x, d, &gamma, &beta, 1e-5, &mut out_w, &mut mean_w, &mut rstd_w);
        assert_slice_bits("layernorm_fwd.out", &out_g, &out_w, &c);
        assert_slice_bits("layernorm_fwd.mean", &mean_g, &mean_w, &c);
        assert_slice_bits("layernorm_fwd.rstd", &rstd_g, &rstd_w, &c);

        let (mut dx_g, mut dg_g, mut db_g) =
            (vec![0.0f32; rows * d], vec![0.0f32; d], vec![0.0f32; d]);
        let (mut dx_w, mut dg_w, mut db_w) =
            (vec![0.0f32; rows * d], vec![0.0f32; d], vec![0.0f32; d]);
        norm::layernorm_bwd(&x, d, &gamma, &mean_g, &rstd_g, &dy, &mut dx_g, &mut dg_g, &mut db_g);
        oracle::layernorm_bwd(&x, d, &gamma, &mean_w, &rstd_w, &dy, &mut dx_w, &mut dg_w, &mut db_w);
        assert_slice_bits("layernorm_bwd.dx", &dx_g, &dx_w, &c);
        assert_slice_bits("layernorm_bwd.dgamma", &dg_g, &dg_w, &c);
        assert_slice_bits("layernorm_bwd.dbeta", &db_g, &db_w, &c);

        let mut sm_g = vec![0.0f32; rows * d];
        let mut sm_w = vec![0.0f32; rows * d];
        norm::softmax_rows(&x, d, &mut sm_g);
        oracle::softmax_rows(&x, d, &mut sm_w);
        assert_slice_bits("softmax_rows", &sm_g, &sm_w, &c);
    }
}

fn check_quant(rng: &mut Rng, ctx: &str) {
    for &(rows, k, n) in &[(1usize, 4usize, 3usize), (2, 16, 8), (7, 33, 17), (64, 96, 40)] {
        let c = ctx.to_string() + &format!(" rows={rows} k={k} n={n}");
        let x = gen(rng, rows * k, false);
        let wv = gen(rng, k * n, false);
        let bias = gen(rng, n, false);
        let w = quant::QuantTensor::quantize(&wv, &[k, n]).expect("finite weights");
        for &gelu in &[false, true] {
            for b in [None, Some(bias.as_slice())] {
                let mut got = vec![0.0f32; rows * n];
                let mut want = vec![0.0f32; rows * n];
                quant::linear_i8_into(&x, rows, k, w.view(), b, gelu, &mut got);
                quant::linear_i8_oracle(&x, rows, k, w.view(), b, gelu, &mut want);
                assert_slice_bits(
                    &format!("linear_i8 gelu={gelu} bias={}", b.is_some()),
                    &got,
                    &want,
                    &c,
                );
            }
        }
    }
}

/// Capture whole-run outputs under the CURRENT tier/thread config so the
/// sweep can assert cross-config bit-identity (oracle equality alone is
/// per-config; this pins every config to the exact same bits).
fn fingerprint(rng: &mut Rng) -> Vec<u32> {
    let mut fp = Vec::new();
    let a = gen(rng, 12_345, true);
    let b = gen(rng, 12_345, true);
    let m = gen_mask(rng, 12_345);
    fp.push(canon(reduce::sum(&a)));
    fp.push(canon(reduce::dot(&a, &b)));
    fp.push(canon(reduce::maxv(&a)));
    let (l, c) = reduce::masked_sse(&a, &b, &m);
    fp.push(canon(l));
    fp.push(canon(c));
    let mut out = vec![0.0f32; a.len()];
    ew::gelu(&a, &mut out);
    fp.extend(out.iter().map(|v| canon(*v)));
    let (rows, d) = (96usize, 128usize);
    let x = gen(rng, rows * d, false);
    let gamma = gen(rng, d, false);
    let beta = gen(rng, d, false);
    let (mut o, mut mean, mut rstd) =
        (vec![0.0f32; rows * d], vec![0.0f32; rows], vec![0.0f32; rows]);
    norm::layernorm_fwd(&x, d, &gamma, &beta, 1e-5, &mut o, &mut mean, &mut rstd);
    fp.extend(o.iter().map(|v| canon(*v)));
    // int8 linear: exact integer accumulation means every config must land
    // on identical bits, with no NaN carve-out needed for finite inputs.
    let (rows, k, n) = (48usize, 64usize, 32usize);
    let xa = gen(rng, rows * k, false);
    let wv = gen(rng, k * n, false);
    let bias = gen(rng, n, false);
    let w = quant::QuantTensor::quantize(&wv, &[k, n]).expect("finite weights");
    let mut qo = vec![0.0f32; rows * n];
    quant::linear_i8_into(&xa, rows, k, w.view(), Some(&bias), true, &mut qo);
    fp.extend(qo.iter().map(|v| canon(*v)));
    fp
}

#[test]
fn kernels_match_oracle_across_tiers_and_threads() {
    let saved_force = std::env::var("MSD_KERNEL_FORCE").ok();
    let saved_threads = std::env::var("MSD_NUM_THREADS").ok();

    let mut reference_fp: Option<Vec<u32>> = None;
    for force in ["scalar", "fma", "avx512", "auto"] {
        std::env::set_var("MSD_KERNEL_FORCE", force);
        for threads in ["1", "2", "4"] {
            std::env::set_var("MSD_NUM_THREADS", threads);
            let ctx = format!("force={force} threads={threads} tier={}", kernels::tier().name());
            // Same seed for every config: every config sees identical inputs,
            // so the oracle (and the fingerprint) must agree bit for bit.
            let mut rng = Rng::seed_from(0xC0FFEE);
            check_reductions(&mut rng, &ctx);
            check_elementwise(&mut rng, &ctx);
            check_norms(&mut rng, &ctx);
            check_quant(&mut rng, &ctx);
            let fp = fingerprint(&mut rng);
            match &reference_fp {
                None => reference_fp = Some(fp),
                Some(want) => {
                    assert_eq!(
                        &fp, want,
                        "cross-config fingerprint diverged at {ctx} vs scalar/1-thread"
                    );
                }
            }
        }
    }

    match saved_force {
        Some(v) => std::env::set_var("MSD_KERNEL_FORCE", v),
        None => std::env::remove_var("MSD_KERNEL_FORCE"),
    }
    match saved_threads {
        Some(v) => std::env::set_var("MSD_NUM_THREADS", v),
        None => std::env::remove_var("MSD_NUM_THREADS"),
    }
}
