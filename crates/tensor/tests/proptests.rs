//! Property-based tests for the tensor substrate.

use msd_tensor::{allclose, strides_for, Tensor};
use proptest::prelude::*;

/// A strategy for small shapes of rank 1..=4 with total size <= 256.
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..5)
}

fn tensor_for(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-100.0f32..100.0, n).prop_map(move |data| Tensor::from_vec(&shape, data))
}

fn any_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_for)
}

proptest! {
    #[test]
    fn reshape_flatten_round_trip(t in any_tensor()) {
        let flat = t.reshape(&[t.len()]);
        let back = flat.reshape(t.shape());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn permute_then_inverse_is_identity(t in any_tensor(), seed in any::<u64>()) {
        let nd = t.ndim();
        let mut perm: Vec<usize> = (0..nd).collect();
        // Derive a deterministic permutation from the seed.
        let mut s = seed;
        for i in (1..nd).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut inv = vec![0usize; nd];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        let round = t.permute(&perm).permute(&inv);
        prop_assert_eq!(round, t);
    }

    #[test]
    fn permute_preserves_multiset(t in any_tensor()) {
        let nd = t.ndim();
        let perm: Vec<usize> = (0..nd).rev().collect();
        let p = t.permute(&perm);
        let mut a = t.data().to_vec();
        let mut b = p.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn add_commutes(shape in small_shape(), seed in 0u64..1000) {
        let n: usize = shape.iter().product();
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let a = Tensor::randn(&shape, 1.0, &mut rng);
        let b = Tensor::randn(&shape, 1.0, &mut rng);
        prop_assert!(allclose(&a.add(&b), &b.add(&a), 1e-6));
        let _ = n;
    }

    #[test]
    fn sub_then_add_round_trips(shape in small_shape(), seed in 0u64..1000) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let a = Tensor::randn(&shape, 1.0, &mut rng);
        let b = Tensor::randn(&shape, 1.0, &mut rng);
        prop_assert!(allclose(&a.sub(&b).add(&b), &a, 1e-4));
    }

    #[test]
    fn matmul_matches_naive(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                prop_assert!((c.at(&[i, j]) - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..1000) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let c = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(allclose(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn linear_equals_matmul_on_2d(seed in 0u64..1000) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let x = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 4], 1.0, &mut rng);
        prop_assert!(allclose(&x.linear(&w, None), &x.matmul(&w), 1e-4));
    }

    #[test]
    fn pad_then_narrow_identity(t in any_tensor(), before in 0usize..4, after in 0usize..4) {
        let axis = t.ndim() - 1;
        let padded = t.pad_axis(axis, before, after);
        prop_assert_eq!(padded.narrow(axis, before, t.shape()[axis]), t);
    }

    #[test]
    fn sum_axis_conserves_total(t in any_tensor()) {
        for axis in 0..t.ndim() {
            let s = t.sum_axis(axis);
            prop_assert!((s.sum_all() - t.sum_all()).abs() <= 1e-2 + 1e-4 * t.sum_all().abs());
        }
    }

    #[test]
    fn concat_then_narrow_recovers_parts(seed in 0u64..1000, n1 in 1usize..4, n2 in 1usize..4) {
        let mut rng = msd_tensor::rng::Rng::seed_from(seed);
        let a = Tensor::randn(&[2, n1], 1.0, &mut rng);
        let b = Tensor::randn(&[2, n2], 1.0, &mut rng);
        let c = Tensor::concat(&[&a, &b], 1);
        prop_assert_eq!(c.narrow(1, 0, n1), a);
        prop_assert_eq!(c.narrow(1, n1, n2), b);
    }

    #[test]
    fn strides_match_linear_layout(shape in small_shape()) {
        let strides = strides_for(&shape);
        // Walking the last axis moves by 1; walking axis i moves by the
        // product of inner extents.
        prop_assert_eq!(*strides.last().unwrap(), 1);
        for i in 0..shape.len() - 1 {
            prop_assert_eq!(strides[i], strides[i + 1] * shape[i + 1]);
        }
    }

    #[test]
    fn gelu_between_relu_and_identity_for_positive(x in 0.0f32..10.0) {
        let t = Tensor::scalar(x);
        let g = t.gelu().item();
        prop_assert!(g <= x + 1e-5);
        prop_assert!(g >= 0.5 * x - 1e-5 || x < 1.0);
    }
}
