//! Property-based tests for the tensor substrate.
//!
//! Cases are generated from the in-tree [`msd_tensor::rng::Rng`] by looping
//! over deterministic seeds, so the properties run fully offline with no
//! external property-testing dependency.

use msd_tensor::{allclose, rng::Rng, strides_for, Tensor};

/// A deterministic small shape of rank 1..=4 with dims in 1..6.
fn small_shape(rng: &mut Rng) -> Vec<usize> {
    let rank = 1 + rng.below(4);
    (0..rank).map(|_| 1 + rng.below(5)).collect()
}

fn any_tensor(rng: &mut Rng) -> Tensor {
    let shape = small_shape(rng);
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| 200.0 * rng.uniform() - 100.0).collect();
    Tensor::from_vec(&shape, data)
}

#[test]
fn reshape_flatten_round_trip() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let t = any_tensor(&mut rng);
        let flat = t.reshape(&[t.len()]);
        let back = flat.reshape(t.shape());
        assert_eq!(back, t);
    }
}

#[test]
fn permute_then_inverse_is_identity() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let t = any_tensor(&mut rng);
        let nd = t.ndim();
        let mut perm: Vec<usize> = (0..nd).collect();
        rng.shuffle(&mut perm);
        let mut inv = vec![0usize; nd];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let round = t.permute(&perm).permute(&inv);
        assert_eq!(round, t);
    }
}

#[test]
fn permute_preserves_multiset() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let t = any_tensor(&mut rng);
        let nd = t.ndim();
        let perm: Vec<usize> = (0..nd).rev().collect();
        let p = t.permute(&perm);
        let mut a = t.data().to_vec();
        let mut b = p.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }
}

#[test]
fn add_commutes() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let shape = small_shape(&mut rng);
        let a = Tensor::randn(&shape, 1.0, &mut rng);
        let b = Tensor::randn(&shape, 1.0, &mut rng);
        assert!(allclose(&a.add(&b), &b.add(&a), 1e-6));
    }
}

#[test]
fn sub_then_add_round_trips() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let shape = small_shape(&mut rng);
        let a = Tensor::randn(&shape, 1.0, &mut rng);
        let b = Tensor::randn(&shape, 1.0, &mut rng);
        assert!(allclose(&a.sub(&b).add(&b), &a, 1e-4));
    }
}

#[test]
fn matmul_matches_naive() {
    for seed in 0..128 {
        let mut rng = Rng::seed_from(seed);
        let (m, k, n) = (1 + rng.below(4), 1 + rng.below(4), 1 + rng.below(4));
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                assert!((c.at(&[i, j]) - acc).abs() < 1e-3);
            }
        }
    }
}

#[test]
fn matmul_distributes_over_add() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let c = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert!(allclose(&lhs, &rhs, 1e-3));
    }
}

#[test]
fn linear_equals_matmul_on_2d() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 4], 1.0, &mut rng);
        assert!(allclose(&x.linear(&w, None), &x.matmul(&w), 1e-4));
    }
}

#[test]
fn pad_then_narrow_identity() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let t = any_tensor(&mut rng);
        let (before, after) = (rng.below(4), rng.below(4));
        let axis = t.ndim() - 1;
        let padded = t.pad_axis(axis, before, after);
        assert_eq!(padded.narrow(axis, before, t.shape()[axis]), t);
    }
}

#[test]
fn sum_axis_conserves_total() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let t = any_tensor(&mut rng);
        for axis in 0..t.ndim() {
            let s = t.sum_axis(axis);
            assert!((s.sum_all() - t.sum_all()).abs() <= 1e-2 + 1e-4 * t.sum_all().abs());
        }
    }
}

#[test]
fn concat_then_narrow_recovers_parts() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let (n1, n2) = (1 + rng.below(3), 1 + rng.below(3));
        let a = Tensor::randn(&[2, n1], 1.0, &mut rng);
        let b = Tensor::randn(&[2, n2], 1.0, &mut rng);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.narrow(1, 0, n1), a);
        assert_eq!(c.narrow(1, n1, n2), b);
    }
}

#[test]
fn strides_match_linear_layout() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let shape = small_shape(&mut rng);
        let strides = strides_for(&shape);
        // Walking the last axis moves by 1; walking axis i moves by the
        // product of inner extents.
        assert_eq!(*strides.last().unwrap(), 1);
        for i in 0..shape.len() - 1 {
            assert_eq!(strides[i], strides[i + 1] * shape[i + 1]);
        }
    }
}

#[test]
fn gelu_between_relu_and_identity_for_positive() {
    for seed in 0..256 {
        let mut rng = Rng::seed_from(seed);
        let x = 10.0 * rng.uniform();
        let t = Tensor::scalar(x);
        let g = t.gelu().item();
        assert!(g <= x + 1e-5);
        assert!(g >= 0.5 * x - 1e-5 || x < 1.0);
    }
}
