//! Property-based tests for the baseline models and classical forecasters.

use msd_baselines::ar::ArModel;
use msd_baselines::naive::{moving_average_forecast, naive2, naive_last, seasonal_naive};
use msd_baselines::{Baseline, DLinear, NLinear};
use msd_nn::{Ctx, ParamStore, Task};
use msd_tensor::{rng::Rng, Tensor};
use proptest::prelude::*;

fn history(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.5f32..100.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_forecasts_have_requested_length(h in history(30), horizon in 1usize..20, m in 1usize..12) {
        prop_assert_eq!(naive_last(&h, horizon).len(), horizon);
        prop_assert_eq!(seasonal_naive(&h, horizon, m).len(), horizon);
        prop_assert_eq!(moving_average_forecast(&h, horizon, m).len(), horizon);
        prop_assert_eq!(naive2(&h, horizon, m).len(), horizon);
    }

    #[test]
    fn naive_values_come_from_history_range(h in history(40), horizon in 1usize..10) {
        let lo = h.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = h.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for v in seasonal_naive(&h, horizon, 7) {
            prop_assert!(v >= lo && v <= hi);
        }
        for v in moving_average_forecast(&h, horizon, 5) {
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
        }
    }

    #[test]
    fn naive2_equals_naive_on_aperiodic_noise(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let h: Vec<f32> = (0..60).map(|_| 10.0 + rng.normal().abs()).collect();
        // White-ish positive noise: the seasonality test must rarely fire
        // at the 90% level; when it does not, naive2 == naive.
        let n2 = naive2(&h, 6, 12);
        let n1 = naive_last(&h, 6);
        // Either identical (test not fired) or still positive & bounded.
        if n2 != n1 {
            for v in &n2 {
                prop_assert!(*v > 0.0 && *v < 100.0);
            }
        }
    }

    #[test]
    fn ar_forecast_of_constant_history_is_flat(level in 1.0f32..50.0) {
        let h = vec![level; 64];
        if let Some(model) = ArModel::fit(&h, 2) {
            for v in model.forecast(&h, 5) {
                prop_assert!((v - level).abs() < 0.5);
            }
        }
    }

    #[test]
    fn dlinear_is_deterministic_in_eval(seed in 0u64..300) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(seed);
        let model = DLinear::new(&mut store, &mut rng, 2, 16, Task::Forecast { horizon: 4 });
        let x = Tensor::randn(&[1, 2, 16], 1.0, &mut rng);
        let run = || {
            let g = msd_autograd::Graph::eval();
            let mut r = Rng::seed_from(0);
            let ctx = Ctx::new(&g, &store, &mut r);
            g.value(model.forward(&ctx, &x))
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn nlinear_tracks_level_shifts(seed in 0u64..300, shift in -50.0f32..50.0) {
        // NLinear output moves one-for-one with a constant input shift
        // (for non-classification tasks), by construction.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(seed);
        let model = NLinear::new(&mut store, &mut rng, 1, 12, Task::Forecast { horizon: 3 });
        let x = Tensor::randn(&[1, 1, 12], 1.0, &mut rng);
        let x_shift = x.add_scalar(shift);
        let run = |input: &Tensor| {
            let g = msd_autograd::Graph::eval();
            let mut r = Rng::seed_from(0);
            let ctx = Ctx::new(&g, &store, &mut r);
            g.value(model.forward(&ctx, input))
        };
        let a = run(&x);
        let b = run(&x_shift);
        for (va, vb) in a.data().iter().zip(b.data()) {
            prop_assert!((vb - va - shift).abs() < 1e-2, "{va} vs {vb} shift {shift}");
        }
    }
}
