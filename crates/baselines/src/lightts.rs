//! LightTS-lite (Zhang et al., "Less Is More: Fast Multivariate Time Series
//! Forecasting with Light Sampling-oriented MLP Structures", 2022).
//!
//! Two sampling views of the input are mixed with small MLPs:
//!
//! * **continuous sampling** — non-overlapping chunks `[L/c, c]`, an MLP
//!   over the within-chunk axis captures local detail;
//! * **interval sampling** — the transposed view `[c, L/c]`, an MLP over
//!   the strided axis captures periodic structure.
//!
//! The two views are merged and projected to the task output per channel.

use crate::{task_output_len, Baseline};
use msd_autograd::Var;
use msd_nn::{Ctx, Linear, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// The light sampling MLP baseline.
pub struct LightTs {
    task: Task,
    input_len: usize,
    channels: usize,
    chunk: usize,
    continuous_fc: Linear,
    interval_fc: Linear,
    merge_fc: Linear,
    classify_fc: Option<Linear>,
}

impl LightTs {
    /// Builds LightTS for `[B, channels, input_len]` inputs; the chunk size
    /// is `⌊√L⌋` clipped to divide `L` (falling back to 1).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        // Largest divisor of L not exceeding √L keeps both views balanced.
        let target = (input_len as f32).sqrt() as usize;
        let chunk = (1..=target.max(1))
            .rev()
            .find(|c| input_len.is_multiple_of(*c))
            .unwrap_or(1);
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        let continuous_fc = Linear::new(store, rng, "lightts.cont", chunk, chunk);
        let interval_fc = Linear::new(
            store,
            rng,
            "lightts.interval",
            input_len / chunk,
            input_len / chunk,
        );
        let merge_fc = Linear::new(store, rng, "lightts.merge", 2 * input_len, out_len);
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "lightts.classify",
                channels * out_len,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            channels,
            chunk,
            continuous_fc,
            interval_fc,
            merge_fc,
            classify_fc,
        }
    }
}

impl Baseline for LightTs {
    fn name(&self) -> &'static str {
        "LightTS"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        debug_assert_eq!(c, self.channels);
        debug_assert_eq!(l, self.input_len);
        let n = l / self.chunk;
        let xin = g.input(x.clone());

        // Continuous view: [B, C, n, chunk], MLP over chunk.
        let cont = g.reshape(xin, &[b, c, n, self.chunk]);
        let cont = self.continuous_fc.forward(ctx, cont);
        let cont = g.gelu(cont);
        let cont = g.reshape(cont, &[b, c, l]);

        // Interval view: [B, C, chunk, n], MLP over n (strided samples).
        let intv = g.reshape(xin, &[b, c, n, self.chunk]);
        let intv = g.permute(intv, &[0, 1, 3, 2]);
        let intv = self.interval_fc.forward(ctx, intv);
        let intv = g.gelu(intv);
        let intv = g.permute(intv, &[0, 1, 3, 2]);
        let intv = g.reshape(intv, &[b, c, l]);

        // Merge both views and project.
        let both = g.concat(&[cont, intv], 2); // [B, C, 2L]
        let out = self.merge_fc.forward(ctx, both);
        match &self.task {
            Task::Classify { .. } => {
                let flat = g.reshape(out, &[b, self.channels * self.input_len]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn lightts_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(LightTs::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn lightts_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(LightTs::new(store, rng, c, l, task)),
            120,
            5e-3,
        );
    }

    #[test]
    fn chunk_divides_input_len() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        for l in [24usize, 25, 30, 96, 7] {
            let m = LightTs::new(&mut store, &mut rng, 1, l, Task::Reconstruct);
            assert_eq!(l % m.chunk, 0, "chunk {} does not divide {l}", m.chunk);
            assert!(m.chunk * m.chunk <= l || m.chunk == 1);
        }
    }
}
