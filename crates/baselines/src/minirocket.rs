//! MiniRocket-lite (Dempster et al., KDD 2021) — the fast statistical
//! classification baseline of the paper's Table XI.
//!
//! MiniRocket convolves the series with a fixed set of length-9 kernels
//! whose weights are −1 or 2 (three 2s per kernel), at exponentially
//! spaced dilations, and summarises each convolution by PPV (proportion of
//! positive values) against bias thresholds drawn from the data. A linear
//! classifier on the PPV features does the classification. This lite
//! version keeps that design with a reduced kernel/dilation/bias grid and
//! trains the linear read-out with the workspace's own logistic regression
//! (softmax + cross-entropy).

use msd_autograd::Graph;
use msd_nn::{Adam, Ctx, Linear, Optimizer, ParamStore};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

const KERNEL_LEN: usize = 9;

/// One fixed convolution kernel: positions of the three `2` weights (all
/// other weights are −1), plus a dilation.
#[derive(Clone, Debug)]
struct Kernel {
    two_positions: [usize; 3],
    dilation: usize,
}

/// The fitted transform: kernels plus per-kernel bias thresholds.
pub struct MiniRocket {
    kernels: Vec<Kernel>,
    /// Bias quantiles per kernel (features = kernels × biases).
    biases: Vec<Vec<f32>>,
    channels: usize,
    series_len: usize,
}

/// A trained MiniRocket classifier: transform + linear read-out.
pub struct MiniRocketClassifier {
    transform: MiniRocket,
    store: ParamStore,
    readout: Linear,
}

fn conv_at(series: &[f32], kernel: &Kernel, t: usize) -> f32 {
    let mut acc = 0.0f32;
    let len = series.len();
    for (j, item) in (0..KERNEL_LEN).enumerate() {
        let offset = item * kernel.dilation;
        // Centre the receptive field; clamp at the edges (zero padding).
        let idx = t as isize + offset as isize - (KERNEL_LEN / 2 * kernel.dilation) as isize;
        if idx < 0 || idx as usize >= len {
            continue;
        }
        let w = if kernel.two_positions.contains(&j) {
            2.0
        } else {
            -1.0
        };
        acc += w * series[idx as usize];
    }
    acc
}

impl MiniRocket {
    /// Builds the kernel set and fits bias thresholds on `sample`
    /// (`[N, C, L]`): biases are convolution-output quantiles from a few
    /// training series, as in the reference method.
    pub fn fit(sample: &Tensor, num_kernels: usize, biases_per_kernel: usize) -> Self {
        let (n, c, l) = (sample.shape()[0], sample.shape()[1], sample.shape()[2]);
        // Deterministic kernel grid: enumerate 2-positions patterns and
        // dilations round-robin.
        let mut kernels = Vec::with_capacity(num_kernels);
        let max_dilation = (l / KERNEL_LEN).clamp(1, 16);
        let mut pattern = 0usize;
        while kernels.len() < num_kernels {
            let a = pattern % KERNEL_LEN;
            let b = (pattern / 2 + a + 1) % KERNEL_LEN;
            let c2 = (pattern / 3 + b + 2) % KERNEL_LEN;
            let dilation = 1 + (pattern % max_dilation);
            kernels.push(Kernel {
                two_positions: [a, b, c2],
                dilation,
            });
            pattern += 1;
        }
        // Bias thresholds: per kernel, quantiles of the convolution outputs
        // over a handful of training series (channel 0).
        let probe_count = n.min(8);
        let mut biases = Vec::with_capacity(kernels.len());
        for k in &kernels {
            let mut values = Vec::new();
            for i in 0..probe_count {
                let base = (i * c) * l;
                let row = &sample.data()[base..base + l];
                for t in (0..l).step_by(4) {
                    values.push(conv_at(row, k, t));
                }
            }
            values.sort_by(f32::total_cmp);
            let qs: Vec<f32> = (1..=biases_per_kernel)
                .map(|q| {
                    let idx = q * values.len() / (biases_per_kernel + 1);
                    values[idx.min(values.len() - 1)]
                })
                .collect();
            biases.push(qs);
        }
        Self {
            kernels,
            biases,
            channels: c,
            series_len: l,
        }
    }

    /// Number of output features per series.
    pub fn num_features(&self) -> usize {
        self.kernels
            .iter()
            .zip(&self.biases)
            .map(|(_, b)| b.len())
            .sum::<usize>()
            * self.channels.min(4)
    }

    /// PPV feature vector of one series `[C, L]` (flattened row-major in
    /// the input tensor at `series_idx`).
    fn features_of(&self, x: &Tensor, series_idx: usize) -> Vec<f32> {
        let (c, l) = (self.channels, self.series_len);
        let used_channels = c.min(4); // cap features for wide inputs
        let mut feats = Vec::with_capacity(self.num_features());
        for ch in 0..used_channels {
            let base = (series_idx * c + ch) * l;
            let row = &x.data()[base..base + l];
            for (k, biases) in self.kernels.iter().zip(&self.biases) {
                // Convolve once, then PPV against each bias.
                let mut counts = vec![0usize; biases.len()];
                let mut total = 0usize;
                for t in 0..l {
                    let v = conv_at(row, k, t);
                    for (bi, &b) in biases.iter().enumerate() {
                        if v > b {
                            counts[bi] += 1;
                        }
                    }
                    total += 1;
                }
                for &cnt in &counts {
                    feats.push(cnt as f32 / total as f32);
                }
            }
        }
        feats
    }

    /// Transforms a batch `[N, C, L]` into PPV features `[N, F]`.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        let n = x.shape()[0];
        let f = self.num_features();
        let mut out = Vec::with_capacity(n * f);
        for i in 0..n {
            out.extend(self.features_of(x, i));
        }
        Tensor::from_vec(&[n, f], out)
    }
}

impl MiniRocketClassifier {
    /// Fits the transform on the training set and trains the linear
    /// read-out with softmax cross-entropy.
    pub fn fit(
        train_x: &Tensor,
        train_y: &[usize],
        classes: usize,
        num_kernels: usize,
        epochs: usize,
    ) -> Self {
        let transform = MiniRocket::fit(train_x, num_kernels, 3);
        let feats = transform.transform(train_x);
        let f = feats.shape()[1];
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(97);
        let readout = Linear::new(&mut store, &mut rng, "minirocket.readout", f, classes);
        let mut opt = Adam::with_lr(5e-3);
        let n = train_y.len();
        for _ in 0..epochs {
            for start in (0..n).step_by(64) {
                let end = (start + 64).min(n);
                let batch = feats.narrow(0, start, end - start);
                let labels = &train_y[start..end];
                let g = Graph::new();
                let mut r = Rng::seed_from(0);
                let ctx = Ctx::new(&g, &store, &mut r);
                let logits = readout.forward(&ctx, g.input(batch));
                let loss = g.softmax_cross_entropy(logits, labels);
                let grads = g.backward(loss);
                opt.step(&mut store, &grads);
            }
        }
        Self {
            transform,
            store,
            readout,
        }
    }

    /// Predicts class labels for a batch `[N, C, L]`.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        let feats = self.transform.transform(x);
        let g = Graph::eval();
        let mut r = Rng::seed_from(0);
        let ctx = Ctx::new(&g, &self.store, &mut r);
        let logits = g.value(self.readout.forward(&ctx, g.input(feats)));
        logits.argmax_last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_data::classification_datasets;
    use msd_metrics::accuracy;

    #[test]
    fn ppv_features_are_proportions() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[4, 2, 50], 1.0, &mut rng);
        let mr = MiniRocket::fit(&x, 16, 3);
        let f = mr.transform(&x);
        assert_eq!(f.shape(), &[4, mr.num_features()]);
        assert!(f.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn transform_is_deterministic() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[3, 1, 40], 1.0, &mut rng);
        let mr = MiniRocket::fit(&x, 8, 2);
        assert_eq!(mr.transform(&x), mr.transform(&x));
    }

    #[test]
    fn classifies_an_easy_synthetic_set_above_chance() {
        let spec = msd_data::ClassSpec {
            train_size: 60,
            test_size: 60,
            noise: 0.3,
            ..classification_datasets()
                .into_iter()
                .find(|s| s.name == "CR")
                .unwrap()
        };
        let data = spec.generate();
        let clf = MiniRocketClassifier::fit(&data.train_x, &data.train_y, spec.classes, 48, 20);
        let preds = clf.predict(&data.test_x);
        let acc = accuracy(&preds, &data.test_y);
        let chance = 1.0 / spec.classes as f32;
        assert!(acc > chance * 2.0, "accuracy {acc} vs chance {chance}");
    }

    #[test]
    fn kernels_have_three_two_weights() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 1, 32], 1.0, &mut rng);
        let mr = MiniRocket::fit(&x, 32, 2);
        for k in &mr.kernels {
            assert!(k.two_positions.iter().all(|&p| p < KERNEL_LEN));
            assert!(k.dilation >= 1);
        }
    }
}
