//! Non-learned reference forecasters, including the M4 competition's
//! **Naive2** — the normalisation constant of the OWA metric (Eq. 8).

/// Repeats the last observed value over the horizon (Naive / Naive1).
pub fn naive_last(history: &[f32], horizon: usize) -> Vec<f32> {
    assert!(!history.is_empty(), "naive forecast of empty history");
    vec![*history.last().unwrap(); horizon]
}

/// Seasonal naive: repeats the last observed seasonal cycle of period `m`.
pub fn seasonal_naive(history: &[f32], horizon: usize, m: usize) -> Vec<f32> {
    assert!(!history.is_empty(), "seasonal naive of empty history");
    let m = m.max(1).min(history.len());
    (0..horizon)
        .map(|h| history[history.len() - m + (h % m)])
        .collect()
}

/// Mean of the last `window` observations, held constant over the horizon.
pub fn moving_average_forecast(history: &[f32], horizon: usize, window: usize) -> Vec<f32> {
    assert!(!history.is_empty(), "moving average of empty history");
    let w = window.clamp(1, history.len());
    let mean = history[history.len() - w..].iter().sum::<f32>() / w as f32;
    vec![mean; horizon]
}

/// Classical multiplicative seasonal indices of period `m` via the
/// ratio-to-moving-average method, normalised to mean 1. Returns `None`
/// when the series is too short or non-positive (the multiplicative model
/// needs positive data).
fn seasonal_indices(history: &[f32], m: usize) -> Option<Vec<f32>> {
    if m < 2 || history.len() < 2 * m || history.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let trend = msd_data::decomp::moving_average(history, m);
    let mut sums = vec![0.0f64; m];
    let mut counts = vec![0usize; m];
    for (t, (&x, &tr)) in history.iter().zip(&trend).enumerate() {
        if tr.abs() > 1e-9 {
            sums[t % m] += (x / tr) as f64;
            counts[t % m] += 1;
        }
    }
    let mut idx: Vec<f32> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 1.0 } else { (s / c as f64) as f32 })
        .collect();
    let mean = idx.iter().sum::<f32>() / m as f32;
    if mean <= 0.0 {
        return None;
    }
    for v in &mut idx {
        *v /= mean;
    }
    Some(idx)
}

/// Whether the series is "seasonal enough" for deseasonalisation — the M4
/// 90 % autocorrelation significance test at lag `m`.
fn is_seasonal(history: &[f32], m: usize) -> bool {
    if m < 2 || history.len() <= m + 2 {
        return false;
    }
    let coeffs = msd_tensor::stats::acf(history, m);
    let limit = 1.645 * (1.0 / history.len() as f32).sqrt()
        * (1.0 + 2.0 * coeffs[..m - 1].iter().map(|a| a * a).sum::<f32>()).sqrt();
    coeffs[m - 1].abs() > limit
}

/// The M4 **Naive2** benchmark: seasonally adjust when the seasonality test
/// fires, forecast with the naive method on the adjusted series, and
/// re-apply the seasonal pattern.
pub fn naive2(history: &[f32], horizon: usize, m: usize) -> Vec<f32> {
    assert!(!history.is_empty(), "naive2 of empty history");
    if !is_seasonal(history, m) {
        return naive_last(history, horizon);
    }
    match seasonal_indices(history, m) {
        None => naive_last(history, horizon),
        Some(idx) => {
            let n = history.len();
            let deseason_last = history[n - 1] / idx[(n - 1) % m];
            (0..horizon)
                .map(|h| deseason_last * idx[(n + h) % m])
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        assert_eq!(naive_last(&[1.0, 2.0, 3.0], 3), vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        let h = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(seasonal_naive(&h, 4, 3), vec![4.0, 5.0, 6.0, 4.0]);
    }

    #[test]
    fn moving_average_forecast_is_tail_mean() {
        let h = [0.0, 0.0, 3.0, 5.0];
        assert_eq!(moving_average_forecast(&h, 2, 2), vec![4.0, 4.0]);
    }

    #[test]
    fn naive2_on_nonseasonal_equals_naive() {
        // A noisy trend with no seasonality: the test must not fire.
        let h: Vec<f32> = (0..40)
            .map(|i| 10.0 + 0.1 * i as f32 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let n2 = naive2(&h, 4, 12);
        let n1 = naive_last(&h, 4);
        assert_eq!(n2, n1);
    }

    #[test]
    fn naive2_tracks_seasonal_pattern() {
        // Strongly seasonal positive data: Naive2's forecast must move with
        // the seasonal cycle rather than stay flat.
        let m = 12;
        let h: Vec<f32> = (0..96)
            .map(|i| 50.0 + 20.0 * (std::f32::consts::TAU * i as f32 / m as f32).sin())
            .collect();
        let fcst = naive2(&h, m, m);
        let range = fcst.iter().copied().fold(f32::NEG_INFINITY, f32::max)
            - fcst.iter().copied().fold(f32::INFINITY, f32::min);
        assert!(range > 10.0, "naive2 forecast flat (range {range})");
        // And its SMAPE against the true continuation beats the flat naive.
        let truth: Vec<f32> = (96..96 + m)
            .map(|i| 50.0 + 20.0 * (std::f32::consts::TAU * i as f32 / m as f32).sin())
            .collect();
        let s2 = msd_metrics::smape(&fcst, &truth);
        let s1 = msd_metrics::smape(&naive_last(&h, m), &truth);
        assert!(s2 < s1, "naive2 {s2} should beat naive {s1}");
    }

    #[test]
    fn seasonal_indices_normalised() {
        let m = 4;
        let h: Vec<f32> = (0..48)
            .map(|i| 10.0 + 3.0 * ((i % m) as f32 - 1.5))
            .collect();
        let idx = seasonal_indices(&h, m).unwrap();
        let mean = idx.iter().sum::<f32>() / m as f32;
        assert!((mean - 1.0).abs() < 1e-4);
    }
}
