//! N-BEATS, generic architecture (Oreshkin et al., ICLR 2020): a stack of
//! fully-connected blocks with *doubly residual* connections — each block
//! sees the backcast residual of the previous one and contributes an
//! additive forecast. Channel-independent: channels fold into the batch and
//! share weights, as in the original univariate design.
//!
//! This is the decomposition lineage MSD-Mixer advances (Sec. II): like
//! MSD-Mixer it subtracts per-layer reconstructions from a running
//! residual, but with plain time-axis MLPs and no residual-whiteness
//! constraint.

use crate::{task_output_len, Baseline};
use msd_autograd::Var;
use msd_nn::{Ctx, Linear, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

struct Block {
    hidden: Vec<Linear>,
    backcast_fc: Linear,
    forecast_fc: Linear,
}

/// The generic N-BEATS stack.
pub struct NBeats {
    task: Task,
    input_len: usize,
    channels: usize,
    blocks: Vec<Block>,
    classify_fc: Option<Linear>,
}

impl NBeats {
    /// Builds an N-BEATS stack of `num_blocks` blocks with `hidden`-wide
    /// 3-layer MLPs.
    pub fn with_arch(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
        num_blocks: usize,
        hidden: usize,
    ) -> Self {
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        let blocks = (0..num_blocks)
            .map(|i| {
                let mut layers = Vec::new();
                let mut dim = input_len;
                for j in 0..3 {
                    layers.push(Linear::new(
                        store,
                        rng,
                        &format!("nbeats.b{i}.fc{j}"),
                        dim,
                        hidden,
                    ));
                    dim = hidden;
                }
                Block {
                    hidden: layers,
                    backcast_fc: Linear::new(
                        store,
                        rng,
                        &format!("nbeats.b{i}.backcast"),
                        hidden,
                        input_len,
                    ),
                    forecast_fc: Linear::new(
                        store,
                        rng,
                        &format!("nbeats.b{i}.forecast"),
                        hidden,
                        out_len,
                    ),
                }
            })
            .collect();
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "nbeats.classify",
                channels * out_len,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            channels,
            blocks,
            classify_fc,
        }
    }

    /// Default architecture: 3 blocks, hidden width `4 × input_len` capped
    /// at 256.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        let hidden = (4 * input_len).clamp(32, 256);
        Self::with_arch(store, rng, channels, input_len, task, 3, hidden)
    }
}

impl Baseline for NBeats {
    fn name(&self) -> &'static str {
        "N-BEATS"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        debug_assert_eq!(l, self.input_len);
        // Channel independence: fold channels into the batch.
        let mut residual = g.reshape(g.input(x.clone()), &[b * c, l]);
        let mut forecast: Option<Var> = None;
        for block in &self.blocks {
            let mut h = residual;
            for fc in &block.hidden {
                h = g.relu(fc.forward(ctx, h));
            }
            let backcast = block.backcast_fc.forward(ctx, h);
            let f = block.forecast_fc.forward(ctx, h);
            residual = g.sub(residual, backcast);
            forecast = Some(match forecast {
                Some(acc) => g.add(acc, f),
                None => f,
            });
        }
        let out_len = g.shape_of(forecast.unwrap())[1];
        let out = g.reshape(forecast.unwrap(), &[b, c, out_len]);
        match &self.task {
            Task::Classify { .. } => {
                let flat = g.reshape(out, &[b, self.channels * out_len]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn nbeats_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(NBeats::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn nbeats_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(NBeats::new(store, rng, c, l, task)),
            120,
            2e-3,
        );
    }

    #[test]
    fn channel_independence_shares_weights() {
        // Permuting the channels of the input must permute the output the
        // same way (no cross-channel mixing).
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let model = NBeats::new(&mut store, &mut rng, 2, 16, Task::Forecast { horizon: 4 });
        let mut a = Tensor::randn(&[1, 2, 16], 1.0, &mut rng);
        let run = |m: &NBeats, x: &Tensor, store: &ParamStore| {
            let g = msd_autograd::Graph::eval();
            let mut r = Rng::seed_from(0);
            let ctx = Ctx::new(&g, store, &mut r);
            g.value(m.forward(&ctx, x))
        };
        let out_a = run(&model, &a, &store);
        // Swap the two channels.
        let data = a.data_mut();
        for t in 0..16 {
            data.swap(t, 16 + t);
        }
        let out_b = run(&model, &a, &store);
        for t in 0..4 {
            assert!((out_a.at(&[0, 0, t]) - out_b.at(&[0, 1, t])).abs() < 1e-5);
            assert!((out_a.at(&[0, 1, t]) - out_b.at(&[0, 0, t])).abs() < 1e-5);
        }
    }
}
