//! PatchTST-lite (Nie et al., "A Time Series is Worth 64 Words", ICLR
//! 2023): channel-independent patch tokens fed to a small pre-norm
//! Transformer encoder. Scaled down (2 layers, d=32 by default) but
//! architecturally faithful: patching, learned positional embeddings,
//! multi-head self-attention, GELU feed-forward, residual connections and
//! layer norm.

use crate::{task_output_len, Baseline};
use msd_autograd::{ParamId, Var};
use msd_nn::{Ctx, LayerNorm, Linear, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

struct EncoderLayer {
    ln1: LayerNorm,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

/// The PatchTST-lite model.
pub struct PatchTst {
    task: Task,
    input_len: usize,
    channels: usize,
    patch_len: usize,
    num_patches: usize,
    d_model: usize,
    heads: usize,
    embed: Linear,
    pos: ParamId,
    layers: Vec<EncoderLayer>,
    head_fc: Linear,
    classify_fc: Option<Linear>,
}

impl PatchTst {
    /// Builds PatchTST-lite with explicit architecture knobs.
    #[allow(clippy::too_many_arguments)]
    pub fn with_arch(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
        patch_len: usize,
        d_model: usize,
        heads: usize,
        depth: usize,
    ) -> Self {
        assert!(d_model.is_multiple_of(heads), "d_model must divide into heads");
        let patch_len = patch_len.clamp(1, input_len);
        let num_patches = input_len.div_ceil(patch_len);
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        let embed = Linear::new(store, rng, "ptst.embed", patch_len, d_model);
        let pos = store.register(
            "ptst.pos",
            Tensor::randn(&[num_patches * d_model], 0.02, rng),
        );
        let layers = (0..depth)
            .map(|i| EncoderLayer {
                ln1: LayerNorm::new(store, &format!("ptst.l{i}.ln1"), d_model),
                wq: Linear::new(store, rng, &format!("ptst.l{i}.wq"), d_model, d_model),
                wk: Linear::new(store, rng, &format!("ptst.l{i}.wk"), d_model, d_model),
                wv: Linear::new(store, rng, &format!("ptst.l{i}.wv"), d_model, d_model),
                wo: Linear::new(store, rng, &format!("ptst.l{i}.wo"), d_model, d_model),
                ln2: LayerNorm::new(store, &format!("ptst.l{i}.ln2"), d_model),
                ff1: Linear::new(store, rng, &format!("ptst.l{i}.ff1"), d_model, 2 * d_model),
                ff2: Linear::new(store, rng, &format!("ptst.l{i}.ff2"), 2 * d_model, d_model),
            })
            .collect();
        let head_fc = Linear::new(
            store,
            rng,
            "ptst.head",
            num_patches * d_model,
            out_len,
        );
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "ptst.classify",
                channels * d_model,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            channels,
            patch_len,
            num_patches,
            d_model,
            heads,
            embed,
            pos,
            layers,
            head_fc,
            classify_fc,
        }
    }

    /// Default architecture: patch length `max(L/6, 4)`, d=32, 4 heads,
    /// 2 encoder layers.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        let patch_len = (input_len / 6).max(4).min(input_len);
        Self::with_arch(store, rng, channels, input_len, task, patch_len, 32, 4, 2)
    }

    /// Multi-head self-attention over tokens `[B', N, d]`.
    fn attention(&self, ctx: &Ctx, layer: &EncoderLayer, x: Var, bprime: usize) -> Var {
        let g = ctx.g;
        let (n, d, h) = (self.num_patches, self.d_model, self.heads);
        let dh = d / h;
        let split = |v: Var| -> Var {
            // [B', N, d] → [B'*h, N, dh]
            let v = g.reshape(v, &[bprime, n, h, dh]);
            let v = g.permute(v, &[0, 2, 1, 3]);
            g.reshape(v, &[bprime * h, n, dh])
        };
        let q = split(layer.wq.forward(ctx, x));
        let k = split(layer.wk.forward(ctx, x));
        let v = split(layer.wv.forward(ctx, x));
        let kt = g.permute(k, &[0, 2, 1]); // [B'*h, dh, N]
        let scores = g.scale(g.matmul(q, kt), 1.0 / (dh as f32).sqrt());
        let attn = g.softmax_last(scores);
        let mixed = g.matmul(attn, v); // [B'*h, N, dh]
        // Back to [B', N, d].
        let mixed = g.reshape(mixed, &[bprime, h, n, dh]);
        let mixed = g.permute(mixed, &[0, 2, 1, 3]);
        let mixed = g.reshape(mixed, &[bprime, n, d]);
        layer.wo.forward(ctx, mixed)
    }
}

impl Baseline for PatchTst {
    fn name(&self) -> &'static str {
        "PatchTST"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        debug_assert_eq!(l, self.input_len);
        let bprime = b * c;
        let padded_len = self.num_patches * self.patch_len;

        // Channel-independent patch tokens.
        let mut tokens = g.reshape(g.input(x.clone()), &[bprime, l]);
        if padded_len != l {
            tokens = g.pad_axis(tokens, 1, padded_len - l, 0);
        }
        let tokens = g.reshape(tokens, &[bprime, self.num_patches, self.patch_len]);
        let mut hidden = self.embed.forward(ctx, tokens); // [B', N, d]

        // Learned positional embedding, broadcast over the batch by adding
        // along the flattened (N·d) trailing axis.
        let flat = g.reshape(hidden, &[bprime, self.num_patches * self.d_model]);
        let flat = g.add_bcast_last(flat, ctx.p(self.pos));
        hidden = g.reshape(flat, &[bprime, self.num_patches, self.d_model]);

        // Pre-norm Transformer encoder.
        for layer in &self.layers {
            let normed = layer.ln1.forward(ctx, hidden);
            let attn = self.attention(ctx, layer, normed, bprime);
            hidden = g.add(hidden, attn);
            let normed = layer.ln2.forward(ctx, hidden);
            let ff = layer.ff2.forward(ctx, g.gelu(layer.ff1.forward(ctx, normed)));
            hidden = g.add(hidden, ff);
        }

        match &self.task {
            Task::Classify { .. } => {
                // Mean-pool tokens, concat channels, project.
                let pooled = g.mean_axis(hidden, 1); // [B', d]
                let flat = g.reshape(pooled, &[b, self.channels * self.d_model]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => {
                let flat = g.reshape(hidden, &[bprime, self.num_patches * self.d_model]);
                let out = self.head_fc.forward(ctx, flat); // [B', out_len]
                let out_len = g.shape_of(out)[1];
                g.reshape(out, &[b, c, out_len])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn patchtst_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(PatchTst::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn patchtst_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(PatchTst::new(store, rng, c, l, task)),
            150,
            2e-3,
        );
    }

    #[test]
    fn attention_is_permutation_sensitive_via_positions() {
        // With positional embeddings, reversing the input sequence must
        // change the forecast (the model is not order-blind).
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let model = PatchTst::new(&mut store, &mut rng, 1, 24, Task::Forecast { horizon: 6 });
        let x: Vec<f32> = (0..24).map(|i| (i as f32 / 3.0).sin()).collect();
        let fwd = Tensor::from_vec(&[1, 1, 24], x.clone());
        let rev = Tensor::from_vec(&[1, 1, 24], x.into_iter().rev().collect());
        let run = |input: &Tensor| {
            let g = msd_autograd::Graph::eval();
            let mut r = Rng::seed_from(0);
            let ctx = Ctx::new(&g, &store, &mut r);
            g.value(model.forward(&ctx, input))
        };
        let a = run(&fwd);
        let b = run(&rev);
        assert!(!msd_tensor::allclose(&a, &b, 1e-4), "order-blind transformer");
    }

    #[test]
    fn handles_non_divisible_lengths() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        // L=25, patch 4 → 7 patches with padding.
        let model = PatchTst::with_arch(
            &mut store,
            &mut rng,
            2,
            25,
            Task::Forecast { horizon: 5 },
            4,
            16,
            2,
            1,
        );
        let x = Tensor::randn(&[2, 2, 25], 1.0, &mut rng);
        let g = msd_autograd::Graph::eval();
        let mut r = Rng::seed_from(0);
        let ctx = Ctx::new(&g, &store, &mut r);
        let y = model.forward(&ctx, &x);
        assert_eq!(g.shape_of(y), vec![2, 2, 5]);
    }
}
