//! NLinear (Zeng et al., AAAI 2023): subtract the last observed value,
//! apply one linear map over the time axis, add the value back. The
//! last-value normalisation makes it robust to level shifts, which is why
//! it is strong on nonstationary data such as Exchange.

use crate::{task_output_len, Baseline};
use msd_autograd::Var;
use msd_nn::{Ctx, Linear, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// The NLinear model.
pub struct NLinear {
    task: Task,
    input_len: usize,
    out_len: usize,
    channels: usize,
    fc: Linear,
    classify_fc: Option<Linear>,
}

impl NLinear {
    /// Builds NLinear for `[B, channels, input_len]` inputs.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        let fc = Linear::new(store, rng, "nlinear.fc", input_len, out_len);
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "nlinear.classify",
                channels * out_len,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            out_len,
            channels,
            fc,
            classify_fc,
        }
    }

    /// Last-value decomposition (parameter-free, outside the tape):
    /// `centered = x - last` and the per-row last value broadcast to the
    /// output length, shaped `[B, C, out_len]`.
    fn centered_and_offset(&self, x: &Tensor) -> (Tensor, Tensor) {
        let l = self.input_len;
        let rows = x.len() / l;
        let mut centered = x.clone();
        let mut offset = Tensor::zeros(&[x.shape()[0], x.shape()[1], self.out_len]);
        for r in 0..rows {
            let lv = x.data()[r * l + l - 1];
            for v in &mut centered.data_mut()[r * l..(r + 1) * l] {
                *v -= lv;
            }
            for v in &mut offset.data_mut()[r * self.out_len..(r + 1) * self.out_len] {
                *v = lv;
            }
        }
        (centered, offset)
    }
}

impl Baseline for NLinear {
    fn name(&self) -> &'static str {
        "NLinear"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let b = x.shape()[0];
        debug_assert_eq!(x.shape()[2], self.input_len);
        let (centered, offset) = self.centered_and_offset(x);
        let out = self.fc.forward(ctx, g.input(centered));
        // Add the last value back (except for classification logits). The
        // offset enters as an input leaf — not an op payload — so compiled
        // plans can rebind it per batch; `add` on a no-grad leaf runs the
        // exact kernel `add_const` did.
        let restored = g.add(out, g.input(offset));
        match &self.task {
            Task::Classify { .. } => {
                let flat = g.reshape(restored, &[b, self.channels * self.out_len]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => restored,
        }
    }

    fn plan_prelude(&self, x: &Tensor) -> Vec<Tensor> {
        let (centered, offset) = self.centered_and_offset(x);
        vec![centered, offset]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn nlinear_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(NLinear::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn nlinear_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(NLinear::new(store, rng, c, l, task)),
            100,
            5e-3,
        );
    }

    #[test]
    fn level_shift_invariance_at_init() {
        // With zero weights the model predicts exactly the last value, so a
        // level shift moves predictions by the same amount.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(6);
        let model = NLinear::new(&mut store, &mut rng, 1, 8, Task::Forecast { horizon: 3 });
        // Zero out the weights to isolate the offset path.
        for i in 0..store.len() {
            let t = store.get_mut(i);
            let z = Tensor::zeros(t.shape());
            *t = z;
        }
        let x1 = Tensor::from_vec(&[1, 1, 8], (0..8).map(|i| i as f32).collect());
        let x2 = x1.add_scalar(100.0);
        let run = |x: &Tensor| {
            let g = msd_autograd::Graph::eval();
            let mut r = Rng::seed_from(0);
            let ctx = Ctx::new(&g, &store, &mut r);
            g.value(model.forward(&ctx, x))
        };
        let y1 = run(&x1);
        let y2 = run(&x2);
        assert_eq!(y1.data()[0], 7.0);
        assert_eq!(y2.data()[0], 107.0);
    }
}
