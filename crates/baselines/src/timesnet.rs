//! TimesNet-lite (Wu et al., "TimesNet: Temporal 2D-Variation Modeling for
//! General Time Series Analysis", ICLR 2023) — the paper's strongest
//! task-general baseline.
//!
//! TimesNet discovers the top-k dominant periods of the input via FFT,
//! folds the 1-D series into a 2-D `[period × cycles]` layout per period,
//! models intra-period and inter-period variation with 2-D kernels, and
//! aggregates the per-period branches weighted by their spectral amplitude.
//! This lite version keeps that exact structure but replaces the inception
//! convolutions with the workspace's MLP blocks (one over the intra-period
//! axis, one over the inter-period axis) — same inductive bias, far fewer
//! moving parts.
//!
//! Period detection runs on the *data* (not inside the autograd graph),
//! matching the reference implementation where the FFT step is
//! gradient-free.

use crate::{task_output_len, Baseline};
use msd_autograd::Var;
use msd_nn::{Ctx, Linear, MlpBlock, ParamStore, Task};
use msd_tensor::fft::dominant_periods;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// One period-branch: MLP blocks over the folded 2-D layout at a fixed
/// period.
struct PeriodBranch {
    period: usize,
    cycles: usize,
    intra: MlpBlock,
    inter: MlpBlock,
}

/// The TimesNet-lite model.
pub struct TimesNet {
    task: Task,
    input_len: usize,
    channels: usize,
    branches: Vec<PeriodBranch>,
    /// Spectral weights for aggregating branches, recomputed per batch.
    head_fc: Linear,
    classify_fc: Option<Linear>,
}

impl TimesNet {
    /// Builds TimesNet-lite with `k` period branches. Periods are detected
    /// once from a probe series drawn from the model's RNG-free assumption
    /// that training data shares its dominant periods; pass the training
    /// data's typical periods via `periods` when known.
    pub fn with_periods(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
        periods: &[usize],
    ) -> Self {
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        let branches = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let p = p.clamp(2, input_len);
                let cycles = input_len.div_ceil(p);
                PeriodBranch {
                    period: p,
                    cycles,
                    intra: MlpBlock::new(
                        store,
                        rng,
                        &format!("timesnet.b{i}.intra"),
                        p,
                        (2 * p).max(4),
                        0.0,
                    ),
                    inter: MlpBlock::new(
                        store,
                        rng,
                        &format!("timesnet.b{i}.inter"),
                        cycles,
                        (2 * cycles).max(4),
                        0.0,
                    ),
                }
            })
            .collect();
        let head_fc = Linear::new(store, rng, "timesnet.head", input_len, out_len);
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "timesnet.classify",
                channels * out_len,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            channels,
            branches,
            head_fc,
            classify_fc,
        }
    }

    /// Default: periods detected from a seasonal prior — callers that know
    /// the data should use [`TimesNet::from_data`].
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        // Generic multi-scale prior: quarters and eighths of the window.
        let periods = [input_len / 4, input_len / 8, input_len / 2]
            .into_iter()
            .map(|p| p.max(2))
            .collect::<Vec<_>>();
        Self::with_periods(store, rng, channels, input_len, task, &periods)
    }

    /// Builds the model with periods detected from sample training data
    /// `[C, T]` via the FFT periodogram — TimesNet's period-discovery step.
    pub fn from_data(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
        sample: &Tensor,
        k: usize,
    ) -> Self {
        let t = sample.shape()[sample.ndim() - 1];
        // Average the channel spectra by probing channel 0 and the middle
        // channel (cheap, representative).
        let row0 = &sample.data()[..t.min(4096)];
        let mut periods = dominant_periods(row0, k);
        if periods.is_empty() {
            periods = vec![input_len / 4];
        }
        // Periods longer than the window fold to a single cycle; clamp.
        for p in &mut periods {
            *p = (*p).clamp(2, input_len);
        }
        periods.dedup();
        Self::with_periods(store, rng, channels, input_len, task, &periods)
    }

    /// The branch periods in use.
    pub fn periods(&self) -> Vec<usize> {
        self.branches.iter().map(|b| b.period).collect()
    }
}

impl Baseline for TimesNet {
    fn name(&self) -> &'static str {
        "TimesNet"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        debug_assert_eq!(l, self.input_len);
        // Spectral weights per branch from the batch's mean amplitude at
        // each branch period (TimesNet's amplitude-weighted aggregation).
        let weights: Vec<f32> = {
            let probe = &x.data()[..l]; // first row is representative enough
            let spec = msd_tensor::fft::amplitude_spectrum(probe);
            let padded = l.next_power_of_two() as f32;
            let mut w: Vec<f32> = self
                .branches
                .iter()
                .map(|br| {
                    let bin = (padded / br.period as f32).round() as usize;
                    spec.get(bin.min(spec.len() - 1)).copied().unwrap_or(0.0) + 1e-3
                })
                .collect();
            let sum: f32 = w.iter().sum();
            for v in &mut w {
                *v /= sum;
            }
            w
        };

        let xin = g.input(x.clone());
        let mut combined: Option<Var> = None;
        for (br, &w) in self.branches.iter().zip(&weights) {
            let padded_len = br.cycles * br.period;
            let padded = if padded_len == l {
                xin
            } else {
                g.pad_axis(xin, 2, padded_len - l, 0)
            };
            // Fold to 2-D: [B, C, cycles, period].
            let folded = g.reshape(padded, &[b, c, br.cycles, br.period]);
            // Intra-period variation (within one cycle).
            let h = br.intra.forward(ctx, folded);
            // Inter-period variation (across cycles).
            let h = g.permute(h, &[0, 1, 3, 2]);
            let h = br.inter.forward(ctx, h);
            let h = g.permute(h, &[0, 1, 3, 2]);
            // Unfold and strip the padding.
            let flat = g.reshape(h, &[b, c, padded_len]);
            let flat = if padded_len == l {
                flat
            } else {
                g.narrow(flat, 2, padded_len - l, l)
            };
            let weighted = g.scale(flat, w);
            combined = Some(match combined {
                Some(acc) => g.add(acc, weighted),
                None => weighted,
            });
        }
        // Residual connection around the 2-D modeling, then project.
        let features = g.add(combined.expect("at least one branch"), xin);
        let out = self.head_fc.forward(ctx, features);
        match &self.task {
            Task::Classify { .. } => {
                let out_len = g.shape_of(out)[2];
                let flat = g.reshape(out, &[b, self.channels * out_len]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn timesnet_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(TimesNet::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn timesnet_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(TimesNet::new(store, rng, c, l, task)),
            150,
            2e-3,
        );
    }

    #[test]
    fn from_data_detects_planted_period() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(8);
        let t = 512;
        let sample = Tensor::from_vec(
            &[1, t],
            (0..t)
                .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 16.0).sin())
                .collect(),
        );
        let model = TimesNet::from_data(
            &mut store,
            &mut rng,
            1,
            64,
            Task::Forecast { horizon: 8 },
            &sample,
            3,
        );
        assert!(
            model.periods().contains(&16),
            "periods {:?} should contain 16",
            model.periods()
        );
    }

    #[test]
    fn oversized_periods_are_clamped() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(9);
        let model = TimesNet::with_periods(
            &mut store,
            &mut rng,
            2,
            24,
            Task::Reconstruct,
            &[500, 3],
        );
        assert_eq!(model.periods(), vec![24, 3]);
    }
}
