#![warn(missing_docs)]

//! # msd-baselines
//!
//! From-scratch implementations of the baseline models the MSD-Mixer paper
//! compares against (Sec. IV), built on the same tensor/autograd/nn
//! substrate so every comparison exercises identical machinery:
//!
//! * [`DLinear`] — series decomposition + per-component linear maps
//!   (Zeng et al. 2023);
//! * [`NLinear`] — last-value normalised linear map (same paper);
//! * [`LightTs`] — light sampling-oriented MLP (Zhang et al. 2022);
//! * [`NBeats`] — doubly-residual generic basis expansion (Oreshkin et al.
//!   2020), channel-independent;
//! * [`NHits`] — hierarchical interpolation with multi-rate pooling
//!   (Challu et al. 2023), channel-independent;
//! * [`PatchTst`] — patch tokens + channel-independent Transformer encoder
//!   (Nie et al. 2023), scaled down;
//! * [`TimesNet`] — TimesNet-lite: FFT period discovery + folded 2-D
//!   mixing (Wu et al. 2023), the paper's strongest task-general baseline;
//! * [`naive`] — non-learned reference forecasters, including the M4
//!   competition's Naive2 used by the OWA metric;
//! * [`ar`] — classical AR(p) least-squares forecasting;
//! * [`ets`] — exponential smoothing (SES / Holt / additive Holt–Winters);
//! * [`MiniRocket`] — the fast statistical classification transform
//!   (Dempster et al. 2021), a Table XI task-specific baseline.
//!
//! All learned baselines implement [`Baseline`], take `[B, C, L]` inputs,
//! and support the same three head shapes as MSD-Mixer (forecast /
//! reconstruct / classify) so the harness can train them on all five tasks.

mod dlinear;
mod lightts;
mod minirocket;
mod nbeats;
mod nbeats_interp;
mod nlinear;
mod nhits;
pub mod ar;
pub mod ets;
pub mod naive;
mod patchtst;
mod timesnet;

use msd_autograd::Var;
use msd_nn::{Ctx, Model, ModelOutput, Task};
use msd_tensor::Tensor;

pub use dlinear::DLinear;
pub use lightts::LightTs;
pub use minirocket::{MiniRocket, MiniRocketClassifier};
pub use nbeats::NBeats;
pub use nbeats_interp::{InterpretableForecast, NBeatsInterpretable};
pub use nlinear::NLinear;
pub use nhits::NHits;
pub use patchtst::PatchTst;
pub use timesnet::TimesNet;

/// A trainable baseline: one forward pass from a `[B, C, L]` batch to the
/// task output (`[B, C, H]`, `[B, C, L]`, or `[B, classes]`).
pub trait Baseline {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// The task this instance was built for.
    fn task(&self) -> &Task;

    /// Builds the forward computation for a batch.
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var;

    /// Input-derived tensors the forward pushes as non-parameter leaves, in
    /// push order — the contract of [`msd_nn::Model::plan_prelude`]. Models
    /// that decompose the input outside the tape (DLinear's moving average,
    /// NLinear's last-value offset) override this so their eval forwards
    /// stay compilable into inference plans.
    fn plan_prelude(&self, x: &Tensor) -> Vec<Tensor> {
        vec![x.clone()]
    }
}

/// Implements the unified [`msd_nn::Model`] trait for a learned baseline by
/// delegating to its [`Baseline`] impl. A macro (rather than a blanket
/// `impl<T: Baseline> Model for T`) because `Model` is a foreign trait, so
/// the orphan rule requires one impl per local type.
macro_rules! impl_model_for_baseline {
    ($($ty:ty),+ $(,)?) => {$(
        impl Model for $ty {
            fn name(&self) -> &str {
                Baseline::name(self)
            }
            fn task(&self) -> &Task {
                Baseline::task(self)
            }
            fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
                ModelOutput::pred_only(Baseline::forward(self, ctx, x))
            }
            fn plan_prelude(&self, x: &Tensor) -> Vec<Tensor> {
                Baseline::plan_prelude(self, x)
            }
        }
    )+};
}

impl_model_for_baseline!(DLinear, NLinear, LightTs, NBeats, NHits, PatchTst, TimesNet);

/// Output length for a task over inputs of length `input_len`.
pub(crate) fn task_output_len(task: &Task, input_len: usize) -> usize {
    match task {
        Task::Forecast { horizon } => *horizon,
        Task::Reconstruct => input_len,
        Task::Classify { .. } => panic!("classification has no per-channel output length"),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use msd_autograd::Graph;
    use msd_nn::{Adam, Optimizer, ParamStore};
    use msd_tensor::rng::Rng;

    /// Runs shape checks and one training step for a baseline on all tasks.
    pub fn exercise_baseline<F>(build: F)
    where
        F: Fn(&mut ParamStore, &mut Rng, usize, usize, Task) -> Box<dyn Baseline>,
    {
        let (c, l) = (3usize, 24usize);
        for task in [
            Task::Forecast { horizon: 12 },
            Task::Reconstruct,
            Task::Classify { classes: 4 },
        ] {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from(77);
            let model = build(&mut store, &mut rng, c, l, task.clone());
            let x = Tensor::randn(&[2, c, l], 1.0, &mut rng);
            let g = Graph::new();
            let mut rng2 = Rng::seed_from(78);
            let ctx = Ctx::new(&g, &store, &mut rng2);
            let pred = model.forward(&ctx, &x);
            let shape = g.shape_of(pred);
            match &task {
                Task::Forecast { horizon } => assert_eq!(shape, vec![2, c, *horizon]),
                Task::Reconstruct => assert_eq!(shape, vec![2, c, l]),
                Task::Classify { classes } => assert_eq!(shape, vec![2, *classes]),
            }
            // One training step must produce finite loss and update params.
            let loss = match &task {
                Task::Classify { .. } => g.softmax_cross_entropy(pred, &[0, 1]),
                _ => {
                    let target = Tensor::zeros(&shape);
                    g.mse_loss(pred, &target)
                }
            };
            assert!(g.value(loss).item().is_finite(), "{} loss", model.name());
            let grads = g.backward(loss);
            assert!(!grads.is_empty(), "{} produced no gradients", model.name());
            let mut opt = Adam::with_lr(1e-3);
            opt.step(&mut store, &grads);
        }
    }

    /// Trains a forecasting baseline briefly on a learnable sine task and
    /// asserts the loss drops.
    pub fn check_learns<F>(build: F, steps: usize, lr: f32)
    where
        F: Fn(&mut ParamStore, &mut Rng, usize, usize, Task) -> Box<dyn Baseline>,
    {
        let (c, l, h) = (2usize, 24usize, 8usize);
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(79);
        let model = build(&mut store, &mut rng, c, l, Task::Forecast { horizon: h });
        let mut opt = Adam::with_lr(lr);
        let mk = |phase: f32| {
            let xs: Vec<f32> = (0..c * l)
                .map(|i| ((i % l) as f32 / 3.0 + phase).sin())
                .collect();
            let ys: Vec<f32> = (0..c * h)
                .map(|i| (((i % h) + l) as f32 / 3.0 + phase).sin())
                .collect();
            (
                Tensor::from_vec(&[1, c, l], xs),
                Tensor::from_vec(&[1, c, h], ys),
            )
        };
        let mut first = None;
        let mut last = 0.0;
        for step in 0..steps {
            let (x, y) = mk((step % 5) as f32 * 0.7);
            let g = Graph::new();
            let mut rng2 = Rng::seed_from(step as u64);
            let ctx = Ctx::new(&g, &store, &mut rng2);
            let pred = model.forward(&ctx, &x);
            let loss = g.mse_loss(pred, &y);
            last = g.value(loss).item();
            if first.is_none() {
                first = Some(last);
            }
            let grads = g.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!(
            last < first.unwrap() * 0.8,
            "{}: loss did not drop ({} -> {last})",
            model.name(),
            first.unwrap()
        );
    }
}
