//! Classical autoregressive forecasting: AR(p) fit by ordinary least
//! squares on lagged windows. The kind of statistical method the paper's
//! related work contrasts with learned decomposition (Sec. II) — a useful
//! sanity baseline and a reference point for the examples.

/// An AR(p) model `x_t = c + Σ_i φ_i x_{t−i}` fit by least squares.
#[derive(Clone, Debug)]
pub struct ArModel {
    /// Lag coefficients `φ_1..φ_p`.
    pub coeffs: Vec<f32>,
    /// Intercept `c`.
    pub intercept: f32,
}

impl ArModel {
    /// Fits AR(p) to `series` by solving the normal equations of the OLS
    /// regression of `x_t` on `(1, x_{t−1}, …, x_{t−p})`. Returns `None`
    /// when the series is too short or the normal matrix is singular.
    pub fn fit(series: &[f32], p: usize) -> Option<ArModel> {
        let n = series.len();
        if p == 0 || n < 2 * p + 2 {
            return None;
        }
        let rows = n - p;
        let dim = p + 1; // intercept + p lags
        // Accumulate XᵀX and Xᵀy in f64.
        let mut xtx = vec![0.0f64; dim * dim];
        let mut xty = vec![0.0f64; dim];
        for t in p..n {
            // Feature vector: [1, x_{t-1}, ..., x_{t-p}].
            let mut feat = Vec::with_capacity(dim);
            feat.push(1.0f64);
            for i in 1..=p {
                feat.push(series[t - i] as f64);
            }
            let y = series[t] as f64;
            for a in 0..dim {
                for b in 0..dim {
                    xtx[a * dim + b] += feat[a] * feat[b];
                }
                xty[a] += feat[a] * y;
            }
        }
        let _ = rows;
        // Ridge jitter for stability, then Gaussian elimination.
        for a in 0..dim {
            xtx[a * dim + a] += 1e-6;
        }
        let sol = solve(&mut xtx, &mut xty, dim)?;
        Some(ArModel {
            intercept: sol[0] as f32,
            coeffs: sol[1..].iter().map(|&v| v as f32).collect(),
        })
    }

    /// Order `p`.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// Iterated multi-step forecast from the end of `history`.
    pub fn forecast(&self, history: &[f32], horizon: usize) -> Vec<f32> {
        let p = self.coeffs.len();
        assert!(history.len() >= p, "history shorter than AR order");
        let mut buf: Vec<f32> = history[history.len() - p..].to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut v = self.intercept;
            for (i, &phi) in self.coeffs.iter().enumerate() {
                v += phi * buf[buf.len() - 1 - i];
            }
            out.push(v);
            buf.push(v);
        }
        out
    }
}

/// Solves `A x = b` (dense, `dim × dim`) by Gaussian elimination with
/// partial pivoting. Returns `None` on singular systems.
fn solve(a: &mut [f64], b: &mut [f64], dim: usize) -> Option<Vec<f64>> {
    for col in 0..dim {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..dim {
            if a[r * dim + col].abs() > a[pivot * dim + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * dim + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..dim {
                a.swap(col * dim + k, pivot * dim + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * dim + col];
        for r in col + 1..dim {
            let f = a[r * dim + col] / diag;
            if f == 0.0 {
                continue;
            }
            for k in col..dim {
                a[r * dim + k] -= f * a[col * dim + k];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; dim];
    for col in (0..dim).rev() {
        let mut v = b[col];
        for k in col + 1..dim {
            v -= a[col * dim + k] * x[k];
        }
        x[col] = v / a[col * dim + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_known_ar1_process() {
        // x_t = 2 + 0.8 x_{t-1} + tiny noise.
        let mut rng = msd_tensor::rng::Rng::seed_from(5);
        let mut series = vec![10.0f32];
        for _ in 0..500 {
            let last = *series.last().unwrap();
            series.push(2.0 + 0.8 * last + 0.01 * rng.normal());
        }
        let model = ArModel::fit(&series, 1).unwrap();
        assert!((model.coeffs[0] - 0.8).abs() < 0.02, "phi {}", model.coeffs[0]);
        assert!((model.intercept - 2.0).abs() < 0.25, "c {}", model.intercept);
    }

    #[test]
    fn ar2_fits_a_sinusoid_exactly() {
        // A pure sinusoid satisfies x_t = 2cos(ω) x_{t-1} − x_{t-2}.
        let omega = 2.0 * std::f32::consts::PI / 12.0;
        let series: Vec<f32> = (0..200).map(|t| (omega * t as f32).sin()).collect();
        let model = ArModel::fit(&series, 2).unwrap();
        assert!(
            (model.coeffs[0] - 2.0 * omega.cos()).abs() < 1e-3,
            "phi1 {}",
            model.coeffs[0]
        );
        assert!((model.coeffs[1] + 1.0).abs() < 1e-3, "phi2 {}", model.coeffs[1]);
        // And the forecast continues the sinusoid.
        let fcst = model.forecast(&series, 12);
        for (h, &v) in fcst.iter().enumerate() {
            let truth = (omega * (200 + h) as f32).sin();
            assert!((v - truth).abs() < 1e-2, "h={h}: {v} vs {truth}");
        }
    }

    #[test]
    fn refuses_degenerate_inputs() {
        assert!(ArModel::fit(&[1.0, 2.0, 3.0], 5).is_none());
        assert!(ArModel::fit(&[], 1).is_none());
        assert!(ArModel::fit(&[1.0; 10], 0).is_none());
    }

    #[test]
    fn constant_series_forecasts_the_constant() {
        let series = vec![4.2f32; 64];
        // Ridge jitter keeps the system solvable; forecast ≈ the constant.
        let model = ArModel::fit(&series, 3).unwrap();
        let fcst = model.forecast(&series, 5);
        for v in fcst {
            assert!((v - 4.2).abs() < 0.05, "forecast {v}");
        }
    }

    #[test]
    fn forecast_length_matches_horizon() {
        let series: Vec<f32> = (0..60).map(|t| (t as f32 * 0.3).sin()).collect();
        let model = ArModel::fit(&series, 4).unwrap();
        assert_eq!(model.forecast(&series, 17).len(), 17);
        assert_eq!(model.order(), 4);
    }
}
