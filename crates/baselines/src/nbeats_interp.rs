//! N-BEATS *interpretable* architecture (Oreshkin et al., ICLR 2020,
//! Sec. 3.3): a trend stack whose blocks project onto a low-order
//! polynomial basis, followed by a seasonality stack projecting onto a
//! Fourier basis. Backcast/forecast are constrained to those bases, so the
//! stack outputs are directly readable as "trend" and "seasonality" — the
//! hand-designed counterpart of MSD-Mixer's *learned* multi-scale
//! decomposition (Sec. II of the paper).
//!
//! Univariate forecasting only (the configuration the original paper
//! evaluates); channels fold into the batch with shared weights.

use msd_autograd::{Graph, Var};
use msd_nn::{Ctx, Linear, ParamStore};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// Basis kind of one stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BasisKind {
    /// Polynomial `t^0..t^degree` over normalised time.
    Trend,
    /// Fourier pairs `sin/cos(2π k t)` for `k = 1..=harmonics`.
    Seasonality,
}

/// Evaluates the basis matrix `[n_coeffs, len]` over normalised time
/// `t ∈ [0, 1)` (backcast) or the forecast continuation.
fn basis_matrix(kind: BasisKind, n_coeffs: usize, len: usize, forecast: bool, input_len: usize) -> Tensor {
    let mut m = Tensor::zeros(&[n_coeffs, len]);
    for j in 0..len {
        // Time continues past the input for the forecast side.
        let t = if forecast {
            (input_len + j) as f32 / input_len as f32
        } else {
            j as f32 / input_len as f32
        };
        for i in 0..n_coeffs {
            let v = match kind {
                BasisKind::Trend => t.powi(i as i32),
                BasisKind::Seasonality => {
                    let k = (i / 2 + 1) as f32;
                    let phase = std::f32::consts::TAU * k * t;
                    if i % 2 == 0 {
                        phase.sin()
                    } else {
                        phase.cos()
                    }
                }
            };
            m.data_mut()[i * len + j] = v;
        }
    }
    m
}

struct BasisBlock {
    hidden: Vec<Linear>,
    coeff_fc: Linear,
    /// Constant `[n_coeffs, input_len]` backcast basis.
    backcast_basis: Tensor,
    /// Constant `[n_coeffs, horizon]` forecast basis.
    forecast_basis: Tensor,
}

/// The interpretable N-BEATS model: trend stack then seasonality stack.
pub struct NBeatsInterpretable {
    input_len: usize,
    horizon: usize,
    trend_blocks: Vec<BasisBlock>,
    season_blocks: Vec<BasisBlock>,
}

/// Outputs of one forward pass: total forecast plus the per-stack parts.
pub struct InterpretableForecast {
    /// Total forecast `[B, C, H]`.
    pub forecast: Var,
    /// The trend stack's share `[B, C, H]`.
    pub trend: Var,
    /// The seasonality stack's share `[B, C, H]`.
    pub seasonality: Var,
}

impl NBeatsInterpretable {
    /// Builds the interpretable stack: `blocks_per_stack` blocks each in the
    /// trend (polynomial degree `degree`) and seasonality (`harmonics`
    /// Fourier pairs) stacks.
    // The hyperparameters are independent knobs; a config struct would just
    // rename the same eight fields.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        input_len: usize,
        horizon: usize,
        degree: usize,
        harmonics: usize,
        blocks_per_stack: usize,
        hidden: usize,
    ) -> Self {
        let mut build_stack = |kind: BasisKind, n_coeffs: usize, tag: &str| -> Vec<BasisBlock> {
            (0..blocks_per_stack)
                .map(|i| {
                    let mut layers = Vec::new();
                    let mut dim = input_len;
                    for j in 0..2 {
                        layers.push(Linear::new(
                            store,
                            rng,
                            &format!("nbeats_i.{tag}{i}.fc{j}"),
                            dim,
                            hidden,
                        ));
                        dim = hidden;
                    }
                    BasisBlock {
                        hidden: layers,
                        // Coefficients for backcast and forecast jointly.
                        coeff_fc: Linear::new(
                            store,
                            rng,
                            &format!("nbeats_i.{tag}{i}.coeff"),
                            hidden,
                            2 * n_coeffs,
                        ),
                        backcast_basis: basis_matrix(kind, n_coeffs, input_len, false, input_len),
                        forecast_basis: basis_matrix(kind, n_coeffs, horizon, true, input_len),
                    }
                })
                .collect()
        };
        let trend_blocks = build_stack(BasisKind::Trend, degree + 1, "trend");
        let season_blocks = build_stack(BasisKind::Seasonality, 2 * harmonics, "season");
        Self {
            input_len,
            horizon,
            trend_blocks,
            season_blocks,
        }
    }

    fn run_stack(
        &self,
        ctx: &Ctx,
        blocks: &[BasisBlock],
        mut residual: Var,
    ) -> (Var, Option<Var>) {
        let g = ctx.g;
        let mut forecast: Option<Var> = None;
        for block in blocks {
            let mut h = residual;
            for fc in &block.hidden {
                h = g.relu(fc.forward(ctx, h));
            }
            let coeffs = block.coeff_fc.forward(ctx, h); // [R, 2·n]
            let n = block.backcast_basis.shape()[0];
            let back_coef = g.narrow(coeffs, 1, 0, n);
            let fore_coef = g.narrow(coeffs, 1, n, n);
            let backcast = g.matmul(back_coef, g.input(block.backcast_basis.clone()));
            let f = g.matmul(fore_coef, g.input(block.forecast_basis.clone()));
            residual = g.sub(residual, backcast);
            forecast = Some(match forecast {
                Some(acc) => g.add(acc, f),
                None => f,
            });
        }
        (residual, forecast)
    }

    /// Forecasts a batch `[B, C, L]`, returning the total plus the
    /// per-stack (trend / seasonality) contributions.
    pub fn forward(&self, ctx: &Ctx, x: &Tensor) -> InterpretableForecast {
        let g = ctx.g;
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(l, self.input_len, "built for L={}", self.input_len);
        let flat = g.reshape(g.input(x.clone()), &[b * c, l]);
        let (residual, trend) = self.run_stack(ctx, &self.trend_blocks, flat);
        let (_, season) = self.run_stack(ctx, &self.season_blocks, residual);
        let trend = trend.expect("trend stack nonempty");
        let season = season.expect("season stack nonempty");
        let total = g.add(trend, season);
        let reshape3 = |v: Var| g.reshape(v, &[b, c, self.horizon]);
        InterpretableForecast {
            forecast: reshape3(total),
            trend: reshape3(trend),
            seasonality: reshape3(season),
        }
    }

    /// Convenience inference returning `(forecast, trend, seasonality)`
    /// tensors.
    pub fn predict(&self, store: &ParamStore, x: &Tensor) -> (Tensor, Tensor, Tensor) {
        let g = Graph::eval();
        let mut rng = Rng::seed_from(0);
        let ctx = Ctx::new(&g, store, &mut rng);
        let out = self.forward(&ctx, x);
        (
            g.value(out.forecast),
            g.value(out.trend),
            g.value(out.seasonality),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_nn::{Adam, Optimizer};

    fn fixture() -> (ParamStore, NBeatsInterpretable) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(21);
        let model = NBeatsInterpretable::new(&mut store, &mut rng, 24, 8, 2, 3, 2, 32);
        (store, model)
    }

    #[test]
    fn shapes_and_additivity() {
        let (store, model) = fixture();
        let mut rng = Rng::seed_from(22);
        let x = Tensor::randn(&[3, 2, 24], 1.0, &mut rng);
        let (total, trend, season) = model.predict(&store, &x);
        assert_eq!(total.shape(), &[3, 2, 8]);
        // forecast = trend + seasonality exactly.
        assert!(msd_tensor::allclose(&total, &trend.add(&season), 1e-5));
    }

    #[test]
    fn trend_stack_output_is_smooth_polynomial() {
        // With degree 2, each row of the trend forecast lies on a parabola:
        // third differences vanish.
        let (store, model) = fixture();
        let mut rng = Rng::seed_from(23);
        let x = Tensor::randn(&[1, 1, 24], 1.0, &mut rng);
        let (_, trend, _) = model.predict(&store, &x);
        let row: Vec<f32> = (0..8).map(|t| trend.at(&[0, 0, t])).collect();
        for w in row.windows(4) {
            let d3 = w[3] - 3.0 * w[2] + 3.0 * w[1] - w[0];
            assert!(d3.abs() < 1e-2, "third difference {d3}");
        }
    }

    #[test]
    fn learns_trend_plus_seasonality_and_separates_them() {
        let (mut store, model) = fixture();
        let mut opt = Adam::with_lr(3e-3);
        let mk = |offset: f32| {
            let series: Vec<f32> = (0..32)
                .map(|t| {
                    0.05 * (t as f32 + offset)
                        + (std::f32::consts::TAU * (t as f32 + offset) / 8.0).sin()
                })
                .collect();
            (
                Tensor::from_vec(&[1, 1, 24], series[..24].to_vec()),
                Tensor::from_vec(&[1, 1, 8], series[24..].to_vec()),
            )
        };
        let mut rng = Rng::seed_from(24);
        let mut last = f32::INFINITY;
        for step in 0..250 {
            let (x, y) = mk((step % 8) as f32);
            let g = Graph::new();
            let ctx = Ctx::new(&g, &store, &mut rng);
            let out = model.forward(&ctx, &x);
            let loss = g.mse_loss(out.forecast, &y);
            last = g.value(loss).item();
            let grads = g.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!(last < 0.1, "training loss {last}");
        // The seasonality stack should carry the oscillation: its forecast
        // variance exceeds the trend stack's on this signal.
        let (x, _) = mk(0.0);
        let (_, trend, season) = model.predict(&store, &x);
        assert!(
            season.var_all() > trend.var_all() * 0.5,
            "seasonality variance {} vs trend {}",
            season.var_all(),
            trend.var_all()
        );
    }

    #[test]
    fn basis_matrices_have_expected_structure() {
        let b = basis_matrix(BasisKind::Trend, 3, 10, false, 10);
        // Row 0 is constant 1.
        assert!(b.data()[..10].iter().all(|&v| (v - 1.0).abs() < 1e-6));
        // Row 1 is linear from 0.
        assert_eq!(b.at(&[1, 0]), 0.0);
        assert!((b.at(&[1, 9]) - 0.9).abs() < 1e-6);

        let s = basis_matrix(BasisKind::Seasonality, 2, 8, false, 8);
        // sin row starts at 0; cos row starts at 1.
        assert!(s.at(&[0, 0]).abs() < 1e-6);
        assert!((s.at(&[1, 0]) - 1.0).abs() < 1e-6);
    }
}
