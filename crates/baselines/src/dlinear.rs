//! DLinear (Zeng et al., "Are Transformers Effective for Time Series
//! Forecasting?", AAAI 2023): decompose the input into a moving-average
//! trend and a remainder, map each with a single linear layer over the time
//! axis, and sum. The strongest simple baseline in the paper's tables.

use crate::{task_output_len, Baseline};
use msd_autograd::Var;
use msd_data::decomp::trend_remainder;
use msd_nn::{Ctx, Linear, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// DLinear with a shared (channel-independent) pair of linear maps.
pub struct DLinear {
    task: Task,
    input_len: usize,
    ma_window: usize,
    trend_fc: Linear,
    season_fc: Linear,
    /// Classification head over the concatenated per-channel outputs.
    classify_fc: Option<Linear>,
    channels: usize,
}

impl DLinear {
    /// Builds DLinear for `[B, channels, input_len]` inputs. The moving
    /// average window follows the reference implementation's default of 25.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        // Averaging init, as in the reference implementation: both branches
        // start at the window-mean forecast rather than a random projection,
        // which a small step budget would largely spend unlearning.
        let trend_fc = Linear::averaging(store, "dlinear.trend", input_len, out_len);
        let season_fc = Linear::averaging(store, "dlinear.season", input_len, out_len);
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "dlinear.classify",
                channels * out_len,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            ma_window: 25.min(input_len.max(3)),
            trend_fc,
            season_fc,
            classify_fc,
            channels,
        }
    }

    /// Splits a batch `[B, C, L]` into (trend, remainder) tensors using the
    /// (parameter-free) moving-average decomposition.
    fn decompose_batch(&self, x: &Tensor) -> (Tensor, Tensor) {
        let l = self.input_len;
        let rows = x.len() / l;
        let mut trend = Vec::with_capacity(x.len());
        let mut season = Vec::with_capacity(x.len());
        for r in 0..rows {
            let row = &x.data()[r * l..(r + 1) * l];
            let (t, s) = trend_remainder(row, self.ma_window);
            trend.extend_from_slice(&t);
            season.extend_from_slice(&s);
        }
        (
            Tensor::from_vec(x.shape(), trend),
            Tensor::from_vec(x.shape(), season),
        )
    }
}

impl Baseline for DLinear {
    fn name(&self) -> &'static str {
        "DLinear"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let (trend, season) = self.decompose_batch(x);
        let t = self.trend_fc.forward(ctx, g.input(trend));
        let s = self.season_fc.forward(ctx, g.input(season));
        let combined = g.add(t, s);
        match &self.task {
            Task::Classify { .. } => {
                let b = x.shape()[0];
                let flat = g.reshape(combined, &[b, self.channels * self.input_len]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => combined,
        }
    }

    fn plan_prelude(&self, x: &Tensor) -> Vec<Tensor> {
        let (trend, season) = self.decompose_batch(x);
        vec![trend, season]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn dlinear_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(DLinear::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn dlinear_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(DLinear::new(store, rng, c, l, task)),
            80,
            5e-3,
        );
    }

    #[test]
    fn decomposition_feeds_both_branches() {
        // A pure-trend input should be reconstructed mostly by the trend
        // branch: zeroing the seasonal branch weights barely changes output.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let model = DLinear::new(&mut store, &mut rng, 1, 16, Task::Forecast { horizon: 4 });
        let ramp = Tensor::from_vec(&[1, 1, 16], (0..16).map(|i| i as f32).collect());
        let (trend, season) = model.decompose_batch(&ramp);
        // The moving average of a ramp is close to the ramp in the interior.
        assert!(trend.data()[8] > 6.0 && trend.data()[8] < 10.0);
        assert!(season.abs().max_all() < trend.abs().max_all());
    }
}
