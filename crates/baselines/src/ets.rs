//! Classical exponential smoothing forecasters — the Holt/Winters lineage
//! the paper's related work builds on ([26], [27] in its bibliography):
//! simple exponential smoothing, Holt's linear trend, and additive
//! Holt–Winters with a seasonal component.

/// Simple exponential smoothing: level-only, flat forecast.
pub fn ses_forecast(history: &[f32], horizon: usize, alpha: f32) -> Vec<f32> {
    assert!(!history.is_empty(), "ses of empty history");
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
    let mut level = history[0];
    for &x in &history[1..] {
        level = alpha * x + (1.0 - alpha) * level;
    }
    vec![level; horizon]
}

/// Holt's linear method: level + trend, linear forecast.
pub fn holt_forecast(history: &[f32], horizon: usize, alpha: f32, beta: f32) -> Vec<f32> {
    assert!(history.len() >= 2, "holt needs at least two observations");
    let mut level = history[0];
    let mut trend = history[1] - history[0];
    for &x in &history[1..] {
        let prev_level = level;
        level = alpha * x + (1.0 - alpha) * (level + trend);
        trend = beta * (level - prev_level) + (1.0 - beta) * trend;
    }
    (1..=horizon).map(|h| level + h as f32 * trend).collect()
}

/// Additive Holt–Winters: level + trend + seasonal indices of period `m`.
///
/// Falls back to [`holt_forecast`] when the history is shorter than two
/// full seasons.
pub fn holt_winters_forecast(
    history: &[f32],
    horizon: usize,
    m: usize,
    alpha: f32,
    beta: f32,
    gamma: f32,
) -> Vec<f32> {
    let m = m.max(1);
    if m < 2 || history.len() < 2 * m {
        return holt_forecast(history, horizon, alpha, beta);
    }
    // Initialise from the first two seasons.
    let season1_mean: f32 = history[..m].iter().sum::<f32>() / m as f32;
    let season2_mean: f32 = history[m..2 * m].iter().sum::<f32>() / m as f32;
    let mut level = season1_mean;
    let mut trend = (season2_mean - season1_mean) / m as f32;
    let mut seasonal: Vec<f32> = (0..m).map(|i| history[i] - season1_mean).collect();

    for (t, &x) in history.iter().enumerate().skip(m) {
        let s_idx = t % m;
        let prev_level = level;
        level = alpha * (x - seasonal[s_idx]) + (1.0 - alpha) * (level + trend);
        trend = beta * (level - prev_level) + (1.0 - beta) * trend;
        seasonal[s_idx] = gamma * (x - level) + (1.0 - gamma) * seasonal[s_idx];
    }
    let n = history.len();
    (1..=horizon)
        .map(|h| level + h as f32 * trend + seasonal[(n + h - 1) % m])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ses_of_constant_is_the_constant() {
        let fcst = ses_forecast(&[5.0; 30], 4, 0.3);
        assert!(fcst.iter().all(|&v| (v - 5.0).abs() < 1e-5));
    }

    #[test]
    fn holt_extrapolates_a_line() {
        let h: Vec<f32> = (0..40).map(|t| 2.0 + 0.5 * t as f32).collect();
        let fcst = holt_forecast(&h, 5, 0.5, 0.3);
        for (i, &v) in fcst.iter().enumerate() {
            let truth = 2.0 + 0.5 * (40 + i) as f32;
            assert!((v - truth).abs() < 0.2, "h={i}: {v} vs {truth}");
        }
    }

    #[test]
    fn holt_winters_continues_the_seasonal_pattern() {
        let m = 8;
        let h: Vec<f32> = (0..80)
            .map(|t| 10.0 + 3.0 * (std::f32::consts::TAU * t as f32 / m as f32).sin())
            .collect();
        let fcst = holt_winters_forecast(&h, m, m, 0.3, 0.05, 0.3);
        for (i, &v) in fcst.iter().enumerate() {
            let truth = 10.0 + 3.0 * (std::f32::consts::TAU * (80 + i) as f32 / m as f32).sin();
            assert!((v - truth).abs() < 0.8, "h={i}: {v} vs {truth}");
        }
        // And it clearly beats a flat SES forecast on this signal.
        let ses = ses_forecast(&h, m, 0.3);
        let hw_err: f32 = fcst
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                (v - (10.0 + 3.0 * (std::f32::consts::TAU * (80 + i) as f32 / m as f32).sin())).abs()
            })
            .sum();
        let ses_err: f32 = ses
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                (v - (10.0 + 3.0 * (std::f32::consts::TAU * (80 + i) as f32 / m as f32).sin())).abs()
            })
            .sum();
        assert!(hw_err < ses_err * 0.6, "hw {hw_err} vs ses {ses_err}");
    }

    #[test]
    fn holt_winters_falls_back_without_two_seasons() {
        let h: Vec<f32> = (0..10).map(|t| t as f32).collect();
        let a = holt_winters_forecast(&h, 3, 8, 0.3, 0.1, 0.2);
        let b = holt_forecast(&h, 3, 0.3, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn forecast_lengths_match() {
        let h: Vec<f32> = (0..30).map(|t| (t as f32 * 0.7).cos()).collect();
        assert_eq!(ses_forecast(&h, 7, 0.2).len(), 7);
        assert_eq!(holt_forecast(&h, 7, 0.2, 0.1).len(), 7);
        assert_eq!(holt_winters_forecast(&h, 7, 6, 0.2, 0.1, 0.1).len(), 7);
    }
}
