//! N-HiTS (Challu et al., AAAI 2023): N-BEATS-style doubly-residual blocks
//! where each block (i) max-pools its input at a block-specific rate before
//! the MLP and (ii) predicts low-resolution basis coefficients that are
//! linearly interpolated up to the backcast/forecast lengths — hierarchical
//! multi-rate decomposition. Channel-independent like [`crate::NBeats`].

use crate::{task_output_len, Baseline};
use msd_autograd::Var;
use msd_nn::{Ctx, Linear, ParamStore, Task};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

struct Block {
    pool: usize,
    hidden: Vec<Linear>,
    backcast_fc: Linear,
    forecast_fc: Linear,
    /// Constant interpolation matrices `[coarse, fine]`.
    backcast_interp: Tensor,
    forecast_interp: Tensor,
}

/// The N-HiTS stack.
pub struct NHits {
    task: Task,
    input_len: usize,
    channels: usize,
    blocks: Vec<Block>,
    classify_fc: Option<Linear>,
}

impl NHits {
    /// Builds N-HiTS with pooling rates `pools` (one block per rate; rates
    /// must not exceed `input_len`).
    pub fn with_pools(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
        pools: &[usize],
        hidden: usize,
    ) -> Self {
        let out_len = match &task {
            Task::Classify { .. } => input_len,
            t => task_output_len(t, input_len),
        };
        let blocks = pools
            .iter()
            .enumerate()
            .map(|(i, &pool)| {
                let pool = pool.clamp(1, input_len);
                let pooled_len = input_len.div_ceil(pool);
                // Coefficient counts shrink with the pooling rate
                // (hierarchical resolution).
                let back_coarse = (input_len / pool).max(1);
                let fore_coarse = (out_len / pool).max(1);
                let mut layers = Vec::new();
                let mut dim = pooled_len;
                for j in 0..2 {
                    layers.push(Linear::new(
                        store,
                        rng,
                        &format!("nhits.b{i}.fc{j}"),
                        dim,
                        hidden,
                    ));
                    dim = hidden;
                }
                Block {
                    pool,
                    hidden: layers,
                    backcast_fc: Linear::new(
                        store,
                        rng,
                        &format!("nhits.b{i}.backcast"),
                        hidden,
                        back_coarse,
                    ),
                    forecast_fc: Linear::new(
                        store,
                        rng,
                        &format!("nhits.b{i}.forecast"),
                        hidden,
                        fore_coarse,
                    ),
                    backcast_interp: interp_matrix(back_coarse, input_len),
                    forecast_interp: interp_matrix(fore_coarse, out_len),
                }
            })
            .collect();
        let classify_fc = match &task {
            Task::Classify { classes } => Some(Linear::new(
                store,
                rng,
                "nhits.classify",
                channels * out_len,
                *classes,
            )),
            _ => None,
        };
        Self {
            task,
            input_len,
            channels,
            blocks,
            classify_fc,
        }
    }

    /// Default: three blocks at pooling rates 4 / 2 / 1, hidden width 128.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        channels: usize,
        input_len: usize,
        task: Task,
    ) -> Self {
        Self::with_pools(store, rng, channels, input_len, task, &[4, 2, 1], 128)
    }
}

impl Baseline for NHits {
    fn name(&self) -> &'static str {
        "N-HiTS"
    }

    fn task(&self) -> &Task {
        &self.task
    }

    fn forward(&self, ctx: &Ctx, x: &Tensor) -> Var {
        let g = ctx.g;
        let (b, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        debug_assert_eq!(l, self.input_len);
        let mut residual = g.reshape(g.input(x.clone()), &[b * c, l]);
        let mut forecast: Option<Var> = None;
        for block in &self.blocks {
            // Multi-rate input: pad to a multiple of the pool, then max-pool.
            let padded_len = l.div_ceil(block.pool) * block.pool;
            let padded = if padded_len == l {
                residual
            } else {
                g.pad_axis(residual, 1, padded_len - l, 0)
            };
            let pooled = g.maxpool_last(padded, block.pool);
            let mut h = pooled;
            for fc in &block.hidden {
                h = g.relu(fc.forward(ctx, h));
            }
            let back_coef = block.backcast_fc.forward(ctx, h);
            let fore_coef = block.forecast_fc.forward(ctx, h);
            let backcast = g.matmul(back_coef, g.input(block.backcast_interp.clone()));
            let f = g.matmul(fore_coef, g.input(block.forecast_interp.clone()));
            residual = g.sub(residual, backcast);
            forecast = Some(match forecast {
                Some(acc) => g.add(acc, f),
                None => f,
            });
        }
        let out_len = g.shape_of(forecast.unwrap())[1];
        let out = g.reshape(forecast.unwrap(), &[b, c, out_len]);
        match &self.task {
            Task::Classify { .. } => {
                let flat = g.reshape(out, &[b, self.channels * out_len]);
                self.classify_fc
                    .as_ref()
                    .expect("classify head")
                    .forward(ctx, flat)
            }
            _ => out,
        }
    }
}

/// Linear-interpolation upsampling matrix `[coarse, fine]` (convex rows).
fn interp_matrix(coarse: usize, fine: usize) -> Tensor {
    let mut w = Tensor::zeros(&[coarse, fine]);
    if coarse == 1 {
        for t in 0..fine {
            w.data_mut()[t] = 1.0;
        }
        return w;
    }
    let scale = (coarse - 1) as f32 / (fine - 1).max(1) as f32;
    for t in 0..fine {
        let u = t as f32 * scale;
        let lo = (u.floor() as usize).min(coarse - 1);
        let hi = (lo + 1).min(coarse - 1);
        let frac = u - lo as f32;
        w.data_mut()[lo * fine + t] += 1.0 - frac;
        if hi != lo {
            w.data_mut()[hi * fine + t] += frac;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_learns, exercise_baseline};

    #[test]
    fn nhits_all_tasks() {
        exercise_baseline(|store, rng, c, l, task| {
            Box::new(NHits::new(store, rng, c, l, task))
        });
    }

    #[test]
    fn nhits_learns_sine_continuation() {
        check_learns(
            |store, rng, c, l, task| Box::new(NHits::new(store, rng, c, l, task)),
            120,
            2e-3,
        );
    }

    #[test]
    fn pools_are_clamped_to_input() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        // Oversized pool is clamped rather than panicking.
        let m = NHits::with_pools(
            &mut store,
            &mut rng,
            1,
            8,
            Task::Forecast { horizon: 4 },
            &[64, 2],
            16,
        );
        assert_eq!(m.blocks[0].pool, 8);
        assert_eq!(m.blocks[1].pool, 2);
    }

    #[test]
    fn interp_rows_convex() {
        let w = interp_matrix(4, 12);
        for t in 0..12 {
            let s: f32 = (0..4).map(|i| w.data()[i * 12 + t]).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }
}
