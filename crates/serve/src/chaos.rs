//! Deterministic fault injection for the serving stack.
//!
//! Chaos here follows the same discipline as the kernel dispatch tiers: a
//! fault either fires deterministically — same seed, same schedule, bit for
//! bit — or it does not exist. A [`FaultPlan`] names every injection point
//! and its firing probability; the decision for the *n*-th arrival at a
//! point is a pure function of `(seed, point, n)`, so replaying a run with
//! the same plan reproduces the identical fault schedule regardless of
//! thread interleaving *within* a point (each point keeps its own arrival
//! counter, and arrival order at a point is what the schedule is keyed on).
//!
//! Plans come from the environment (`MSD_CHAOS`, read once per process) or
//! are built explicitly and injected through `ServeConfig::chaos` /
//! `GatewayConfig` for tests that need two isolated instances of the same
//! schedule. The spec syntax is a comma-separated key:value list:
//!
//! ```text
//! MSD_CHAOS=seed:42,worker_panic:0.01,worker_stall:0.05,worker_stall_ms:50,conn_drop:0.02
//! ```
//!
//! Every fired fault is recorded in an in-memory schedule log (for
//! determinism assertions) and, when `MSD_CHAOS_LOG` names a path, appended
//! as JSONL (`{"event":"chaos","point":"worker_panic","n":17}`) for CI
//! artifacts. With no plan configured every probe is a no-op on the hot
//! path: one `Option` check.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A named injection point in the serving stack.
///
/// The registry is closed: faults only fire where the runtime explicitly
/// probes, so the set of points doubles as documentation of exactly where
/// failure behavior is exercised (see DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// A worker panics mid-batch (inside `catch_unwind`; the batch fails
    /// typed as [`crate::ServeError::Internal`]).
    WorkerPanic,
    /// A worker sleeps `worker_stall_ms` before evaluating a batch,
    /// simulating a wedged or descheduled replica.
    WorkerStall,
    /// The gateway closes a connection after writing only half the response
    /// head, simulating a mid-response network partition.
    ConnDrop,
    /// The gateway trickles the first bytes of a response with a delay per
    /// byte, simulating a slow-loris peer or congested link.
    SlowLoris,
}

impl FaultPoint {
    /// All injection points, in schedule-log order.
    pub const ALL: [FaultPoint; 4] = [
        FaultPoint::WorkerPanic,
        FaultPoint::WorkerStall,
        FaultPoint::ConnDrop,
        FaultPoint::SlowLoris,
    ];

    /// The stable name used in specs, logs, and event JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::WorkerStall => "worker_stall",
            FaultPoint::ConnDrop => "conn_drop",
            FaultPoint::SlowLoris => "slow_loris",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::WorkerPanic => 0,
            FaultPoint::WorkerStall => 1,
            FaultPoint::ConnDrop => 2,
            FaultPoint::SlowLoris => 3,
        }
    }
}

/// A seeded, declarative fault schedule: which points fire, how often, and
/// with what magnitude. The plan is pure data — pair it with a [`Chaos`]
/// instance to get counters and logging.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-point firing schedule. Same seed → same schedule.
    pub seed: u64,
    /// Probability a worker panics on a batch (`worker_panic`).
    pub worker_panic: f64,
    /// Probability a worker stalls before a batch (`worker_stall`).
    pub worker_stall: f64,
    /// Stall duration in milliseconds (`worker_stall_ms`, default 50).
    pub worker_stall_ms: u64,
    /// Probability the gateway drops a connection mid-response
    /// (`conn_drop`).
    pub conn_drop: f64,
    /// Probability a response is written slow-loris style (`slow_loris`).
    pub slow_loris: f64,
    /// Total extra delay spread over the first response bytes when
    /// `slow_loris` fires (`slow_loris_ms`, default 20).
    pub slow_loris_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            worker_panic: 0.0,
            worker_stall: 0.0,
            worker_stall_ms: 50,
            conn_drop: 0.0,
            slow_loris: 0.0,
            slow_loris_ms: 20,
        }
    }
}

impl FaultPlan {
    /// Parses the `MSD_CHAOS` spec syntax: a comma-separated `key:value`
    /// list. Unknown keys, malformed numbers, and probabilities outside
    /// `[0, 1]` are hard errors — a chaos gate must never silently run
    /// clean because of a typo in its fault plan.
    ///
    /// Giving `worker_stall_ms` without `worker_stall` implies a stall
    /// probability of 0.05, so the example spec in the docs injects stalls
    /// as written.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut stall_prob_set = false;
        let mut stall_ms_set = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("chaos spec entry `{part}` is not key:value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos probability `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("chaos integer `{v}` is not a u64"))
            };
            match key.trim() {
                "seed" => plan.seed = int(value)?,
                "worker_panic" => plan.worker_panic = prob(value)?,
                "worker_stall" => {
                    plan.worker_stall = prob(value)?;
                    stall_prob_set = true;
                }
                "worker_stall_ms" => {
                    plan.worker_stall_ms = int(value)?;
                    stall_ms_set = true;
                }
                "conn_drop" => plan.conn_drop = prob(value)?,
                "slow_loris" => plan.slow_loris = prob(value)?,
                "slow_loris_ms" => plan.slow_loris_ms = int(value)?,
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        if stall_ms_set && !stall_prob_set {
            plan.worker_stall = 0.05;
        }
        Ok(plan)
    }

    /// The firing probability configured for `point`.
    pub fn rate(&self, point: FaultPoint) -> f64 {
        match point {
            FaultPoint::WorkerPanic => self.worker_panic,
            FaultPoint::WorkerStall => self.worker_stall,
            FaultPoint::ConnDrop => self.conn_drop,
            FaultPoint::SlowLoris => self.slow_loris,
        }
    }

    /// Whether the *n*-th arrival (0-based) at `point` fires.
    ///
    /// Pure: the decision depends only on `(seed, point, n)`, never on
    /// wall-clock or thread identity, which is the determinism guarantee
    /// every chaos gate rests on.
    pub fn fires(&self, point: FaultPoint, n: u64) -> bool {
        let p = self.rate(point);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // SplitMix64 over the seed, a point tag, and the arrival index.
        // SplitMix's output is equidistributed enough that the top 53 bits
        // make an unbiased uniform in [0, 1).
        let mut z = self
            .seed
            .wrapping_add((point.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(n.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Renders the plan back to spec syntax (stable key order), used to tag
    /// benchmark rows with the active plan.
    pub fn to_spec(&self) -> String {
        format!(
            "seed:{},worker_panic:{},worker_stall:{},worker_stall_ms:{},\
             conn_drop:{},slow_loris:{},slow_loris_ms:{}",
            self.seed,
            self.worker_panic,
            self.worker_stall,
            self.worker_stall_ms,
            self.conn_drop,
            self.slow_loris,
            self.slow_loris_ms
        )
    }
}

/// A live fault injector: a [`FaultPlan`] plus per-point arrival counters,
/// the in-memory fired-schedule log, and an optional JSONL sink.
///
/// Probe methods are called at the named injection points; each probe
/// increments that point's arrival counter and consults the pure schedule.
pub struct Chaos {
    plan: FaultPlan,
    arrivals: [AtomicU64; 4],
    fired: Mutex<Vec<(FaultPoint, u64)>>,
    log: Option<Mutex<BufWriter<File>>>,
}

impl std::fmt::Debug for Chaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chaos").field("plan", &self.plan).finish()
    }
}

impl Chaos {
    /// An injector for `plan` with no file log.
    pub fn new(plan: FaultPlan) -> Chaos {
        Chaos {
            plan,
            arrivals: Default::default(),
            fired: Mutex::new(Vec::new()),
            log: None,
        }
    }

    /// An injector that also appends every fired fault to `path` as JSONL.
    pub fn with_log(plan: FaultPlan, path: impl AsRef<Path>) -> std::io::Result<Chaos> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Chaos {
            log: Some(Mutex::new(BufWriter::new(file))),
            ..Chaos::new(plan)
        })
    }

    /// The process-global injector configured by `MSD_CHAOS` (with an
    /// optional `MSD_CHAOS_LOG` sink), or `None` when the variable is
    /// unset. Read once per process so every server and gateway in it
    /// shares one set of arrival counters.
    ///
    /// Panics on a malformed spec: a chaos run must never silently degrade
    /// to a clean run.
    pub fn from_env() -> Option<Arc<Chaos>> {
        static GLOBAL: OnceLock<Option<Arc<Chaos>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let spec = std::env::var("MSD_CHAOS").ok()?;
                if spec.trim().is_empty() {
                    return None;
                }
                let plan = FaultPlan::parse(&spec)
                    .unwrap_or_else(|e| panic!("invalid MSD_CHAOS spec `{spec}`: {e}"));
                let chaos = match std::env::var("MSD_CHAOS_LOG") {
                    Ok(path) if !path.is_empty() => Chaos::with_log(plan, &path)
                        .unwrap_or_else(|e| panic!("cannot open MSD_CHAOS_LOG `{path}`: {e}")),
                    _ => Chaos::new(plan),
                };
                Some(Arc::new(chaos))
            })
            .clone()
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records one arrival at `point` and returns `(n, fired)`.
    fn roll(&self, point: FaultPoint) -> (u64, bool) {
        let n = self.arrivals[point.index()].fetch_add(1, Ordering::Relaxed);
        let fired = self.plan.fires(point, n);
        if fired {
            self.fired
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push((point, n));
            if let Some(out) = &self.log {
                let mut line = String::with_capacity(64);
                let _ = write!(
                    line,
                    "{{\"event\":\"chaos\",\"point\":\"{}\",\"n\":{n}}}",
                    point.name()
                );
                let mut w = out.lock().unwrap_or_else(|p| p.into_inner());
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        }
        (n, fired)
    }

    /// Probe: should this batch evaluation panic?
    pub fn worker_panic(&self) -> bool {
        self.roll(FaultPoint::WorkerPanic).1
    }

    /// Probe: should this batch evaluation stall first, and for how long?
    pub fn worker_stall(&self) -> Option<Duration> {
        self.roll(FaultPoint::WorkerStall)
            .1
            .then(|| Duration::from_millis(self.plan.worker_stall_ms))
    }

    /// Probe: should this response's connection drop mid-write?
    pub fn conn_drop(&self) -> bool {
        self.roll(FaultPoint::ConnDrop).1
    }

    /// Probe: should this response trickle out, and over how long in total?
    pub fn slow_loris(&self) -> Option<Duration> {
        self.roll(FaultPoint::SlowLoris)
            .1
            .then(|| Duration::from_millis(self.plan.slow_loris_ms))
    }

    /// The fired-fault schedule so far, in firing order: `(point, n)` per
    /// fault. Two runs of the same plan over the same per-point arrival
    /// sequences produce equal sets; a single-threaded replay produces
    /// equal *vectors*.
    pub fn fired(&self) -> Vec<(FaultPoint, u64)> {
        self.fired.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Arrival counts per point, in [`FaultPoint::ALL`] order.
    pub fn arrivals(&self) -> [u64; 4] {
        [0, 1, 2, 3].map(|i| self.arrivals[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_documented_example() {
        let plan =
            FaultPlan::parse("seed:42,worker_panic:0.01,worker_stall_ms:50,conn_drop:0.02")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.worker_panic, 0.01);
        assert_eq!(plan.worker_stall_ms, 50);
        // stall_ms without an explicit probability implies stalls happen.
        assert_eq!(plan.worker_stall, 0.05);
        assert_eq!(plan.conn_drop, 0.02);
        assert_eq!(plan.slow_loris, 0.0);
    }

    #[test]
    fn parse_rejects_typos_and_bad_numbers() {
        assert!(FaultPlan::parse("worker_painc:0.1").is_err());
        assert!(FaultPlan::parse("worker_panic:1.5").is_err());
        assert!(FaultPlan::parse("worker_panic:abc").is_err());
        assert!(FaultPlan::parse("seed:-1").is_err());
        assert!(FaultPlan::parse("worker_panic").is_err());
        assert!(FaultPlan::parse("").is_ok());
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_point_and_index() {
        let a = FaultPlan::parse("seed:42,worker_panic:0.1,conn_drop:0.3").unwrap();
        let b = FaultPlan::parse("seed:42,worker_panic:0.1,conn_drop:0.3").unwrap();
        for point in FaultPoint::ALL {
            for n in 0..10_000 {
                assert_eq!(a.fires(point, n), b.fires(point, n));
            }
        }
        // A different seed produces a different schedule (overwhelmingly).
        let c = FaultPlan::parse("seed:43,worker_panic:0.1,conn_drop:0.3").unwrap();
        let differs = (0..10_000).any(|n| {
            a.fires(FaultPoint::WorkerPanic, n) != c.fires(FaultPoint::WorkerPanic, n)
        });
        assert!(differs, "seed does not influence the schedule");
    }

    #[test]
    fn firing_rate_tracks_the_configured_probability() {
        let plan = FaultPlan::parse("seed:7,worker_panic:0.1").unwrap();
        let fired = (0..100_000u64)
            .filter(|&n| plan.fires(FaultPoint::WorkerPanic, n))
            .count();
        // 100k Bernoulli(0.1) trials: mean 10k, σ ≈ 95. ±10σ bounds.
        assert!((9_000..=11_000).contains(&fired), "fired {fired}/100000");
        // Rate 0 never fires; rate 1 always fires.
        let never = FaultPlan::default();
        assert!((0..1000).all(|n| !never.fires(FaultPoint::ConnDrop, n)));
        let always = FaultPlan {
            conn_drop: 1.0,
            ..FaultPlan::default()
        };
        assert!((0..1000).all(|n| always.fires(FaultPoint::ConnDrop, n)));
    }

    #[test]
    fn chaos_records_fired_schedule_identically_across_instances() {
        let plan = FaultPlan::parse("seed:5,worker_panic:0.2,worker_stall:0.2").unwrap();
        let a = Chaos::new(plan.clone());
        let b = Chaos::new(plan);
        for _ in 0..500 {
            a.worker_panic();
            b.worker_panic();
            a.worker_stall();
            b.worker_stall();
        }
        assert_eq!(a.fired(), b.fired());
        assert!(!a.fired().is_empty(), "0.2 over 500 arrivals fired nothing");
        assert_eq!(a.arrivals(), [500, 500, 0, 0]);
    }

    #[test]
    fn spec_render_parses_back_to_the_same_plan() {
        let plan = FaultPlan::parse("seed:9,worker_panic:0.25,slow_loris:0.5").unwrap();
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }
}
