//! Structured serving telemetry, mirroring the JSONL shape of the training
//! telemetry in `msd-harness` (`{"event": "<kind>", ...}` — one object per
//! line) so the same tolerant readers and dashboards consume both streams.
//!
//! The sink is optional and purely observational: with no path configured,
//! emitting an event is a no-op and serving numerics are unchanged.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

use crate::ServeStats;

/// One structured event emitted by the serving runtime.
#[derive(Clone, Debug)]
pub enum ServeEvent {
    /// A micro-batch was evaluated and all its responses delivered.
    BatchEnd {
        /// Requests packed into the batch.
        size: usize,
        /// Wall-clock of the batched forward pass, microseconds.
        eval_us: u64,
    },
    /// A request was refused at intake because the queue was full.
    Reject,
    /// A request's deadline passed before evaluation; it was shed with
    /// [`crate::ServeError::DeadlineExceeded`] instead of running the
    /// model.
    Expired,
    /// A worker panicked mid-batch; every request in the batch received
    /// [`crate::ServeError::Internal`] instead of a prediction.
    WorkerPanic {
        /// The panic payload, as text.
        message: String,
    },
    /// The runtime drained and stopped; final counter snapshot.
    Stop {
        /// Final statistics at shutdown.
        stats: ServeStats,
    },
}

impl ServeEvent {
    /// Stable machine-readable tag for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEvent::BatchEnd { .. } => "serve_batch",
            ServeEvent::Reject => "serve_reject",
            ServeEvent::Expired => "serve_expired",
            ServeEvent::WorkerPanic { .. } => "serve_panic",
            ServeEvent::Stop { .. } => "serve_stop",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"event\":\"{}\"", self.kind());
        match self {
            ServeEvent::BatchEnd { size, eval_us } => {
                let _ = write!(s, ",\"size\":{size},\"eval_us\":{eval_us}");
            }
            ServeEvent::Reject => {}
            ServeEvent::Expired => {}
            ServeEvent::WorkerPanic { message } => {
                let _ = write!(s, ",\"message\":\"{}\"", json_escape(message));
            }
            ServeEvent::Stop { stats } => {
                // Splice the stats object's fields into this event object.
                let body = stats.to_json();
                let _ = write!(s, ",{}", &body[1..body.len() - 1]);
            }
        }
        s.push('}');
        s
    }
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Optional append-only JSONL sink, shared by every runtime thread.
pub(crate) struct EventSink {
    out: Option<Mutex<BufWriter<File>>>,
}

impl EventSink {
    /// A sink that drops every event.
    pub(crate) fn disabled() -> Self {
        EventSink { out: None }
    }

    /// A sink appending to `path` (created if absent).
    pub(crate) fn to_path(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(EventSink {
            out: Some(Mutex::new(BufWriter::new(file))),
        })
    }

    pub(crate) fn emit(&self, event: &ServeEvent) {
        if let Some(out) = &self.out {
            let mut w = out.lock().unwrap_or_else(|p| p.into_inner());
            let _ = writeln!(w, "{}", event.to_json());
        }
    }

    pub(crate) fn flush(&self) {
        if let Some(out) = &self.out {
            let _ = out.lock().unwrap_or_else(|p| p.into_inner()).flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_one_json_object_each() {
        let stats = ServeStats {
            submitted: 3,
            rejected: 1,
            completed: 2,
            failed: 0,
            expired: 0,
            batches: 1,
            plan_batches: 0,
            mean_batch: 2.0,
            p50_us: 5,
            p95_us: 9,
            p99_us: 9,
        };
        let cases = [
            (
                ServeEvent::BatchEnd {
                    size: 8,
                    eval_us: 120,
                },
                "serve_batch",
            ),
            (ServeEvent::Reject, "serve_reject"),
            (ServeEvent::Expired, "serve_expired"),
            (
                ServeEvent::WorkerPanic {
                    message: "bad \"shape\"\n".into(),
                },
                "serve_panic",
            ),
            (ServeEvent::Stop { stats }, "serve_stop"),
        ];
        for (event, kind) in cases {
            let json = event.to_json();
            assert!(json.starts_with(&format!("{{\"event\":\"{kind}\"")), "{json}");
            assert!(json.ends_with('}'), "{json}");
            assert_eq!(json.matches('{').count(), 1, "flat object: {json}");
        }
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn sink_appends_one_line_per_event() {
        let dir = std::env::temp_dir().join("msd_serve_events_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = EventSink::to_path(&path).unwrap();
        sink.emit(&ServeEvent::Reject);
        sink.emit(&ServeEvent::BatchEnd {
            size: 2,
            eval_us: 7,
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("serve_reject"));
        assert!(lines[1].contains("\"size\":2"));
        let _ = std::fs::remove_file(&path);
    }
}
