//! Seeded open-loop load generation and throughput reporting.
//!
//! The generator models a Poisson arrival process: inter-arrival gaps are
//! drawn i.i.d. exponential from the repo's deterministic xoshiro RNG, so a
//! given `(seed, rate)` pair produces the *same* arrival schedule on every
//! run and machine — benchmark numbers differ only through the machine, not
//! the workload. "Open loop" means arrivals do not wait for responses;
//! under overload the admission queue fills and rejections are part of the
//! measured behaviour rather than hidden by caller backoff.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use msd_nn::{Model, ParamStore};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

use crate::{Pending, ServeError, Server};

/// One load-generation scenario.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Total requests to submit.
    pub requests: usize,
    /// Mean arrival rate, requests per second. Zero disables pacing: every
    /// request is submitted as fast as the intake accepts the previous one.
    pub rate_rps: f64,
    /// RNG seed for the arrival schedule.
    pub seed: u64,
    /// Longest run of overdue arrivals submitted back-to-back before the
    /// schedule re-anchors to the present (0 = unlimited, the legacy
    /// behaviour). An open-loop driver that falls behind — say a slow batch
    /// stalled every response — would otherwise fire *all* overdue arrivals
    /// in one burst, measuring a self-inflicted queueing spike as tail
    /// latency. Capping the burst keeps the drive honest; every re-anchor
    /// is counted and the scheduled-vs-actual skew is reported.
    pub max_burst: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            requests: 0,
            rate_rps: 0.0,
            seed: 0,
            max_burst: 0,
        }
    }
}

/// The deterministic arrival schedule for `spec`, as offsets from the start
/// of the run (non-decreasing; empty pacing yields all-zero offsets).
pub fn arrival_offsets(spec: &LoadSpec) -> Vec<Duration> {
    let mut rng = Rng::seed_from(spec.seed);
    let mut t = 0.0f64;
    (0..spec.requests)
        .map(|_| {
            if spec.rate_rps > 0.0 {
                // uniform() is [0, 1); flip to (0, 1] so ln never sees 0.
                let u = 1.0 - rng.uniform() as f64;
                t += -u.ln() / spec.rate_rps;
            }
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Paces an open-loop schedule against the wall clock, capping catch-up
/// bursts and recording scheduled-vs-actual submission skew.
///
/// Shared by the in-process driver ([`run_open_loop`]) and the gateway's
/// multi-connection TCP driver, so both report the same honesty metrics.
pub struct Pacer {
    anchor: Instant,
    anchor_offset: Duration,
    max_burst: usize,
    burst: usize,
    /// Arrivals submitted, paced or late.
    pub submitted: u64,
    /// Σ lateness (actual − scheduled) over late arrivals, microseconds.
    pub skew_total_us: u64,
    /// Worst single lateness, microseconds.
    pub skew_max_us: u64,
    /// Times the schedule re-anchored after an over-long catch-up burst.
    pub reanchors: u64,
}

impl Pacer {
    /// A pacer starting its schedule now. `max_burst` of 0 never re-anchors.
    pub fn start(max_burst: usize) -> Self {
        Pacer {
            anchor: Instant::now(),
            anchor_offset: Duration::ZERO,
            max_burst,
            burst: 0,
            submitted: 0,
            skew_total_us: 0,
            skew_max_us: 0,
            reanchors: 0,
        }
    }

    /// Blocks until `offset` (relative to the schedule origin) is due, then
    /// returns. Overdue arrivals return immediately; after `max_burst`
    /// consecutive overdue arrivals the schedule re-anchors to the present,
    /// so a long stall is absorbed as a recorded re-anchor instead of a
    /// burst of every overdue arrival at once.
    pub fn pace(&mut self, offset: Duration) {
        let target = self.anchor + offset.saturating_sub(self.anchor_offset);
        let now = Instant::now();
        if let Some(gap) = target.checked_duration_since(now) {
            std::thread::sleep(gap);
            self.burst = 0;
        } else {
            let late_us = now.duration_since(target).as_micros() as u64;
            self.skew_total_us += late_us;
            self.skew_max_us = self.skew_max_us.max(late_us);
            self.burst += 1;
            if self.max_burst > 0 && self.burst > self.max_burst {
                self.reanchors += 1;
                self.anchor = now;
                self.anchor_offset = offset;
                self.burst = 0;
            }
        }
        self.submitted += 1;
    }

    /// Mean lateness across every paced arrival, microseconds.
    pub fn skew_mean_us(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.skew_total_us as f64 / self.submitted as f64
        }
    }
}

/// What happened to each submitted request, in submission order.
pub struct RunOutcome {
    /// Per-request result: the prediction, or the typed reason it failed.
    pub responses: Vec<Result<Tensor, ServeError>>,
    /// Wall-clock from first submission to last response, seconds.
    pub wall_s: f64,
    /// Completed responses per second of wall-clock.
    pub throughput_rps: f64,
    /// Mean scheduled-vs-actual submission lateness, microseconds.
    pub skew_mean_us: f64,
    /// Worst scheduled-vs-actual submission lateness, microseconds.
    pub skew_max_us: u64,
    /// Times the arrival schedule re-anchored after a capped burst.
    pub reanchors: u64,
}

/// Drives `inputs` through `server` on the arrival schedule of `spec`
/// (`spec.requests` is clamped to `inputs.len()`), then waits for every
/// in-flight response.
///
/// Rejected submissions are recorded as [`ServeError::Overloaded`] results,
/// not retried — shed load is a measured outcome of an open-loop run.
pub fn run_open_loop(server: &Server, inputs: &[Tensor], spec: &LoadSpec) -> RunOutcome {
    let spec = LoadSpec {
        requests: spec.requests.min(inputs.len()),
        ..spec.clone()
    };
    let offsets = arrival_offsets(&spec);
    let start = Instant::now();
    let mut pacer = Pacer::start(if spec.rate_rps > 0.0 { spec.max_burst } else { 0 });
    let mut pending: Vec<(usize, Pending)> = Vec::with_capacity(spec.requests);
    let mut responses: Vec<Option<Result<Tensor, ServeError>>> =
        (0..spec.requests).map(|_| None).collect();
    for (i, offset) in offsets.iter().enumerate() {
        if spec.rate_rps > 0.0 {
            pacer.pace(*offset);
        }
        match server.submit(inputs[i].clone()) {
            Ok(p) => pending.push((i, p)),
            Err(e) => responses[i] = Some(Err(e)),
        }
    }
    for (i, p) in pending {
        responses[i] = Some(p.wait());
    }
    let wall_s = start.elapsed().as_secs_f64();
    let responses: Vec<Result<Tensor, ServeError>> = responses
        .into_iter()
        .map(|r| r.expect("every request is answered or rejected"))
        .collect();
    let completed = responses.iter().filter(|r| r.is_ok()).count();
    RunOutcome {
        throughput_rps: completed as f64 / wall_s.max(1e-9),
        wall_s,
        responses,
        skew_mean_us: pacer.skew_mean_us(),
        skew_max_us: pacer.skew_max_us,
        reanchors: pacer.reanchors,
    }
}

/// Per-sample sequential baseline: one [`Model::predict`] call per input on
/// the calling thread — exactly the loop a caller writes without the
/// runtime — timed the same way as the served run. Returns the predictions
/// (the bit-identity reference) and the rate.
pub fn sequential_baseline(
    model: &(impl Model + ?Sized),
    store: &ParamStore,
    inputs: &[Tensor],
) -> (Vec<Tensor>, f64) {
    let start = Instant::now();
    let outputs: Vec<Tensor> = inputs.iter().map(|x| model.predict(store, x)).collect();
    let rps = outputs.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (outputs, rps)
}

/// One benchmark row, serialisable as a line of `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Model display name.
    pub model: String,
    /// Requests driven through both paths.
    pub requests: usize,
    /// Worker threads in the served run.
    pub workers: usize,
    /// Micro-batch cap in the served run.
    pub max_batch: usize,
    /// Sequential per-sample throughput, requests/second.
    pub sequential_rps: f64,
    /// Served (batched) throughput, requests/second.
    pub served_rps: f64,
    /// Mean requests per dispatched micro-batch.
    pub mean_batch: f64,
    /// Median served request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile served request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile served request latency, microseconds.
    pub p99_us: u64,
    /// Requests shed at admission during the served run.
    pub rejected: u64,
    /// Mean scheduled-vs-actual submission lateness, microseconds.
    pub skew_mean_us: f64,
    /// Worst scheduled-vs-actual submission lateness, microseconds.
    pub skew_max_us: u64,
    /// Times the open-loop schedule re-anchored after a capped burst.
    pub reanchors: u64,
}

impl BenchReport {
    /// Served throughput over sequential throughput.
    pub fn speedup(&self) -> f64 {
        self.served_rps / self.sequential_rps.max(1e-9)
    }

    /// Renders the report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"model\":\"{}\",\"requests\":{},\"workers\":{},\"max_batch\":{},\
             \"sequential_rps\":{:.2},\"served_rps\":{:.2},\"speedup\":{:.3},\
             \"mean_batch\":{:.3},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"rejected\":{},\
             \"skew_mean_us\":{:.1},\"skew_max_us\":{},\"reanchors\":{}}}",
            self.model,
            self.requests,
            self.workers,
            self.max_batch,
            self.sequential_rps,
            self.served_rps,
            self.speedup(),
            self.mean_batch,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.rejected,
            self.skew_mean_us,
            self.skew_max_us,
            self.reanchors
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_deterministic_and_monotonic() {
        let spec = LoadSpec {
            requests: 64,
            rate_rps: 10_000.0,
            seed: 42,
            ..LoadSpec::default()
        };
        let a = arrival_offsets(&spec);
        let b = arrival_offsets(&spec);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|d| d.as_secs_f64().is_finite()));
        // Mean gap should land near 1/rate (loose 3x tolerance: 64 draws).
        let mean_gap = a.last().unwrap().as_secs_f64() / 64.0;
        assert!(
            mean_gap > 1e-5 / 3.0 && mean_gap < 1e-4 * 3.0,
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn unpaced_schedule_is_all_zero() {
        let spec = LoadSpec {
            requests: 5,
            rate_rps: 0.0,
            seed: 1,
            ..LoadSpec::default()
        };
        assert!(arrival_offsets(&spec).iter().all(|d| d.is_zero()));
    }

    #[test]
    fn bench_report_serialises_flat_json() {
        let r = BenchReport {
            model: "MSD-Mixer".into(),
            requests: 1000,
            workers: 4,
            max_batch: 32,
            sequential_rps: 100.0,
            served_rps: 400.0,
            mean_batch: 7.5,
            p50_us: 900,
            p95_us: 2100,
            p99_us: 3000,
            rejected: 3,
            skew_mean_us: 12.5,
            skew_max_us: 480,
            reanchors: 1,
        };
        assert!((r.speedup() - 4.0).abs() < 1e-9);
        let json = r.to_json();
        assert!(json.contains("\"speedup\":4.000"), "{json}");
        assert!(json.contains("\"skew_max_us\":480"), "{json}");
        assert!(json.contains("\"reanchors\":1"), "{json}");
        assert_eq!(json.matches('{').count(), 1, "{json}");
    }

    #[test]
    fn pacer_caps_catchup_bursts_and_records_skew() {
        // A schedule entirely in the past: every arrival is overdue, so an
        // uncapped pacer would fire all of them back-to-back. With
        // max_burst = 4 the schedule must re-anchor at least once, and the
        // skew metrics must see the lateness.
        let mut capped = Pacer::start(4);
        for i in 0..20u64 {
            // Offsets far behind: schedule asked for i µs, we are already ms late.
            std::thread::sleep(Duration::from_micros(50));
            capped.pace(Duration::from_micros(i));
        }
        assert_eq!(capped.submitted, 20);
        assert!(capped.reanchors >= 1, "burst cap never re-anchored");
        assert!(capped.skew_max_us >= capped.skew_total_us / 20);

        // max_burst = 0 preserves the legacy behaviour: never re-anchor.
        let mut uncapped = Pacer::start(0);
        for i in 0..20u64 {
            std::thread::sleep(Duration::from_micros(50));
            uncapped.pace(Duration::from_micros(i));
        }
        assert_eq!(uncapped.reanchors, 0);
        assert!(uncapped.skew_mean_us() > 0.0);
    }
}
