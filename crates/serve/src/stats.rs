//! Always-on serving counters.
//!
//! Every request that enters the runtime is accounted for exactly once in
//! the terminal counters (`completed + failed + rejected + expired ==
//! submitted` after a drained shutdown), so a lost response is directly
//! observable as a counter imbalance rather than a silent hang.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Internal live counters shared by the intake, batcher, and workers.
///
/// Counters are plain relaxed atomics: they order nothing, they only count.
/// Latencies are appended under a mutex; the hot path holds it for one push.
#[derive(Default)]
pub(crate) struct StatsInner {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    plan_batches: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl StatsInner {
    pub(crate) fn note_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched.fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_done(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(latency_us);
    }

    pub(crate) fn note_plan_batch(&self) {
        self.plan_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_failed(&self, n: usize) {
        self.failed.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Admitted-but-unanswered requests, from the relaxed counters.
    /// Saturating: independent relaxed loads can transiently observe a
    /// terminal counter ahead of `submitted`.
    pub(crate) fn in_flight(&self) -> u64 {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let done = self.rejected.load(Ordering::Relaxed)
            + self.completed.load(Ordering::Relaxed)
            + self.failed.load(Ordering::Relaxed)
            + self.expired.load(Ordering::Relaxed);
        submitted.saturating_sub(done)
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let mut lat = self
            .latencies_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        lat.sort_unstable();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched.load(Ordering::Relaxed);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches,
            plan_batches: self.plan_batches.load(Ordering::Relaxed),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            p50_us: percentile(&lat, 50),
            p95_us: percentile(&lat, 95),
            p99_us: percentile(&lat, 99),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
///
/// `pct` is the percentile in whole percent (`50` = median). The rank is
/// the nearest-rank definition `⌈pct·n/100⌉`, computed in integer
/// arithmetic: the old floating-point form `(q * n).ceil()` was off-by-one
/// whenever the product landed just above an integer boundary (`0.55 * 20`
/// is `11.000000000000002` in f64, so its ceiling claimed rank 12 where
/// nearest-rank says 11). Integers make every boundary exact, including the
/// small-sample cases (`n ∈ {1, 2}`) where each misrank is visible.
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100);
    let rank = rank.clamp(1, sorted.len() as u64) as usize;
    sorted[rank - 1]
}

/// A point-in-time snapshot of the runtime's counters.
///
/// Request latency is measured from admission into the queue to the moment
/// the response is handed back, so it includes batching wait and queueing
/// delay, not just model evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeStats {
    /// Submission attempts, admitted or rejected. After a drained shutdown
    /// `completed + failed + rejected + expired == submitted`: every
    /// attempt lands in exactly one terminal column, so a lost request
    /// shows up as an imbalance. See [`ServeStats::ledger_balanced`].
    pub submitted: u64,
    /// Requests refused at intake because the queue was full.
    pub rejected: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests answered with [`crate::ServeError::Internal`].
    pub failed: u64,
    /// Requests shed unevaluated because their deadline passed
    /// ([`crate::ServeError::DeadlineExceeded`]).
    pub expired: u64,
    /// Micro-batches dispatched to workers.
    pub batches: u64,
    /// Micro-batches evaluated through a compiled inference plan (the rest
    /// ran the tape fallback; zero when plans are disabled).
    pub plan_batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Median end-to-end request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile end-to-end request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile end-to-end request latency, microseconds.
    pub p99_us: u64,
}

impl ServeStats {
    /// Whether every submitted request has reached exactly one terminal
    /// column — the runtime's ledger invariant after a drained shutdown.
    /// Mid-run it is simply "nothing in flight".
    pub fn ledger_balanced(&self) -> bool {
        self.completed + self.failed + self.rejected + self.expired == self.submitted
    }

    /// Renders the snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"submitted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"expired\":{},\"batches\":{},\"plan_batches\":{},\"mean_batch\":{:.3},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.expired,
            self.batches,
            self.plan_batches,
            self.mean_batch,
            self.p50_us,
            self.p95_us,
            self.p99_us
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lat, 50), 50);
        assert_eq!(percentile(&lat, 95), 95);
        assert_eq!(percentile(&lat, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn percentiles_known_answers_small_and_large_samples() {
        // Known nearest-rank answers for n ∈ {1, 2, 3, 4, 100}. rank is
        // ⌈pct·n/100⌉ (1-indexed) — exact, no float boundary drift.
        // n = 1: every percentile is the sole element.
        for pct in [1, 50, 95, 99, 100] {
            assert_eq!(percentile(&[7], pct), 7, "n=1 p{pct}");
        }
        // n = 2: p50 → rank ⌈1.0⌉ = 1; p95 → ⌈1.9⌉ = 2; p99 → ⌈1.98⌉ = 2.
        assert_eq!(percentile(&[10, 20], 50), 10);
        assert_eq!(percentile(&[10, 20], 95), 20);
        assert_eq!(percentile(&[10, 20], 99), 20);
        // n = 3: p50 → ⌈1.5⌉ = 2; p95 → ⌈2.85⌉ = 3; p99 → ⌈2.97⌉ = 3.
        assert_eq!(percentile(&[10, 20, 30], 50), 20);
        assert_eq!(percentile(&[10, 20, 30], 95), 30);
        assert_eq!(percentile(&[10, 20, 30], 99), 30);
        // n = 4: p50 → ⌈2.0⌉ = 2 (exact boundary); p95 → ⌈3.8⌉ = 4.
        assert_eq!(percentile(&[10, 20, 30, 40], 50), 20);
        assert_eq!(percentile(&[10, 20, 30, 40], 95), 40);
        assert_eq!(percentile(&[10, 20, 30, 40], 99), 40);
        assert_eq!(percentile(&[10, 20, 30, 40], 25), 10);
        assert_eq!(percentile(&[10, 20, 30, 40], 100), 40);
        // n = 100 boundary cases that trip float ceil: p55·100 = 55 exactly.
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lat, 55), 55);
        assert_eq!(percentile(&lat, 1), 1);
        assert_eq!(percentile(&lat, 100), 100);
        // n = 20: 0.55 * 20 = 11.000000000000002 in f64 → old code said 12.
        let lat20: Vec<u64> = (1..=20).collect();
        assert_eq!(percentile(&lat20, 55), 11);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let inner = StatsInner::default();
        // 6 attempts: 1 rejected at intake, 3 completed, 1 failed,
        // 1 expired — a balanced ledger.
        for _ in 0..6 {
            inner.note_submit();
        }
        inner.note_reject();
        inner.note_batch(3);
        inner.note_done(10);
        inner.note_done(20);
        inner.note_done(30);
        inner.note_failed(1);
        inner.note_expired();
        let s = inner.snapshot();
        assert_eq!(s.submitted, 6);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 3);
        assert_eq!(s.failed, 1);
        assert_eq!(s.expired, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.plan_batches, 0);
        assert!(s.ledger_balanced(), "{s:?}");
        assert_eq!(inner.in_flight(), 0);
        assert!((s.mean_batch - 3.0).abs() < 1e-12);
        assert_eq!(s.p50_us, 20);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"completed\":3"), "{json}");
        assert!(json.contains("\"expired\":1"), "{json}");
    }

    #[test]
    fn in_flight_tracks_unanswered_submissions() {
        let inner = StatsInner::default();
        inner.note_submit();
        inner.note_submit();
        assert_eq!(inner.in_flight(), 2);
        inner.note_done(5);
        assert_eq!(inner.in_flight(), 1);
        inner.note_expired();
        assert_eq!(inner.in_flight(), 0);
    }
}
