//! Always-on serving counters.
//!
//! Every request that enters the runtime is accounted for exactly once in
//! the terminal counters (`completed + failed + rejected == submitted` after
//! a drained shutdown), so a lost response is directly observable as a
//! counter imbalance rather than a silent hang.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Internal live counters shared by the intake, batcher, and workers.
///
/// Counters are plain relaxed atomics: they order nothing, they only count.
/// Latencies are appended under a mutex; the hot path holds it for one push.
#[derive(Default)]
pub(crate) struct StatsInner {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl StatsInner {
    pub(crate) fn note_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched.fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_done(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(latency_us);
    }

    pub(crate) fn note_failed(&self, n: usize) {
        self.failed.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let mut lat = self
            .latencies_us
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        lat.sort_unstable();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched.load(Ordering::Relaxed);
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            p50_us: percentile(&lat, 0.50),
            p95_us: percentile(&lat, 0.95),
            p99_us: percentile(&lat, 0.99),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A point-in-time snapshot of the runtime's counters.
///
/// Request latency is measured from admission into the queue to the moment
/// the response is handed back, so it includes batching wait and queueing
/// delay, not just model evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeStats {
    /// Requests admitted into the queue (excludes rejected ones).
    pub submitted: u64,
    /// Requests refused at intake because the queue was full.
    pub rejected: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests answered with [`crate::ServeError::Internal`].
    pub failed: u64,
    /// Micro-batches dispatched to workers.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Median end-to-end request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile end-to-end request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile end-to-end request latency, microseconds.
    pub p99_us: u64,
}

impl ServeStats {
    /// Renders the snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"submitted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"batches\":{},\"mean_batch\":{:.3},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.submitted,
            self.rejected,
            self.completed,
            self.failed,
            self.batches,
            self.mean_batch,
            self.p50_us,
            self.p95_us,
            self.p99_us
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lat, 0.50), 50);
        assert_eq!(percentile(&lat, 0.95), 95);
        assert_eq!(percentile(&lat, 0.99), 99);
        assert_eq!(percentile(&[7], 0.99), 7);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let inner = StatsInner::default();
        for _ in 0..4 {
            inner.note_submit();
        }
        inner.note_reject();
        inner.note_batch(3);
        inner.note_done(10);
        inner.note_done(20);
        inner.note_done(30);
        inner.note_failed(1);
        let s = inner.snapshot();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 3);
        assert_eq!(s.failed, 1);
        assert_eq!(s.batches, 1);
        assert!((s.mean_batch - 3.0).abs() < 1e-12);
        assert_eq!(s.p50_us, 20);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"completed\":3"), "{json}");
    }
}
