#![warn(missing_docs)]

//! # msd-serve
//!
//! A batched, multi-threaded inference runtime over the unified
//! [`msd_nn::Model`] trait: callers submit single samples, the runtime
//! packs same-shape requests into micro-batches, evaluates each batch with
//! one tape-free forward pass on a worker pool, and splits the result back
//! into per-request responses.
//!
//! The design contract, in order of importance:
//!
//! 1. **Bit-identity** — a batched answer is the *exact* bytes the caller
//!    would get from a sequential [`msd_nn::Model::predict`] call, for
//!    every batch composition. This holds because the tensor kernels
//!    accumulate each output element in a fixed order independent of the
//!    batch extent, and eval-mode forwards are deterministic, so batching
//!    is purely a throughput optimisation, never an accuracy trade.
//! 2. **No lost requests** — every admitted request receives exactly one
//!    response, even when a worker panics mid-batch (the panic is caught
//!    and surfaced as [`ServeError::Internal`] to that batch's callers)
//!    and during shutdown (in-flight batches drain before workers exit).
//! 3. **Typed backpressure** — when the bounded queue is full, submission
//!    fails *immediately* with [`ServeError::Overloaded`]; the runtime
//!    never panics and never blocks the caller on admission.
//!
//! ## Anatomy
//!
//! ```text
//! submit() --try_send--> [bounded queue] --> batcher --> [batch queue] --> workers
//!    |                                        (groups same-shape requests      |
//!    |                                         until max_batch or max_wait)    |
//!    '<------------------- per-request response channel <-----------------'
//! ```
//!
//! The batcher is a single thread, so batch composition is deterministic
//! given an arrival order. Workers each own an [`msd_nn::EvalScratch`] so
//! repeated forwards reuse tape allocations. Counters ([`ServeStats`]) are
//! always on; JSONL telemetry ([`ServeEvent`]) is opt-in via
//! [`ServeConfig::events_path`] and mirrors the training telemetry schema.

pub mod chaos;
mod events;
pub mod loadgen;
mod stats;

pub use chaos::{Chaos, FaultPlan, FaultPoint};
pub use events::ServeEvent;
pub use stats::{percentile, ServeStats};

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use events::EventSink;
use msd_autograd::{CompiledPlan, PlanArena};
use msd_nn::{EvalScratch, Model, ParamStore};
use msd_tensor::Tensor;
use stats::StatsInner;

/// Compiled plans shared by the worker pool, keyed by packed batch shape.
/// `None` caches a failed compile so that shape permanently takes the tape
/// path with no per-batch retry cost.
type PlanCache = Mutex<HashMap<Vec<usize>, Option<Arc<CompiledPlan>>>>;

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Largest micro-batch the batcher will pack (≥ 1).
    pub max_batch: usize,
    /// Longest a seed request waits for companions before its batch is
    /// dispatched anyway. Zero disables coalescing entirely: every request
    /// ships as a batch of one.
    pub max_wait: Duration,
    /// Bound of the admission queue; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Worker threads evaluating batches (≥ 1). Distinct from
    /// `MSD_NUM_THREADS`, which controls intra-op parallelism *inside* one
    /// forward pass.
    pub workers: usize,
    /// Optional JSONL sink for [`ServeEvent`] telemetry.
    pub events_path: Option<PathBuf>,
    /// Evaluate batches through compiled inference plans
    /// ([`msd_nn::Model::compile_plan`]), falling back to tape eval for any
    /// shape whose compile fails. On by default; `MSD_PLAN=off` (or `0`)
    /// overrides this to `false` at [`Server::start`] without a rebuild.
    /// Answers are bit-identical either way — plans only change latency.
    pub use_plans: bool,
    /// Default per-request deadline applied at admission when the caller
    /// does not pass one to [`Server::submit_with_deadline`]. `None` (the
    /// default) means requests never expire — the pre-deadline behavior,
    /// bit for bit.
    pub default_deadline: Option<Duration>,
    /// Explicit fault injector for this server. `None` (the default) falls
    /// back to the process-global `MSD_CHAOS` plan ([`Chaos::from_env`]);
    /// tests inject two isolated instances of one plan to assert schedule
    /// determinism.
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            queue_cap: 256,
            workers: 4,
            events_path: None,
            use_plans: true,
            default_deadline: None,
            chaos: None,
        }
    }
}

impl ServeConfig {
    /// Preset for one-at-a-time callers (the streaming scorer): coalescing
    /// off (`max_wait` zero), a single worker, and batches of one. A
    /// sequential caller gains nothing from the batcher window — it only
    /// adds `max_wait` of dead time per request — and one worker keeps the
    /// evaluation order identical to the submission order, which the stream
    /// replay-determinism gate relies on. Plans stay on: they are
    /// bit-identical to tape eval and this is the latency-sensitive path.
    pub fn low_latency() -> Self {
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 1,
            ..ServeConfig::default()
        }
    }
}

/// Whether `MSD_PLAN` disables compiled plans for this process.
fn plan_env_off() -> bool {
    std::env::var("MSD_PLAN")
        .map(|v| v.eq_ignore_ascii_case("off") || v == "0")
        .unwrap_or(false)
}

/// Why the runtime could not (or will not) answer a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; retry later or shed load.
    Overloaded,
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The runtime dropped the response channel without answering. This is
    /// a bug guard; the drain invariant means callers should never see it.
    Canceled,
    /// A worker panicked while evaluating the batch containing this
    /// request; the payload is the panic message.
    Internal(String),
    /// The request's deadline passed before a worker evaluated it; it was
    /// shed without running the model. Maps to HTTP 504 at the gateway.
    DeadlineExceeded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Canceled => write!(f, "request canceled without a response"),
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One admitted request travelling through the runtime.
struct Request {
    x: Tensor,
    admitted: Instant,
    /// Absolute deadline; `None` never expires. Checked by the batcher
    /// before packing and by workers before evaluating, so an expired
    /// request is shed instead of burning model time on an answer nobody
    /// is waiting for.
    deadline: Option<Instant>,
    resp: SyncSender<Result<Tensor, ServeError>>,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// A handle to one in-flight request.
pub struct Pending {
    rx: Receiver<Result<Tensor, ServeError>>,
}

impl Pending {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Canceled))
    }

    /// Returns the response if it has already arrived.
    pub fn try_wait(&mut self) -> Option<Result<Tensor, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Canceled)),
        }
    }

    /// Blocks for at most `timeout`, returning `None` if no response
    /// arrived in time. Non-consuming: the handle stays valid, so a caller
    /// can poll again, give up, or fall back to [`Pending::wait`] — it
    /// never blocks forever on a wedged worker. The late response, if one
    /// eventually arrives, is received by a later call or discarded when
    /// the handle drops; the runtime's ledger counts it either way.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<Tensor, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Canceled)),
        }
    }
}

/// State shared by the intake, the batcher, and every worker.
struct Shared {
    stats: StatsInner,
    events: EventSink,
}

/// The running inference server. Dropping it (or calling
/// [`Server::shutdown`]) drains all in-flight work before returning.
pub struct Server {
    intake: Option<SyncSender<Request>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    default_deadline: Option<Duration>,
}

impl Server {
    /// Spawns the batcher and worker threads and starts serving `model`
    /// with the (frozen) parameters in `store`.
    ///
    /// Fails only if `cfg.events_path` cannot be opened for appending.
    pub fn start(
        model: impl Model + Send + Sync + 'static,
        store: ParamStore,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let max_batch = cfg.max_batch.max(1);
        let workers = cfg.workers.max(1);
        let events = match &cfg.events_path {
            Some(path) => EventSink::to_path(path)?,
            None => EventSink::disabled(),
        };
        let shared = Arc::new(Shared {
            stats: StatsInner::default(),
            events,
        });
        let engine: Arc<(Box<dyn Model + Send + Sync>, ParamStore)> =
            Arc::new((Box::new(model), store));

        let (intake_tx, intake_rx) = sync_channel::<Request>(cfg.queue_cap.max(1));
        // The batch queue is bounded by the worker count: if every worker
        // is busy, the batcher blocks here, the admission queue fills, and
        // intake starts rejecting — backpressure propagates to callers as
        // typed errors instead of unbounded memory growth.
        let (batch_tx, batch_rx) = sync_channel::<Vec<Request>>(workers);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let batcher = {
            let shared = Arc::clone(&shared);
            let max_wait = cfg.max_wait;
            std::thread::Builder::new()
                .name("msd-serve-batcher".into())
                .spawn(move || batcher_loop(intake_rx, batch_tx, max_batch, max_wait, &shared))
                .expect("spawn batcher thread")
        };
        let use_plans = cfg.use_plans && !plan_env_off();
        let chaos = cfg.chaos.clone().or_else(Chaos::from_env);
        // Compiled plans are pool-global: compilation is expensive (traces
        // plus probe verification at the full batch shape), so a shape must
        // compile at most once per server, not once per worker.
        let plan_cache: Arc<PlanCache> = Arc::new(Mutex::new(HashMap::new()));
        let workers = (0..workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&batch_rx);
                let shared = Arc::clone(&shared);
                let plan_cache = Arc::clone(&plan_cache);
                let chaos = chaos.clone();
                std::thread::Builder::new()
                    .name(format!("msd-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&engine, &rx, &shared, use_plans, &plan_cache, chaos)
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        Ok(Server {
            intake: Some(intake_tx),
            batcher: Some(batcher),
            workers,
            shared,
            default_deadline: cfg.default_deadline,
        })
    }

    /// Submits one sample (shaped `[1, C, L]`, matching
    /// [`msd_nn::Model::predict_batch`]'s per-sample convention) and
    /// returns a handle to the in-flight response.
    ///
    /// Never blocks: a full queue is an immediate [`ServeError::Overloaded`].
    ///
    /// The request carries [`ServeConfig::default_deadline`] (none by
    /// default); use [`Server::submit_with_deadline`] for a caller-chosen
    /// deadline.
    pub fn submit(&self, x: Tensor) -> Result<Pending, ServeError> {
        let deadline = self.default_deadline.map(|d| Instant::now() + d);
        self.submit_with_deadline(x, deadline)
    }

    /// [`Server::submit`] with an explicit absolute deadline (`None` never
    /// expires, overriding any configured default).
    ///
    /// A request whose deadline passes before a worker evaluates it is shed
    /// — answered [`ServeError::DeadlineExceeded`] and counted in
    /// [`ServeStats::expired`] — without running the model. A deadline
    /// does not interrupt an evaluation already in flight: once a live
    /// request enters the forward pass it completes normally, so answers
    /// stay bit-identical regardless of deadline pressure.
    pub fn submit_with_deadline(
        &self,
        x: Tensor,
        deadline: Option<Instant>,
    ) -> Result<Pending, ServeError> {
        let intake = self.intake.as_ref().ok_or(ServeError::ShuttingDown)?;
        let (tx, rx) = sync_channel(1);
        let req = Request {
            x,
            admitted: Instant::now(),
            deadline,
            resp: tx,
        };
        match intake.try_send(req) {
            Ok(()) => {
                self.shared.stats.note_submit();
                Ok(Pending { rx })
            }
            Err(TrySendError::Full(_)) => {
                // A rejected attempt still counts as submitted, so the
                // terminal ledger reads `completed + failed + rejected +
                // expired == submitted` — every attempt is accounted for.
                self.shared.stats.note_submit();
                self.shared.stats.note_reject();
                self.shared.events.emit(&ServeEvent::Reject);
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// [`Server::submit`] + [`Pending::wait`] in one blocking call.
    pub fn infer(&self, x: Tensor) -> Result<Tensor, ServeError> {
        self.submit(x)?.wait()
    }

    /// A live snapshot of the runtime's counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Requests admitted but not yet answered, from the relaxed counters.
    ///
    /// Cheap — no latency-vector clone like [`Server::stats`] — so
    /// admission-control policies (the gateway's brownout) can consult it
    /// per request. Reads of independent relaxed counters can race, so the
    /// value may transiently be off by the number of in-flight counter
    /// updates; it is a load signal, not a ledger.
    pub fn in_flight(&self) -> u64 {
        self.shared.stats.in_flight()
    }

    /// Stops admitting requests, drains every in-flight batch, joins all
    /// threads, and returns the final counters.
    ///
    /// `shutdown` consumes `self`, so `Drop` runs afterwards and calls
    /// [`Server::drain`] a second time — `drain` is idempotent by
    /// construction (every field it touches is `take`n or `drain`ed on the
    /// first pass), so the second pass joins nothing and cannot double-join
    /// a thread. The counter invariant `completed + failed + rejected +
    /// expired == submitted` holds at the moment `shutdown` returns even
    /// when a worker panics on a batch *during* the drain: the panic is
    /// caught in
    /// [`worker_loop`] and every request of that batch is answered and
    /// counted as failed before the worker picks up its next batch.
    pub fn shutdown(mut self) -> ServeStats {
        self.drain();
        let stats = self.shared.stats.snapshot();
        self.shared.events.emit(&ServeEvent::Stop {
            stats: stats.clone(),
        });
        self.shared.events.flush();
        stats
    }

    fn drain(&mut self) {
        // Dropping the intake sender ends the batcher's recv loop once the
        // queue is empty; the batcher then drops the batch sender, which
        // ends the workers once dispatched batches are answered.
        //
        // Idempotent: `take()`/`drain(..)` leave nothing behind for a second
        // call (shutdown-then-Drop) to join again. Worker panics never reach
        // `join` as an `Err` from inside a batch — `worker_loop` catches
        // them — so an `Err` here can only mean a bug outside the eval path;
        // ignoring it is safe because every response channel a dead thread
        // held is dropped, which surfaces to callers as `Canceled` rather
        // than a hang.
        drop(self.intake.take());
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
        self.shared.events.flush();
    }
}

/// Groups admitted requests into micro-batches.
///
/// A batch is seeded by the first waiting request, then grows with every
/// same-shape arrival until it reaches `max_batch` or the seed has waited
/// `max_wait`. A differently-shaped arrival closes the current batch and
/// seeds the next one, so mixed-shape traffic degrades to smaller batches
/// instead of failing.
fn batcher_loop(
    rx: Receiver<Request>,
    tx: SyncSender<Vec<Request>>,
    max_batch: usize,
    max_wait: Duration,
    shared: &Shared,
) {
    let mut pending: Option<Request> = None;
    loop {
        let seed = match pending.take() {
            Some(r) => r,
            None => match rx.recv() {
                Ok(r) => r,
                Err(_) => break, // intake closed and queue drained
            },
        };
        // Shed a seed that expired while queued: answering it now costs a
        // channel send; packing it would cost a model evaluation nobody is
        // waiting for.
        if seed.expired(Instant::now()) {
            expire(shared, seed);
            continue;
        }
        // The coalescing window is anchored at the seed's *admission*, not
        // at the moment the batcher picked it up. A seed that already sat in
        // the queue — in particular a shape-change request parked in
        // `pending` while the previous batch finished collecting — has spent
        // its wait budget; re-anchoring at pop time silently extended its
        // worst-case latency to nearly 2× `max_wait`.
        let deadline = seed.admitted + max_wait;
        let mut batch = vec![seed];
        let mut closed = false;
        // Already-queued same-shape requests are free companions: drain them
        // without consulting the deadline, so an expired window (seed aged
        // in the queue) still packs the burst instead of degrading to
        // singleton batches.
        while !closed && batch.len() < max_batch {
            match rx.try_recv() {
                Ok(r) if r.expired(Instant::now()) => expire(shared, r),
                Ok(r) if r.x.shape() == batch[0].x.shape() => batch.push(r),
                Ok(r) => {
                    pending = Some(r);
                    closed = true;
                }
                Err(_) => break,
            }
        }
        while !closed && batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(r) => {
                    if r.expired(Instant::now()) {
                        expire(shared, r);
                    } else if r.x.shape() == batch[0].x.shape() {
                        batch.push(r);
                    } else {
                        pending = Some(r);
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        shared.stats.note_batch(batch.len());
        if let Err(send_err) = tx.send(batch) {
            // Every worker is gone (the only way the batch channel closes
            // while the batcher lives). The failed send hands the batch
            // back; answer each request instead of dropping it on the floor,
            // which would strand callers on `Canceled` and leave the
            // `completed+failed+rejected == submitted` ledger unbalanced.
            let batch = send_err.0;
            shared.stats.note_failed(batch.len());
            for r in batch {
                let _ = r
                    .resp
                    .send(Err(ServeError::Internal("worker pool exited".into())));
            }
            break;
        }
    }
    // Unreachable unless the worker pool died with a batch seeded: answer
    // rather than drop it, upholding the one-response-per-request invariant.
    if let Some(r) = pending.take() {
        let _ = r
            .resp
            .send(Err(ServeError::Internal("worker pool exited".into())));
        shared.stats.note_failed(1);
    }
}

/// Answers one expired request ([`ServeError::DeadlineExceeded`]) and
/// counts it in the `expired` ledger column.
fn expire(shared: &Shared, r: Request) {
    shared.stats.note_expired();
    shared.events.emit(&ServeEvent::Expired);
    let _ = r.resp.send(Err(ServeError::DeadlineExceeded));
}

/// Evaluates batches until the batch queue closes.
///
/// With `use_plans` set, workers evaluate through the pool-shared
/// [`PlanCache`]: a packed batch shape compiles at most once per *server*
/// (the first worker to see it compiles under the cache lock; peers block
/// briefly, then reuse the `Arc`'d plan), and each worker keeps a private
/// lock-free mirror so the steady-state hot path never touches the mutex.
/// A failed compile caches the typed failure, so that shape permanently
/// takes the tape path with no per-batch retry cost. Plan answers are
/// bit-identical to the tape path by the compile-time probe verification
/// in [`Model::compile_plan`], so the fallback is invisible to callers.
fn worker_loop(
    engine: &(Box<dyn Model + Send + Sync>, ParamStore),
    rx: &Mutex<Receiver<Vec<Request>>>,
    shared: &Shared,
    use_plans: bool,
    plan_cache: &PlanCache,
    chaos: Option<Arc<Chaos>>,
) {
    let (model, store) = engine;
    let mut scratch = EvalScratch::new();
    let mut plans: HashMap<Vec<usize>, Option<Arc<CompiledPlan>>> = HashMap::new();
    let mut arena = PlanArena::new();
    loop {
        // Hold the lock only for the dequeue so workers drain in parallel.
        let popped = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            match guard.recv() {
                Ok(b) => b,
                Err(_) => break,
            }
        };
        // Last expiry check before spending model time: members whose
        // deadline passed while the batch sat in the dispatch queue are
        // shed here, and a batch with no live member left skips evaluation
        // entirely. The split cannot perturb bit-identity for the
        // survivors — per-sample outputs are independent of batch
        // composition by the runtime's core contract.
        let now = Instant::now();
        let mut batch = Vec::with_capacity(popped.len());
        for r in popped {
            if r.expired(now) {
                expire(shared, r);
            } else {
                batch.push(r);
            }
        }
        if batch.is_empty() {
            continue;
        }
        let xs: Vec<Tensor> = batch.iter().map(|r| r.x.clone()).collect();
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Chaos probes sit inside `catch_unwind`, exactly where a model
            // bug would surface, so an injected panic exercises the real
            // containment path rather than a parallel one.
            if let Some(c) = &chaos {
                if let Some(stall) = c.worker_stall() {
                    std::thread::sleep(stall);
                }
                if c.worker_panic() {
                    panic!("chaos: injected worker panic");
                }
            }
            if use_plans && xs.iter().all(|x| x.ndim() >= 1 && x.shape()[0] == 1) {
                // Pack exactly like `predict_batch` so shapes (and answers)
                // are byte-for-byte the same on both paths.
                let packed = Tensor::concat(&xs.iter().collect::<Vec<_>>(), 0);
                let shape = packed.shape().to_vec();
                let plan = match plans.get(&shape) {
                    Some(p) => p.clone(),
                    None => {
                        let p = {
                            let mut cache =
                                plan_cache.lock().unwrap_or_else(|p| p.into_inner());
                            cache
                                .entry(shape.clone())
                                .or_insert_with(|| {
                                    // Compilation always traces and verifies
                                    // at f32; an int8-tier store then lowers
                                    // the plan's matmuls onto the int8
                                    // kernels as an explicit post-step.
                                    model.compile_plan(store, &shape).ok().map(|mut plan| {
                                        if store.tier() == msd_nn::PrecisionTier::Int8 {
                                            plan.lower_int8(store);
                                        }
                                        Arc::new(plan)
                                    })
                                })
                                .clone()
                        };
                        plans.insert(shape, p.clone());
                        p
                    }
                };
                if let Some(plan) = plan {
                    shared.stats.note_plan_batch();
                    let full = model.predict_plan(&plan, store, &packed, &mut arena);
                    return (0..xs.len()).map(|i| full.narrow(0, i, 1)).collect();
                }
            }
            model.predict_batch_with(&mut scratch, store, &xs)
        }));
        let eval_us = t0.elapsed().as_micros() as u64;
        match result {
            Ok(ys) if ys.len() == batch.len() => {
                let size = batch.len();
                for (req, y) in batch.into_iter().zip(ys) {
                    shared.stats.note_done(req.admitted.elapsed().as_micros() as u64);
                    let _ = req.resp.send(Ok(y));
                }
                shared.events.emit(&ServeEvent::BatchEnd { size, eval_us });
            }
            Ok(ys) => {
                // A model returning the wrong output count is a contract
                // violation; zipping would silently truncate and strand the
                // tail of the batch without a response. Fail the whole batch
                // loudly instead.
                let message = format!(
                    "model returned {} outputs for a batch of {}",
                    ys.len(),
                    batch.len()
                );
                shared.stats.note_failed(batch.len());
                for req in batch {
                    let _ = req.resp.send(Err(ServeError::Internal(message.clone())));
                }
                shared.events.emit(&ServeEvent::WorkerPanic { message });
            }
            Err(payload) => {
                // The half-built tape is gone with the unwound stack; start
                // the scratch arena fresh rather than reason about its state.
                scratch = EvalScratch::new();
                let message = panic_message(payload.as_ref());
                shared.stats.note_failed(batch.len());
                for req in batch {
                    let _ = req.resp.send(Err(ServeError::Internal(message.clone())));
                }
                shared.events.emit(&ServeEvent::WorkerPanic { message });
            }
        }
    }
}

// Takes the unboxed trait object: coercing `&Box<dyn Any>` would downcast
// against the Box itself and never match the payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}
