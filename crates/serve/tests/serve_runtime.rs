//! End-to-end tests of the serving runtime against a small real model:
//! bit-identity under every batch composition, typed backpressure, panic
//! containment, drained shutdown, and a 1000-request mixed-shape smoke.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use msd_nn::{Ctx, Linear, Model, ModelOutput, ParamStore, Task};
use msd_serve::loadgen::{run_open_loop, sequential_baseline, LoadSpec};
use msd_serve::{Chaos, FaultPlan, ServeConfig, ServeError, Server};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// A linear forecaster over the flattened input. `len`-generic so tests can
/// drive mixed request shapes through one server.
struct Affine {
    task: Task,
    lin: Linear,
    out_channels: usize,
    in_len: usize,
}

impl Affine {
    fn new(store: &mut ParamStore, channels: usize, len: usize) -> Self {
        let mut rng = Rng::seed_from(5);
        Affine {
            task: Task::Forecast { horizon: 4 },
            lin: Linear::new(store, &mut rng, "affine", channels * len, channels * 4),
            out_channels: channels,
            in_len: channels * len,
        }
    }
}

impl Model for Affine {
    fn name(&self) -> &str {
        "affine"
    }
    fn task(&self) -> &Task {
        &self.task
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        let b = x.shape()[0];
        assert_eq!(
            x.shape()[1] * x.shape()[2],
            self.in_len,
            "affine model saw an unexpected sample shape"
        );
        let v = ctx.g.input(x.reshape(&[b, self.in_len]));
        let y = self.lin.forward(ctx, v);
        ModelOutput::pred_only(ctx.g.reshape(y, &[b, self.out_channels, 4]))
    }
}

/// The sentinel value that makes [`Tripwire`] panic mid-forward.
const POISON: f32 = -12345.0;

/// A model that panics whenever a sample starts with the poison sentinel.
struct Tripwire(Affine);

impl Model for Tripwire {
    fn name(&self) -> &str {
        "tripwire"
    }
    fn task(&self) -> &Task {
        self.0.task()
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        assert!(x.data()[0] != POISON, "tripwire: poisoned sample");
        self.0.forward(ctx, x)
    }
}

/// A model that parks every forward call until the test opens the gate —
/// used to hold the sole worker (and therefore the batch channel) busy while
/// the batcher is forced to seed from an already-aged parked request.
struct Gated {
    inner: Affine,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl Model for Gated {
    fn name(&self) -> &str {
        "gated"
    }
    fn task(&self) -> &Task {
        self.inner.task()
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        let (lock, cv) = &*self.gate;
        let open = lock.lock().unwrap();
        // 5 s cap: a scheduling accident must fail the latency assert in the
        // test body, not hang the whole suite.
        let _unused = cv
            .wait_timeout_while(open, Duration::from_secs(5), |o| !*o)
            .unwrap();
        self.inner.forward(ctx, x)
    }
}

fn sample(channels: usize, len: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(&[1, channels, len], 1.0, &mut rng)
}

fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).collect::<Vec<_>>().into_iter().enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

#[test]
fn served_responses_are_bit_identical_to_sequential_predict() {
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, 2, 6);
    let inputs: Vec<Tensor> = (0..64).map(|i| sample(2, 6, 100 + i)).collect();
    let (reference, _) = sequential_baseline(&model, &store, &inputs);

    // Sweep batching regimes: no coalescing, tiny batches, large batches
    // with a generous wait (the whole backlog packs together). Bit-identity
    // must hold for every composition the batcher can produce.
    for (max_batch, max_wait_us) in [(1, 0u64), (3, 2_000), (32, 20_000)] {
        let mut store2 = ParamStore::new();
        let model2 = Affine::new(&mut store2, 2, 6);
        let server = Server::start(
            model2,
            store2,
            ServeConfig {
                max_batch,
                max_wait: Duration::from_micros(max_wait_us),
                workers: 3,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let pending: Vec<_> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).expect("queue has room"))
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let y = p.wait().expect("request must succeed");
            assert_bits_equal(&y, &reference[i], &format!("max_batch={max_batch} req {i}"));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 64);
        assert_eq!(stats.failed + stats.rejected, 0);
        if max_batch == 1 {
            assert_eq!(stats.batches, 64, "no coalescing at max_batch=1");
        }
    }
}

#[test]
fn full_queue_rejects_with_typed_overload_error() {
    let mut store = ParamStore::new();
    // Large model input keeps workers busy long enough to fill the queue.
    let model = Affine::new(&mut store, 4, 256);
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_cap: 2,
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut accepted = Vec::new();
    let mut rejections = 0usize;
    for i in 0..200 {
        match server.submit(sample(4, 256, i)) {
            Ok(p) => accepted.push(p),
            Err(ServeError::Overloaded) => rejections += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejections > 0, "a cap-2 queue must shed some of 200 instant arrivals");
    for p in accepted {
        p.wait().expect("accepted requests still complete");
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected, rejections as u64);
    // `submitted` counts every attempt, rejected or admitted, so the
    // terminal ledger balances by construction.
    assert_eq!(stats.submitted, 200);
    assert_eq!(stats.completed, stats.submitted - stats.rejected);
    assert!(stats.ledger_balanced(), "{stats:?}");
}

#[test]
fn worker_panic_fails_only_that_batch_and_serving_continues() {
    let mut store = ParamStore::new();
    let model = Tripwire(Affine::new(&mut store, 2, 6));
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 1, // isolate the poisoned sample in its own batch
            max_wait: Duration::ZERO,
            workers: 2,
            // A compiled plan replays kernels without re-entering `forward`,
            // so Tripwire's data-dependent panic would never fire; this test
            // is specifically about tape-path panic containment.
            use_plans: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let good_before = server.submit(sample(2, 6, 1)).unwrap();
    let mut poison = sample(2, 6, 2);
    poison.data_mut()[0] = POISON;
    let poisoned = server.submit(poison).unwrap();
    let good_after = server.submit(sample(2, 6, 3)).unwrap();

    good_before.wait().expect("clean request before the panic");
    match poisoned.wait() {
        Err(ServeError::Internal(msg)) => {
            assert!(msg.contains("tripwire"), "panic message surfaced: {msg}")
        }
        other => panic!("poisoned request must fail with Internal, got {other:?}"),
    }
    good_after
        .wait()
        .expect("the pool must keep serving after a contained panic");
    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
}

#[test]
fn worker_panic_during_shutdown_keeps_counters_balanced() {
    // Satellite regression: `shutdown` drains while a batch is still being
    // evaluated; a panic *inside that drain window* must still answer every
    // request and keep `completed + failed + rejected == submitted`. The
    // shutdown-then-Drop double-drain must also be a no-op (no double-join
    // hang, no poisoned-lock panic).
    for seed in 0..5u64 {
        let mut store = ParamStore::new();
        let model = Tripwire(Affine::new(&mut store, 2, 6));
        let server = Server::start(
            model,
            store,
            ServeConfig {
                max_batch: 1, // each sample is its own batch
                max_wait: Duration::ZERO,
                queue_cap: 64,
                workers: 2,
                use_plans: false, // Tripwire panics live in `forward`, not the plan
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut pending = Vec::new();
        let mut submitted = 0u64;
        for i in 0..24u64 {
            let mut x = sample(2, 6, seed * 1000 + i);
            // Poison a third of the batches; they panic whenever the worker
            // reaches them — for late queue positions that is mid-drain.
            if i % 3 == 1 {
                x.data_mut()[0] = POISON;
            }
            if let Ok(p) = server.submit(x) {
                pending.push((i, p));
                submitted += 1;
            }
        }
        // Shut down immediately: most of the queue is still in flight, so
        // poisoned batches panic while the drain is running.
        let stats = server.shutdown();
        assert_eq!(stats.submitted, submitted);
        assert_eq!(stats.rejected, 0, "cap-64 queue must admit all 24");
        assert_eq!(
            stats.completed + stats.failed + stats.rejected,
            stats.submitted,
            "ledger imbalance: {stats:?}"
        );
        assert!(stats.failed >= 1, "at least one poisoned batch must fail");
        // Every handle resolves: a typed error, never a Canceled hang.
        for (i, p) in pending {
            match p.wait() {
                Ok(_) => assert!(i % 3 != 1, "poisoned request {i} succeeded"),
                Err(ServeError::Internal(_)) => assert!(i % 3 == 1, "clean request {i} failed"),
                Err(e) => panic!("request {i}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn shape_change_seed_keeps_its_admission_deadline() {
    // Regression: the batcher used to re-anchor the coalescing window at the
    // moment it *popped* a seed rather than at the seed's admission. A
    // shape-change request parked in `pending` while the batcher blocked on a
    // full batch channel then waited up to ~2× max_wait end to end. Rebuild
    // that stall with a gated model and assert the parked request's latency
    // stays near 1× max_wait.
    let max_wait = Duration::from_millis(600);
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut store = ParamStore::new();
    let model = Gated {
        inner: Affine::new(&mut store, 2, 6),
        gate: gate.clone(),
    };
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 2,
            max_wait,
            workers: 1,
            queue_cap: 64,
            use_plans: false, // keep `forward` (and the gate) on the hot path
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Batch 1 fills and reaches the (gated) worker; batch 2 fills the 1-deep
    // batch channel; G5 seeds batch 3, which the shape-change arrival B1
    // closes — leaving the batcher blocked in `tx.send` with B1 parked.
    let _g1 = server.submit(sample(2, 6, 1)).unwrap();
    let _g2 = server.submit(sample(2, 6, 2)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let _g3 = server.submit(sample(2, 6, 3)).unwrap();
    let _g4 = server.submit(sample(2, 6, 4)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let _g5 = server.submit(sample(2, 6, 5)).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let submitted_b = Instant::now();
    let b1 = server.submit(sample(1, 12, 6)).unwrap(); // parks as `pending`

    // Hold the pipeline stalled past B1's whole wait budget, then release.
    std::thread::sleep(Duration::from_millis(700));
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    b1.wait().expect("parked request completes");
    let latency = submitted_b.elapsed();
    // Correct admission anchoring: B1's window expired while it was parked,
    // so its batch closes as soon as the batcher unblocks (~700 ms). The old
    // re-anchoring granted a fresh window at pop time (~1300 ms). The
    // threshold splits the gap with slack for slow CI on both sides.
    assert!(
        latency < Duration::from_millis(1000),
        "shape-change seed inherited a fresh coalescing window: {latency:?}"
    );
    server.shutdown();
}

#[test]
fn expired_requests_are_shed_with_a_typed_deadline_error() {
    // A gated sole worker wedges the pipeline; requests submitted with an
    // already-short deadline must come back `DeadlineExceeded` from the
    // batcher's shed path — typed, counted, and without waiting for the
    // worker — while the healthy request completes once the gate opens.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut store = ParamStore::new();
    let model = Gated {
        inner: Affine::new(&mut store, 2, 6),
        gate: gate.clone(),
    };
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 1,
            use_plans: false, // keep the gate on the hot path
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Occupies the worker (and then some): batches queue behind the gate.
    let healthy = server.submit(sample(2, 6, 1)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // Deadline already in the past at submission: sheddable on arrival.
    let doomed: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit_with_deadline(sample(2, 6, 10 + i), Some(Instant::now()))
                .unwrap()
        })
        .collect();
    let shed_started = Instant::now();
    for p in doomed {
        match p.wait() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert!(
        shed_started.elapsed() < Duration::from_secs(2),
        "shedding must not wait out the wedged worker"
    );
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    healthy.wait().expect("healthy request survives");
    let stats = server.shutdown();
    assert_eq!(stats.expired, 4, "{stats:?}");
    assert_eq!(stats.completed, 1);
    assert!(stats.ledger_balanced(), "{stats:?}");
}

#[test]
fn wait_timeout_reports_a_stalled_worker_without_consuming_the_answer() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut store = ParamStore::new();
    let model = Gated {
        inner: Affine::new(&mut store, 2, 6),
        gate: gate.clone(),
    };
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 1,
            use_plans: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut pending = server.submit(sample(2, 6, 1)).unwrap();
    // The worker is parked on the gate: bounded waits report "not yet"
    // (None) and can be repeated — a timeout must not eat the answer.
    assert!(pending.wait_timeout(Duration::from_millis(40)).is_none());
    assert!(pending.wait_timeout(Duration::from_millis(40)).is_none());
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    match pending.wait_timeout(Duration::from_secs(5)) {
        Some(Ok(_)) => {}
        other => panic!("expected the answer after the gate opened, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn chaos_schedules_replay_bit_identically_for_the_same_seed() {
    // Two fresh servers under the same fault plan, driven with the same
    // sequential request stream, must produce identical outcomes per
    // request, identical fired-fault logs, balanced ledgers, and
    // bit-identical successful responses.
    let plan = FaultPlan::parse("seed:42,worker_panic:0.25,worker_stall:0.1,worker_stall_ms:5")
        .unwrap();
    let run = |plan: FaultPlan| {
        let mut store = ParamStore::new();
        let model = Affine::new(&mut store, 2, 6);
        let chaos = Arc::new(Chaos::new(plan));
        let server = Server::start(
            model,
            store,
            ServeConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                workers: 1, // one worker + sequential driving = total order
                chaos: Some(chaos.clone()),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut outcomes: Vec<Result<Vec<u32>, String>> = Vec::new();
        for i in 0..60u64 {
            let r = server.submit(sample(2, 6, i)).unwrap().wait();
            outcomes.push(match r {
                Ok(y) => Ok(y.data().iter().map(|v| v.to_bits()).collect()),
                Err(e) => Err(format!("{e:?}")),
            });
        }
        let stats = server.shutdown();
        assert!(stats.ledger_balanced(), "{stats:?}");
        assert_eq!(stats.completed + stats.failed, 60, "no hung request");
        (outcomes, chaos.fired())
    };
    let (outcomes_a, fired_a) = run(plan.clone());
    let (outcomes_b, fired_b) = run(plan);
    assert!(
        outcomes_a.iter().any(|o| o.is_err()),
        "a 25% panic rate over 60 requests must inject something"
    );
    assert!(
        outcomes_a.iter().any(|o| o.is_ok()),
        "some requests must survive"
    );
    assert_eq!(outcomes_a, outcomes_b, "same seed, different outcomes");
    assert_eq!(fired_a, fired_b, "same seed, different fault schedule");
}

#[test]
fn shutdown_drains_every_in_flight_request() {
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, 2, 6);
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let pending: Vec<_> = (0..40)
        .map(|i| server.submit(sample(2, 6, i)).unwrap())
        .collect();
    let stats = server.shutdown(); // returns only after the drain
    assert_eq!(stats.completed, 40);
    assert_eq!(stats.failed + stats.rejected, 0);
    for p in pending {
        p.wait().expect("drained request still delivers its response");
    }
}

#[test]
fn smoke_1k_mixed_shape_requests_zero_lost_zero_corrupted() {
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, 2, 6);
    // Two request shapes with equal flattened length: same model, but the
    // batcher must never pack them together.
    let inputs: Vec<Tensor> = (0..1000)
        .map(|i| {
            if i % 3 == 0 {
                sample(2, 6, i)
            } else {
                sample(1, 12, i)
            }
        })
        .collect();
    let (reference, _) = sequential_baseline(&model, &store, &inputs);

    let events = std::env::temp_dir().join("msd_serve_smoke_events.jsonl");
    let _ = std::fs::remove_file(&events);
    let mut store2 = ParamStore::new();
    let model2 = Affine::new(&mut store2, 2, 6);
    let server = Server::start(
        model2,
        store2,
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(300),
            queue_cap: 2048,
            workers: 4,
            events_path: Some(events.clone()),
            use_plans: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let outcome = run_open_loop(
        &server,
        &inputs,
        &LoadSpec {
            requests: 1000,
            rate_rps: 0.0, // flat out; queue_cap covers the full load
            seed: 7,
            ..LoadSpec::default()
        },
    );
    assert_eq!(outcome.responses.len(), 1000);
    for (i, resp) in outcome.responses.iter().enumerate() {
        let y = resp.as_ref().expect("no request may be lost or shed");
        assert_bits_equal(y, &reference[i], &format!("smoke req {i}"));
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 1000);
    assert_eq!(stats.completed, 1000);
    assert_eq!(stats.rejected + stats.failed, 0);
    assert!(stats.mean_batch >= 1.0);

    let text = std::fs::read_to_string(&events).unwrap();
    let batch_lines = text.lines().filter(|l| l.contains("serve_batch")).count() as u64;
    assert_eq!(batch_lines, stats.batches, "one JSONL line per batch");
    assert!(text.lines().any(|l| l.contains("serve_stop")));
    let _ = std::fs::remove_file(&events);
}

#[test]
fn low_latency_preset_is_bit_identical_and_keeps_submission_order() {
    let cfg = ServeConfig::low_latency();
    assert_eq!(cfg.max_batch, 1);
    assert_eq!(cfg.max_wait, Duration::ZERO);
    assert_eq!(cfg.workers, 1);

    // Affine's init seed is fixed, so two builds are bit-identical: one is
    // the sequential reference, one goes to the server.
    let mut ref_store = ParamStore::new();
    let ref_model = Affine::new(&mut ref_store, 2, 16);
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, 2, 16);
    let server = Server::start(model, store, cfg).unwrap();

    for i in 0..32u64 {
        let x = sample(2, 16, 900 + i);
        let y = server.infer(x.clone()).expect("low-latency request succeeds");
        assert_bits_equal(&y, &ref_model.predict(&ref_store, &x), "low-latency response");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 32);
    assert_eq!(stats.batches, 32, "batch-of-one: no coalescing");
    assert!(stats.ledger_balanced(), "{}", stats.to_json());
}
