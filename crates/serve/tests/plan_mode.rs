//! Compiled-plan execution knobs: by default the workers serve single-sample
//! traffic through a [`CompiledPlan`]; `ServeConfig::use_plans = false` or
//! `MSD_PLAN=off` falls back to the tape. Either way the responses must be
//! bit-identical to sequential `Model::predict` — the knob may only move the
//! `plan_batches` counter.
//!
//! One `#[test]` on purpose: `MSD_PLAN` is process-wide, so the three server
//! configurations must run sequentially.

use std::time::Duration;

use msd_nn::{Ctx, Linear, Model, ModelOutput, ParamStore, Task};
use msd_serve::loadgen::sequential_baseline;
use msd_serve::{ServeConfig, ServeStats, Server};
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

/// A linear forecaster over the flattened input (plan-compilable: reshape
/// alias + one linear step).
struct Affine {
    task: Task,
    lin: Linear,
    out_channels: usize,
    in_len: usize,
}

impl Affine {
    fn new(store: &mut ParamStore, channels: usize, len: usize) -> Self {
        let mut rng = Rng::seed_from(5);
        Affine {
            task: Task::Forecast { horizon: 4 },
            lin: Linear::new(store, &mut rng, "affine", channels * len, channels * 4),
            out_channels: channels,
            in_len: channels * len,
        }
    }
}

impl Model for Affine {
    fn name(&self) -> &str {
        "affine"
    }
    fn task(&self) -> &Task {
        &self.task
    }
    fn forward(&self, ctx: &Ctx, x: &Tensor) -> ModelOutput {
        let b = x.shape()[0];
        let v = ctx.g.input(x.reshape(&[b, self.in_len]));
        let y = self.lin.forward(ctx, v);
        ModelOutput::pred_only(ctx.g.reshape(y, &[b, self.out_channels, 4]))
    }
}

fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}");
    }
}

/// Serve `inputs` through a fresh server, assert bit-identity against
/// `reference`, and return the final stats snapshot.
fn serve_and_check(use_plans: bool, inputs: &[Tensor], reference: &[Tensor], what: &str) -> ServeStats {
    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, 2, 6);
    let server = Server::start(
        model,
        store,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            workers: 2,
            use_plans,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let pending: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(x.clone()).expect("queue has room"))
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let y = p.wait().expect("request must succeed");
        assert_bits_equal(&y, &reference[i], &format!("{what} req {i}"));
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, inputs.len() as u64, "{what}: completed");
    assert_eq!(stats.failed + stats.rejected, 0, "{what}: failures");
    stats
}

#[test]
fn plan_mode_knobs_only_move_the_plan_batches_counter() {
    let saved = std::env::var("MSD_PLAN").ok();
    std::env::remove_var("MSD_PLAN");

    let mut store = ParamStore::new();
    let model = Affine::new(&mut store, 2, 6);
    let inputs: Vec<Tensor> = (0..48)
        .map(|i| {
            let mut rng = Rng::seed_from(300 + i);
            Tensor::randn(&[1, 2, 6], 1.0, &mut rng)
        })
        .collect();
    let (reference, _) = sequential_baseline(&model, &store, &inputs);

    // Default: every batch is single-sample-packable, the model compiles, so
    // every batch must run through the plan path.
    let stats = serve_and_check(true, &inputs, &reference, "plans-on");
    assert_eq!(
        stats.plan_batches, stats.batches,
        "uniform [1, C, L] traffic through a compilable model must plan every batch"
    );
    assert!(stats.plan_batches > 0);

    // The config knob alone forces the tape fallback.
    let stats = serve_and_check(false, &inputs, &reference, "knob-off");
    assert_eq!(stats.plan_batches, 0, "use_plans=false must never plan");

    // MSD_PLAN=off overrides a plans-enabled config.
    std::env::set_var("MSD_PLAN", "off");
    let stats = serve_and_check(true, &inputs, &reference, "env-off");
    assert_eq!(stats.plan_batches, 0, "MSD_PLAN=off must never plan");

    match saved {
        Some(v) => std::env::set_var("MSD_PLAN", v),
        None => std::env::remove_var("MSD_PLAN"),
    }
}
