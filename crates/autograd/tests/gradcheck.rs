//! Finite-difference validation of every differentiable op's adjoint.
//!
//! Each test carries `// gradcheck: <Name>` marker lines naming the tape ops
//! whose adjoints it exercises. `tests/op_coverage.rs` enumerates
//! `msd_autograd::ALL_OPS` and fails if any registered op lacks a marker
//! here, so a new op cannot ship without a gradient check (or a documented
//! exemption).

use msd_autograd::check::assert_gradcheck;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(shape, 1.0, &mut rng)
}

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

// gradcheck: Add
// gradcheck: Sub
// gradcheck: Mul
// gradcheck: MeanAll
#[test]
fn grad_add_sub_mul() {
    let other = randn(&[3, 4], 100);
    assert_gradcheck(&randn(&[3, 4], 1), EPS, TOL, |g, x| {
        let c = g.input(other.clone());
        let s = g.add(x, c);
        let d = g.sub(s, c);
        let m = g.mul(d, c);
        g.mean_all(m)
    });
}

// gradcheck: SumAll
#[test]
fn grad_mul_self() {
    assert_gradcheck(&randn(&[5], 2), EPS, TOL, |g, x| {
        let y = g.mul(x, x);
        g.sum_all(y)
    });
}

// gradcheck: Div
#[test]
fn grad_div() {
    // Keep the denominator away from zero.
    let denom = randn(&[4], 3).map(|v| v.abs() + 1.0);
    assert_gradcheck(&randn(&[4], 4), EPS, TOL, |g, x| {
        let d = g.input(denom.clone());
        let q = g.div(x, d);
        g.mean_all(q)
    });
    // And gradient through the denominator.
    let numer = randn(&[4], 5);
    assert_gradcheck(&randn(&[4], 6).map(|v| v.abs() + 1.5), EPS, TOL, |g, x| {
        let n = g.input(numer.clone());
        let q = g.div(n, x);
        g.mean_all(q)
    });
}

// gradcheck: Scale
// gradcheck: Neg
// gradcheck: Square
#[test]
fn grad_scale_neg_square() {
    assert_gradcheck(&randn(&[6], 7), EPS, TOL, |g, x| {
        let a = g.scale(x, 3.0);
        let b = g.neg(a);
        let c = g.square(b);
        g.mean_all(c)
    });
}

// gradcheck: Recip
// gradcheck: Sqrt
#[test]
fn grad_recip_sqrt() {
    assert_gradcheck(&randn(&[5], 8).map(|v| v.abs() + 1.0), EPS, TOL, |g, x| {
        let r = g.recip(x);
        let s = g.sqrt(x);
        let sum = g.add(r, s);
        g.mean_all(sum)
    });
}

// gradcheck: Linear
#[test]
fn grad_linear_input_weight_bias() {
    let w0 = randn(&[4, 3], 9);
    let b0 = randn(&[3], 10);
    // Gradient w.r.t. input.
    assert_gradcheck(&randn(&[2, 4], 11), EPS, TOL, |g, x| {
        let w = g.input(w0.clone());
        let b = g.input(b0.clone());
        let y = g.linear(x, w, Some(b));
        g.mean_all(g.square(y))
    });
    // Gradient w.r.t. weight.
    let x0 = randn(&[2, 4], 12);
    assert_gradcheck(&w0, EPS, TOL, |g, w| {
        let x = g.input(x0.clone());
        let y = g.linear(x, w, None);
        g.mean_all(g.square(y))
    });
    // Gradient w.r.t. bias.
    assert_gradcheck(&b0, EPS, TOL, |g, b| {
        let x = g.input(x0.clone());
        let w = g.input(w0.clone());
        let y = g.linear(x, w, Some(b));
        g.mean_all(g.square(y))
    });
}

#[test]
fn grad_linear_high_rank_input() {
    let w0 = randn(&[3, 2], 13);
    assert_gradcheck(&randn(&[2, 2, 2, 3], 14), EPS, TOL, |g, x| {
        let w = g.input(w0.clone());
        let y = g.linear(x, w, None);
        g.mean_all(g.square(y))
    });
}

// gradcheck: Matmul
#[test]
fn grad_matmul_batched() {
    let b0 = randn(&[2, 3, 2], 15);
    assert_gradcheck(&randn(&[2, 2, 3], 16), EPS, TOL, |g, a| {
        let b = g.input(b0.clone());
        let y = g.matmul(a, b);
        g.mean_all(g.square(y))
    });
    let a0 = randn(&[2, 2, 3], 17);
    assert_gradcheck(&b0, EPS, TOL, |g, b| {
        let a = g.input(a0.clone());
        let y = g.matmul(a, b);
        g.mean_all(g.square(y))
    });
}

#[test]
fn grad_matmul_2d_rhs() {
    let b0 = randn(&[3, 4], 18);
    assert_gradcheck(&randn(&[2, 2, 3], 19), EPS, TOL, |g, a| {
        let b = g.input(b0.clone());
        let y = g.matmul(a, b);
        g.mean_all(g.square(y))
    });
    let a0 = randn(&[2, 2, 3], 20);
    assert_gradcheck(&b0, EPS, TOL, |g, b| {
        let a = g.input(a0.clone());
        let y = g.matmul(a, b);
        g.mean_all(g.square(y))
    });
}

#[test]
fn grad_linear_across_microkernel_boundaries() {
    // The linear adjoint computes dX = dY·Wᵀ and dW = Xᵀ·dY through the
    // strided matmul_nt / matmul_tn paths. Shapes straddle the SGEMM
    // microkernel tile (MR = 6 rows, NR = 16 columns) so the ragged-edge
    // packing code sits on the gradient path, not just the interior kernel.
    let w0 = randn(&[7, 17], 50).scale(0.4);
    let x0 = randn(&[13, 7], 51);
    assert_gradcheck(&x0, EPS, TOL, |g, x| {
        let w = g.input(w0.clone());
        let y = g.linear(x, w, None);
        g.mean_all(g.square(y))
    });
    assert_gradcheck(&w0, EPS, TOL, |g, w| {
        let x = g.input(x0.clone());
        let y = g.linear(x, w, None);
        g.mean_all(g.square(y))
    });
}

#[test]
fn grad_matmul_batched_across_microkernel_boundaries() {
    // Equal-rank batched adjoint: dA = G·Bᵀ and dB = Aᵀ·G run one strided
    // gemm per batch entry. Ragged (m, k, n) = (7, 5, 17) crosses NR = 16.
    let b0 = randn(&[3, 5, 17], 52).scale(0.4);
    assert_gradcheck(&randn(&[3, 7, 5], 53), EPS, TOL, |g, a| {
        let b = g.input(b0.clone());
        let y = g.matmul(a, b);
        g.mean_all(g.square(y))
    });
    let a0 = randn(&[3, 7, 5], 54);
    assert_gradcheck(&b0, EPS, TOL, |g, b| {
        let a = g.input(a0.clone());
        let y = g.matmul(a, b);
        g.mean_all(g.square(y))
    });
}

// gradcheck: PadAxis
// gradcheck: Reshape
// gradcheck: Permute
// gradcheck: Narrow
// gradcheck: MulConst
#[test]
fn grad_layout_chain() {
    // pad → reshape → permute → narrow, with a position-dependent weighting.
    let w = randn(&[3, 2, 2], 21);
    assert_gradcheck(&randn(&[2, 6], 22), EPS, TOL, |g, x| {
        let p = g.pad_axis(x, 1, 2, 0); // [2, 8]
        let r = g.reshape(p, &[2, 4, 2]);
        let t = g.permute(r, &[1, 0, 2]); // [4, 2, 2]
        let n = g.narrow(t, 0, 1, 3); // [3, 2, 2]
        let wn = g.mul_const(n, &w);
        g.sum_all(wn)
    });
}

// gradcheck: Concat
#[test]
fn grad_concat() {
    let other = randn(&[2, 3], 23);
    assert_gradcheck(&randn(&[2, 2], 24), EPS, TOL, |g, x| {
        let o = g.input(other.clone());
        let c = g.concat(&[x, o], 1);
        g.mean_all(g.square(c))
    });
}

// gradcheck: Gelu
// gradcheck: Relu
// gradcheck: Tanh
#[test]
fn grad_activations() {
    assert_gradcheck(&randn(&[8], 25), EPS, TOL, |g, x| {
        let y = g.gelu(x);
        g.mean_all(g.square(y))
    });
    assert_gradcheck(&randn(&[8], 26).map(|v| v + 0.3), EPS, TOL, |g, x| {
        // Shift away from the ReLU kink where FD is ill-defined.
        let y = g.relu(x);
        g.mean_all(g.square(y))
    });
    assert_gradcheck(&randn(&[8], 27), EPS, TOL, |g, x| {
        let y = g.tanh(x);
        g.mean_all(g.square(y))
    });
}

// gradcheck: SumAxis
// gradcheck: MeanAxis
#[test]
fn grad_reductions() {
    assert_gradcheck(&randn(&[3, 4], 28), EPS, TOL, |g, x| {
        let s = g.sum_axis(x, 0);
        let m = g.mean_axis(x, 1);
        let a = g.sum_all(g.square(s));
        let b = g.sum_all(g.square(m));
        g.add(a, b)
    });
}

// gradcheck: BroadcastLast
#[test]
fn grad_broadcast_last() {
    assert_gradcheck(&randn(&[3], 29), EPS, TOL, |g, x| {
        let b = g.broadcast_last(x, 4);
        g.mean_all(g.square(b))
    });
}

// gradcheck: SoftmaxLast
#[test]
fn grad_softmax() {
    assert_gradcheck(&randn(&[2, 5], 30), EPS, TOL, |g, x| {
        let s = g.softmax_last(x);
        g.mean_all(g.square(s))
    });
}

// gradcheck: SoftmaxCe
#[test]
fn grad_softmax_cross_entropy() {
    assert_gradcheck(&randn(&[3, 4], 31), EPS, TOL, |g, x| {
        g.softmax_cross_entropy(x, &[0, 2, 3])
    });
}

// gradcheck: FusedLoss
#[test]
fn grad_fused_losses() {
    let target = randn(&[2, 6], 32);
    assert_gradcheck(&randn(&[2, 6], 33), EPS, TOL, |g, x| g.mse_loss(x, &target));
    let mask = Tensor::from_vec(&[2, 6], vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    assert_gradcheck(&randn(&[2, 6], 34), EPS, TOL, |g, x| {
        g.masked_mse_loss(x, &target, &mask)
    });
}

#[test]
fn grad_mae_away_from_kink() {
    // Shift values away from the target so |diff| > eps everywhere.
    let target = Tensor::zeros(&[6]);
    let x0 = randn(&[6], 35).map(|v| if v >= 0.0 { v + 0.5 } else { v - 0.5 });
    assert_gradcheck(&x0, 1e-3, TOL, |g, x| g.mae_loss(x, &target));
}

#[test]
fn grad_composed_mlp_block() {
    // Linear → GELU → Linear → residual add: exactly the paper's MLP block
    // shape (Fig. 3a) without droppath.
    let w1 = randn(&[4, 8], 36).scale(0.5);
    let w2 = randn(&[8, 4], 37).scale(0.5);
    assert_gradcheck(&randn(&[3, 4], 38), EPS, TOL, |g, x| {
        let w1v = g.input(w1.clone());
        let w2v = g.input(w2.clone());
        let h = g.linear(x, w1v, None);
        let h = g.gelu(h);
        let h = g.linear(h, w2v, None);
        let y = g.add(x, h);
        g.mean_all(g.square(y))
    });
}

#[test]
fn grad_decomposition_subtract_chain() {
    // Mimics Z_i = Z_{i-1} − S_i with S produced by a linear map: gradients
    // must flow both through the subtraction and the component path.
    let w = randn(&[6, 6], 39).scale(0.3);
    assert_gradcheck(&randn(&[2, 6], 40), EPS, TOL, |g, x| {
        let wv = g.input(w.clone());
        let s1 = g.linear(x, wv, None);
        let z1 = g.sub(x, s1);
        let s2 = g.linear(z1, wv, None);
        let z2 = g.sub(z1, s2);
        let recon = g.mean_all(g.square(z2));
        let comp = g.mean_all(g.square(s1));
        g.add(recon, comp)
    });
}

// gradcheck: MulBcastLast
// gradcheck: AddBcastLast
#[test]
fn grad_bcast_last_ops() {
    let b0 = randn(&[4], 41);
    assert_gradcheck(&randn(&[3, 4], 42), EPS, TOL, |g, x| {
        let b = g.input(b0.clone());
        let y = g.mul_bcast_last(x, b);
        let z = g.add_bcast_last(y, b);
        g.mean_all(g.square(z))
    });
    let x0 = randn(&[3, 4], 43);
    assert_gradcheck(&b0, EPS, TOL, |g, b| {
        let x = g.input(x0.clone());
        let y = g.mul_bcast_last(x, b);
        let z = g.add_bcast_last(y, b);
        g.mean_all(g.square(z))
    });
}

#[test]
fn grad_shared_parameter_accumulates() {
    // The same tensor used through two leaves of one tape: Gradients must
    // merge both contributions under the one ParamId.
    use msd_autograd::Graph;
    let g = Graph::new();
    let t = Tensor::from_vec(&[2], vec![1.0, 2.0]);
    let p1 = g.param(9, t.clone());
    let p2 = g.param(9, t);
    let y = g.mul(p1, p2); // x^2 elementwise
    let loss = g.sum_all(y);
    let grads = g.backward(loss);
    assert_eq!(grads.len(), 1);
    assert_eq!(grads.get(9).unwrap().data(), &[2.0, 4.0]);
}

// gradcheck: MaxPoolLast
#[test]
fn grad_maxpool_last() {
    // Values spread out so the argmax is stable under the FD perturbation.
    let x0 = Tensor::from_vec(&[2, 6], vec![1.0, 5.0, 2.0, 9.0, 3.0, 4.0, 8.0, 1.0, 6.0, 2.0, 7.0, 3.0]);
    assert_gradcheck(&x0, 1e-3, TOL, |g, x| {
        let y = g.maxpool_last(x, 3);
        g.mean_all(g.square(y))
    });
}

#[test]
fn maxpool_forward_values() {
    use msd_autograd::Graph;
    let g = Graph::new();
    let x = g.input(Tensor::from_vec(&[1, 4], vec![1.0, 3.0, -2.0, 0.0]));
    let y = g.maxpool_last(x, 2);
    assert_eq!(g.value(y).data(), &[3.0, 0.0]);
    assert_eq!(g.shape_of(y), vec![1, 2]);
}

// gradcheck: Abs
// gradcheck: AddConst
// gradcheck: AddScalar
#[test]
fn grad_abs_and_add_const() {
    // Shift values away from |x| = 0 so FD never straddles the kink.
    let shift = randn(&[6], 44);
    let x0 = randn(&[6], 45).map(|v| if v >= 0.0 { v + 0.5 } else { v - 0.5 });
    assert_gradcheck(&x0, 1e-3, TOL, |g, x| {
        let a = g.abs(x);
        let b = g.add_scalar(a, 0.75);
        let c = g.add_const(b, &shift);
        g.mean_all(g.square(c))
    });
}

// gradcheck: LinearGelu
#[test]
fn grad_linear_gelu() {
    let w0 = randn(&[4, 5], 46).scale(0.5);
    let b0 = randn(&[5], 47);
    let x0 = randn(&[3, 4], 48);
    // Gradient w.r.t. input, weight, and bias of the fused node.
    assert_gradcheck(&x0, EPS, TOL, |g, x| {
        let w = g.input(w0.clone());
        let b = g.input(b0.clone());
        let y = g.linear_gelu(x, w, Some(b));
        g.mean_all(g.square(y))
    });
    assert_gradcheck(&w0, EPS, TOL, |g, w| {
        let x = g.input(x0.clone());
        let y = g.linear_gelu(x, w, None);
        g.mean_all(g.square(y))
    });
    assert_gradcheck(&b0, EPS, TOL, |g, b| {
        let x = g.input(x0.clone());
        let w = g.input(w0.clone());
        let y = g.linear_gelu(x, w, Some(b));
        g.mean_all(g.square(y))
    });
}

#[test]
fn linear_gelu_forward_matches_composed() {
    // The fused node must be bit-identical to gelu(linear(x, w, b)).
    use msd_autograd::Graph;
    let x0 = randn(&[7, 4], 55);
    let w0 = randn(&[4, 9], 56).scale(0.5);
    let b0 = randn(&[9], 57);
    let g = Graph::new();
    let x = g.input(x0);
    let w = g.input(w0);
    let b = g.input(b0);
    let fused = g.linear_gelu(x, w, Some(b));
    let composed = g.gelu(g.linear(x, w, Some(b)));
    let fv = g.value(fused);
    let cv = g.value(composed);
    for (a, b) in fv.data().iter().zip(cv.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

// gradcheck: LayerNorm
#[test]
fn grad_layer_norm() {
    let gamma0 = randn(&[6], 58).map(|v| v * 0.3 + 1.0);
    let beta0 = randn(&[6], 59).scale(0.3);
    let x0 = randn(&[4, 6], 60);
    // Gradient w.r.t. the normalised input.
    assert_gradcheck(&x0, EPS, TOL, |g, x| {
        let gamma = g.input(gamma0.clone());
        let beta = g.input(beta0.clone());
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        g.mean_all(g.square(y))
    });
    // Gradient w.r.t. the gain.
    assert_gradcheck(&gamma0, EPS, TOL, |g, gamma| {
        let x = g.input(x0.clone());
        let beta = g.input(beta0.clone());
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        g.mean_all(g.square(y))
    });
    // Gradient w.r.t. the shift.
    assert_gradcheck(&beta0, EPS, TOL, |g, beta| {
        let x = g.input(x0.clone());
        let gamma = g.input(gamma0.clone());
        let y = g.layer_norm(x, gamma, beta, 1e-5);
        g.mean_all(g.square(y))
    });
}

// gradcheck: AcfHinge
#[test]
fn grad_acf_hinge() {
    // Signal + noise so the hinge is active at several lags; small eps keeps
    // FD perturbations from flipping lags across the tolerance band.
    let mut rng = Rng::seed_from(61);
    let l = 16;
    let data: Vec<f32> = (0..2 * l)
        .map(|i| (2.0 * std::f32::consts::PI * (i % l) as f32 / 4.0).sin() + 0.2 * rng.normal())
        .collect();
    let z0 = Tensor::from_vec(&[1, 2, l], data);
    assert_gradcheck(&z0, 1e-3, TOL, |g, z| g.acf_hinge_loss(z, 2.0));
}
