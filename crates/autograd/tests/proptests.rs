//! Property-based tests for the autograd engine: algebraic identities that
//! must hold for arbitrary inputs, both in forward values and gradients.

use msd_autograd::Graph;
use msd_tensor::{allclose, rng::Rng, Tensor};
use proptest::prelude::*;

fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(shape, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linearity_of_gradients(seed in 0u64..500, a in 0.5f32..3.0) {
        // d/dx mean(a·x) = a/n elementwise, for any a.
        let x0 = randn(&[6], seed);
        let g = Graph::new();
        let x = g.param(0, x0.clone());
        let y = g.scale(x, a);
        let loss = g.mean_all(y);
        let grads = g.backward(loss);
        let gx = grads.get(0).unwrap();
        prop_assert!(gx.data().iter().all(|&v| (v - a / 6.0).abs() < 1e-5));
    }

    #[test]
    fn sum_rule_of_differentiation(seed in 0u64..500) {
        // grad of f(x) + h(x) equals grad f + grad h.
        let x0 = randn(&[5], seed);
        let grad_of = |combined: bool| -> Tensor {
            let g = Graph::new();
            let x = g.param(0, x0.clone());
            let f = g.square(x);
            let h = g.gelu(x);
            let loss = if combined {
                g.sum_all(g.add(f, h))
            } else {
                // Separate losses, summed at the scalar level.
                g.add(g.sum_all(f), g.sum_all(h))
            };
            g.backward(loss).get(0).unwrap().clone()
        };
        prop_assert!(allclose(&grad_of(true), &grad_of(false), 1e-5));
    }

    #[test]
    fn chain_through_reshape_is_transparent(seed in 0u64..500) {
        // Reshaping must not change the loss or the gradient values.
        let x0 = randn(&[2, 6], seed);
        let direct = {
            let g = Graph::new();
            let x = g.param(0, x0.clone());
            let loss = g.mean_all(g.square(x));
            (g.value(loss).item(), g.backward(loss).get(0).unwrap().clone())
        };
        let reshaped = {
            let g = Graph::new();
            let x = g.param(0, x0.clone());
            let r = g.reshape(x, &[3, 4]);
            let loss = g.mean_all(g.square(r));
            (g.value(loss).item(), g.backward(loss).get(0).unwrap().clone())
        };
        prop_assert!((direct.0 - reshaped.0).abs() < 1e-6);
        prop_assert!(allclose(&direct.1, &reshaped.1.reshape(&[2, 6]), 1e-6));
    }

    #[test]
    fn permute_preserves_loss_and_gradient_multiset(seed in 0u64..500) {
        let x0 = randn(&[3, 4], seed);
        let g = Graph::new();
        let x = g.param(0, x0.clone());
        let p = g.permute(x, &[1, 0]);
        let loss = g.mean_all(g.square(p));
        let loss_val = g.value(loss).item();
        let gx = g.backward(loss).get(0).unwrap().clone();

        let g2 = Graph::new();
        let x2 = g2.param(0, x0);
        let loss2 = g2.mean_all(g2.square(x2));
        prop_assert!((loss_val - g2.value(loss2).item()).abs() < 1e-6);
        let gx2 = g2.backward(loss2).get(0).unwrap().clone();
        prop_assert!(allclose(&gx, &gx2, 1e-6));
    }

    #[test]
    fn mse_loss_is_nonnegative_and_zero_iff_equal(seed in 0u64..500) {
        let x0 = randn(&[8], seed);
        let g = Graph::new();
        let x = g.input(x0.clone());
        let self_loss = g.mse_loss(x, &x0);
        prop_assert_eq!(g.value(self_loss).item(), 0.0);
        let other = randn(&[8], seed.wrapping_add(1));
        let g = Graph::new();
        let x = g.input(x0.clone());
        let loss = g.mse_loss(x, &other);
        prop_assert!(g.value(loss).item() >= 0.0);
    }

    #[test]
    fn softmax_ce_at_least_uniform_entropy_bound(seed in 0u64..500, classes in 2usize..6) {
        // CE >= 0 always; for the true label the loss of a uniform logit
        // vector is ln(classes).
        let g = Graph::new();
        let logits = g.input(randn(&[1, classes], seed));
        let loss = g.value(g.softmax_cross_entropy(logits, &[0])).item();
        prop_assert!(loss >= 0.0);
        let g = Graph::new();
        let logits = g.input(Tensor::zeros(&[1, classes]));
        let loss = g.value(g.softmax_cross_entropy(logits, &[0])).item();
        prop_assert!((loss - (classes as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn acf_loss_is_shift_invariant(seed in 0u64..200, shift in -3.0f32..3.0) {
        // Autocorrelation is invariant to adding a constant: the ACF term
        // must not change under a level shift.
        let z = randn(&[1, 1, 32], seed);
        let shifted = z.add_scalar(shift);
        let eval = |t: &Tensor| {
            let g = Graph::new();
            let v = g.input(t.clone());
            g.value(g.acf_hinge_loss(v, 2.0)).item()
        };
        prop_assert!((eval(&z) - eval(&shifted)).abs() < 1e-3);
    }

    #[test]
    fn dropout_mask_is_binary_scaled(seed in 0u64..500, p in 0.05f32..0.9) {
        let g = Graph::new();
        let mut rng = Rng::seed_from(seed);
        let x = g.input(Tensor::ones(&[64]));
        let y = g.value(g.dropout(x, p, &mut rng));
        let keep = 1.0 / (1.0 - p);
        prop_assert!(y
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - keep).abs() < 1e-5));
    }

    #[test]
    fn maxpool_output_bounds_inputs(seed in 0u64..500) {
        let x = randn(&[2, 8], seed);
        let g = Graph::new();
        let v = g.input(x.clone());
        let y = g.value(g.maxpool_last(v, 4));
        let max_in = x.max_all();
        prop_assert!(y.max_all() <= max_in + 1e-6);
        // Every pooled value must appear in the input.
        for &p in y.data() {
            prop_assert!(x.data().iter().any(|&v| (v - p).abs() < 1e-6));
        }
    }
}
