//! Neural-network graph ops: activations, stochastic regularisation,
//! normalisation, softmax, and fused losses.
//!
//! The fused losses and [`Graph::layer_norm`] route through the kernel
//! dispatch layer (`msd_tensor::ops::kernels`), computing loss and input
//! gradient in single fused sweeps.

use crate::graph::{Graph, Node, Op, Var};
use msd_tensor::ops::kernels as k;
use msd_tensor::rng::Rng;
use msd_tensor::Tensor;

impl Graph {
    /// GELU activation (tanh approximation), the nonlinearity of the paper's
    /// MLP block (Fig. 3a).
    pub fn gelu(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::gelu);
        self.push_unary(a, value, Op::Gelu)
    }

    /// ReLU activation.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::relu);
        self.push_unary(a, value, Op::Relu)
    }

    /// Hyperbolic tangent activation.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::tanh);
        self.push_unary(a, value, Op::Tanh)
    }

    /// Inverted dropout: in training mode zeroes each element with
    /// probability `p` and rescales survivors by `1/(1-p)`; identity in eval
    /// mode or when `p == 0`.
    pub fn dropout(&self, a: Var, p: f32, rng: &mut Rng) -> Var {
        if !self.is_train() || p <= 0.0 {
            return a;
        }
        assert!(p < 1.0, "dropout p must be < 1");
        let keep = 1.0 - p;
        let mask = self.with_value(a, |t| {
            let data = (0..t.len())
                .map(|_| if rng.uniform() < keep { 1.0 / keep } else { 0.0 })
                .collect();
            Tensor::from_vec(t.shape(), data)
        });
        self.mul_const(a, &mask)
    }

    /// DropPath / stochastic depth (the regulariser of the paper's MLP
    /// block, after FractalNet): in training mode zeroes the *entire* tensor
    /// of each sample along the leading batch axis with probability `p`,
    /// rescaling survivors by `1/(1-p)`. Identity in eval mode.
    pub fn drop_path(&self, a: Var, p: f32, rng: &mut Rng) -> Var {
        if !self.is_train() || p <= 0.0 {
            return a;
        }
        assert!(p < 1.0, "drop_path p must be < 1");
        let keep = 1.0 - p;
        let mask = self.with_value(a, |t| {
            let batch = t.shape()[0];
            let per = t.len() / batch;
            let mut data = Vec::with_capacity(t.len());
            for _ in 0..batch {
                let v = if rng.uniform() < keep { 1.0 / keep } else { 0.0 };
                data.extend(std::iter::repeat_n(v, per));
            }
            Tensor::from_vec(t.shape(), data)
        });
        self.mul_const(a, &mask)
    }

    /// Non-overlapping max pooling with kernel = stride = `k` over the last
    /// axis. The input's last extent must be divisible by `k` (pad first if
    /// necessary). Used by the MSD-Mixer-N ablation variant, which replaces
    /// patching with N-HiTS-style max pooling.
    pub fn maxpool_last(&self, a: Var, k: usize) -> Var {
        assert!(k >= 1, "pool kernel must be >= 1");
        let (value, argmax) = self.with_value(a, |t| {
            let last = *t.shape().last().expect("maxpool on scalar");
            assert_eq!(last % k, 0, "maxpool_last: extent {last} not divisible by {k}");
            let out_last = last / k;
            let rows = t.len() / last;
            let mut out = Vec::with_capacity(rows * out_last);
            let mut argmax = Vec::with_capacity(rows * out_last);
            for r in 0..rows {
                let row = &t.data()[r * last..(r + 1) * last];
                for w in 0..out_last {
                    let base = w * k;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for (i, &v) in row[base..base + k].iter().enumerate() {
                        if v > best {
                            best = v;
                            best_i = base + i;
                        }
                    }
                    out.push(best);
                    argmax.push((r * last + best_i) as u32);
                }
            }
            let mut shape = t.shape().to_vec();
            *shape.last_mut().unwrap() = out_last;
            (Tensor::from_vec(&shape, out), argmax)
        });
        self.push_unary(a, value, Op::MaxPoolLast { argmax })
    }

    /// Fused LayerNorm over the last axis with affine parameters:
    /// `y = (x - mean) * rstd * gamma + beta`, one tape node instead of the
    /// ~10 primitive ops of a composed implementation. Forward and backward
    /// run through the parallel kernels in `msd_tensor::ops::kernels::norm`;
    /// the per-row statistics are saved for the adjoint.
    ///
    /// # Panics
    /// Panics if `gamma`/`beta` are not 1-D of the last-axis extent.
    pub fn layer_norm(&self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (value, mean, rstd) = self.with_value(x, |tx| {
            self.with_value(gamma, |tg| {
                self.with_value(beta, |tb| {
                    let d = *tx.shape().last().expect("layer_norm on scalar");
                    assert_eq!(tg.shape(), &[d], "layer_norm gamma shape");
                    assert_eq!(tb.shape(), &[d], "layer_norm beta shape");
                    let rows = tx.len() / d;
                    let mut out = vec![0.0f32; tx.len()];
                    let mut mean = vec![0.0f32; rows];
                    let mut rstd = vec![0.0f32; rows];
                    k::norm::layernorm_fwd(
                        tx.data(),
                        d,
                        tg.data(),
                        tb.data(),
                        eps,
                        &mut out,
                        &mut mean,
                        &mut rstd,
                    );
                    (
                        Tensor::from_vec(tx.shape(), out),
                        Tensor::from_vec(&[rows], mean),
                        Tensor::from_vec(&[rows], rstd),
                    )
                })
            })
        });
        let parents = vec![x, gamma, beta];
        let needs_grad = {
            let nodes = self.nodes.borrow();
            parents.iter().any(|p| nodes[p.0 as usize].needs_grad)
        };
        self.push(Node {
            value,
            op: Op::LayerNorm { mean, rstd, eps },
            parents,
            needs_grad,
            param: None,
        })
    }

    /// Numerically-stable softmax over the last axis.
    pub fn softmax_last(&self, a: Var) -> Var {
        let value = self.with_value(a, softmax_last_tensor);
        self.push_unary(a, value, Op::SoftmaxLast)
    }

    /// Fused softmax + cross-entropy over `[batch, classes]` logits against
    /// integer labels, returning the mean negative log-likelihood as a
    /// scalar node.
    ///
    /// # Panics
    /// Panics if `logits` is not 2-D or `labels` length mismatches the batch.
    pub fn softmax_cross_entropy(&self, logits: Var, labels: &[usize]) -> Var {
        let (loss, probs) = self.with_value(logits, |t| {
            assert_eq!(t.ndim(), 2, "softmax_cross_entropy expects [batch, classes]");
            let batch = t.shape()[0];
            let classes = t.shape()[1];
            assert_eq!(labels.len(), batch, "label count mismatch");
            let probs = softmax_last_tensor(t);
            let mut nll = 0.0f64;
            for (i, &lbl) in labels.iter().enumerate() {
                assert!(lbl < classes, "label {lbl} out of range");
                nll -= (probs.data()[i * classes + lbl].max(1e-12) as f64).ln();
            }
            (Tensor::scalar((nll / batch as f64) as f32), probs)
        });
        self.push_unary(
            logits,
            loss,
            Op::SoftmaxCe {
                probs,
                labels: labels.to_vec(),
            },
        )
    }

    /// Mean-squared-error against a constant target, fused into one node:
    /// `mean((a - target)^2)`. Loss (sum of squared errors) and input
    /// gradient each run as one fused kernel sweep.
    pub fn mse_loss(&self, a: Var, target: &Tensor) -> Var {
        let (loss, grad) = self.with_value(a, |t| {
            assert_eq!(t.shape(), target.shape(), "mse_loss shape mismatch");
            let n = t.len() as f32;
            let loss = k::reduce::sse(t.data(), target.data()) / n;
            let mut gd = vec![0.0f32; t.len()];
            k::ew::scaled_diff(t.data(), target.data(), 2.0 / n, &mut gd);
            (Tensor::scalar(loss), Tensor::from_vec(t.shape(), gd))
        });
        self.push_unary(a, loss, Op::FusedLoss { input_grad: grad })
    }

    /// Mean-absolute-error against a constant target, fused:
    /// `mean(|a - target|)` with sign subgradient.
    pub fn mae_loss(&self, a: Var, target: &Tensor) -> Var {
        let (loss, grad) = self.with_value(a, |t| {
            assert_eq!(t.shape(), target.shape(), "mae_loss shape mismatch");
            let n = t.len() as f32;
            let loss = k::reduce::sad(t.data(), target.data()) / n;
            let mut gd = vec![0.0f32; t.len()];
            k::ew::sign_scaled(t.data(), target.data(), 1.0 / n, &mut gd);
            (Tensor::scalar(loss), Tensor::from_vec(t.shape(), gd))
        });
        self.push_unary(a, loss, Op::FusedLoss { input_grad: grad })
    }

    /// Masked MSE: `sum(mask * (a - target)^2) / max(sum(mask), 1)`. Used by
    /// the imputation task, where the loss is computed on masked positions
    /// only. The masked sum of squares and the mask count come from ONE
    /// fused sweep over the inputs ([`k::reduce::masked_sse`]).
    pub fn masked_mse_loss(&self, a: Var, target: &Tensor, mask: &Tensor) -> Var {
        let (loss, grad) = self.with_value(a, |t| {
            assert_eq!(t.shape(), target.shape(), "masked_mse shape mismatch");
            assert_eq!(t.shape(), mask.shape(), "masked_mse mask shape mismatch");
            let (sse, count) = k::reduce::masked_sse(t.data(), target.data(), mask.data());
            let denom = count.max(1.0);
            let loss = sse / denom;
            let mut gd = vec![0.0f32; t.len()];
            k::ew::masked_scaled_diff(t.data(), target.data(), mask.data(), 2.0 / denom, &mut gd);
            (Tensor::scalar(loss), Tensor::from_vec(t.shape(), gd))
        });
        self.push_unary(a, loss, Op::FusedLoss { input_grad: grad })
    }
}

/// Stable softmax over the last axis of a plain tensor, via the row
/// softmax kernel.
pub(crate) fn softmax_last_tensor(t: &Tensor) -> Tensor {
    let last = *t.shape().last().expect("softmax on scalar");
    let mut out = vec![0.0f32; t.len()];
    k::norm::softmax_rows(t.data(), last, &mut out);
    Tensor::from_vec(t.shape(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn softmax_rows_sum_to_one() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = g.value(g.softmax_last(x));
        for row in s.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_last_tensor(&Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]));
        let b = softmax_last_tensor(&Tensor::from_vec(&[1, 3], vec![101.0, 102.0, 103.0]));
        assert!(msd_tensor::allclose(&a, &b, 1e-5));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let g = Graph::new();
        let logits = g.input(Tensor::from_vec(&[2, 2], vec![20.0, 0.0, 0.0, 20.0]));
        let loss = g.softmax_cross_entropy(logits, &[0, 1]);
        assert!(g.value(loss).item() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let g = Graph::new();
        let logits = g.input(Tensor::zeros(&[1, 4]));
        let loss = g.softmax_cross_entropy(logits, &[2]);
        assert!((g.value(loss).item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_is_probs_minus_onehot() {
        let g = Graph::new();
        let logits = g.param(0, Tensor::zeros(&[1, 2]));
        let loss = g.softmax_cross_entropy(logits, &[1]);
        let grads = g.backward(loss);
        let gl = grads.get(0).unwrap();
        assert!((gl.data()[0] - 0.5).abs() < 1e-5);
        assert!((gl.data()[1] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![1.0, 3.0]));
        let target = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let loss = g.mse_loss(x, &target);
        assert!((g.value(loss).item() - 5.0).abs() < 1e-5);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[1.0, 3.0]);
    }

    #[test]
    fn mae_loss_value_and_sign_grad() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![2.0, -4.0]));
        let target = Tensor::zeros(&[2]);
        let loss = g.mae_loss(x, &target);
        assert!((g.value(loss).item() - 3.0).abs() < 1e-5);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[0.5, -0.5]);
    }

    #[test]
    fn masked_mse_ignores_unmasked() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![10.0, 2.0]));
        let target = Tensor::zeros(&[2]);
        let mask = Tensor::from_vec(&[2], vec![0.0, 1.0]);
        let loss = g.masked_mse_loss(x, &target, &mask);
        assert!((g.value(loss).item() - 4.0).abs() < 1e-5);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data()[0], 0.0);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let g = Graph::eval();
        let mut rng = Rng::seed_from(0);
        let x = g.input(Tensor::ones(&[8]));
        let y = g.dropout(x, 0.5, &mut rng);
        assert_eq!(g.value(y).data(), &[1.0; 8]);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let g = Graph::new();
        let mut rng = Rng::seed_from(0);
        let x = g.input(Tensor::ones(&[10_000]));
        let y = g.dropout(x, 0.3, &mut rng);
        let mean = g.value(y).mean_all();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn drop_path_zeroes_whole_samples() {
        let g = Graph::new();
        let mut rng = Rng::seed_from(1);
        let x = g.input(Tensor::ones(&[64, 4]));
        let y = g.value(g.drop_path(x, 0.5, &mut rng));
        for row in y.data().chunks_exact(4) {
            let all_zero = row.iter().all(|&v| v == 0.0);
            let all_two = row.iter().all(|&v| (v - 2.0).abs() < 1e-6);
            assert!(all_zero || all_two, "row {row:?}");
        }
    }
}
