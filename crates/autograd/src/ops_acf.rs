//! Fused autocorrelation hinge loss — the first term of the paper's
//! Residual Loss (Eq. 6).
//!
//! For the residual `Z_k ∈ R^{B×C×L}` the paper penalises autocorrelation
//! coefficients that exceed the white-noise tolerance `α/√L`:
//!
//! `L_acf = Σ_{i,j} relu(|a_{i,j}| − α/√L) / (C·(L−1))`
//!
//! The hinge is linear, not squared: a squared penalty's gradient vanishes
//! as a lag approaches the tolerance band, so borderline lags keep counting
//! as violations while receiving negligible pressure. The linear hinge keeps
//! a constant-magnitude gradient on every violating lag until it is strictly
//! inside the band, which is what drives the violation *rate* to zero.
//!
//! with `a_{i,j}` the lag-`j` autocorrelation of channel `i` (Eq. 5),
//! averaged over the batch. Because the coefficient involves a quotient of
//! two reductions over the centred series, building it from primitive tape
//! ops would create O(L) nodes per channel; instead this module computes the
//! loss *and* its input gradient analytically in one pass, and registers a
//! single fused node.
//!
//! Gradient derivation (per channel, centred series `y_t = z_t − m`,
//! `D = Σ y²`, `N_j = Σ_{t>j} y_t y_{t−j}`, `a_j = N_j/D`):
//!
//! * `∂N_j/∂y_s = y_{s−j}·[s−j ≥ 0] + y_{s+j}·[s+j < L]`
//! * `∂a_j/∂y_s = (∂N_j/∂y_s − 2·a_j·y_s) / D`
//! * `∂L/∂a_j  = sign(a_j)·[|a_j| > c] / (B·C·(L−1))`
//! * chain through the centring: `∂L/∂z_s = g_s − mean_t(g_t)`.
//!
//! The adjoint is validated against finite differences in
//! `tests/gradcheck.rs`.

use crate::graph::{Graph, Op, Var};
use msd_tensor::ops::kernels::{self as k, reduce as kred};
use msd_tensor::Tensor;

impl Graph {
    /// Fused ACF hinge loss over the trailing (time) axis of `z`, shape
    /// `[B, C, L]` or `[C, L]`. `alpha` is the white-noise tolerance
    /// multiplier of Eq. 6 (the paper's default corresponds to the classical
    /// `±2/√L` band, i.e. `alpha = 2`).
    ///
    /// Returns a scalar node. Channels whose centred energy is numerically
    /// zero contribute nothing (a constant residual has no autocorrelation).
    pub fn acf_hinge_loss(&self, z: Var, alpha: f32) -> Var {
        let (loss, grad) = self.with_value(z, |t| acf_hinge_forward_backward(t, alpha));
        self.push_unary(z, loss, Op::AcfHinge { input_grad: grad })
    }
}

/// Computes the hinge loss and its gradient with respect to `z` in one pass.
///
/// The per-row mean, energy `D`, numerators `N_j`, and gradient mean all
/// run through the spec'd sequential reductions of the kernel layer; rows
/// are processed in parallel over fixed row blocks with one `f64` loss
/// partial per block, folded in block order — so loss and gradient are
/// bit-identical for every SIMD tier and thread count.
fn acf_hinge_forward_backward(z: &Tensor, alpha: f32) -> (Tensor, Tensor) {
    let nd = z.ndim();
    assert!(nd >= 2, "acf_hinge_loss expects [..., C, L], got {:?}", z.shape());
    let l = z.shape()[nd - 1];
    let rows = z.len() / l;
    assert!(l >= 2, "acf needs at least 2 time steps");
    let c = alpha / (l as f32).sqrt();
    let norm = 1.0 / (rows as f32 * (l - 1) as f32);

    let tier = k::tier();
    let mut grad = Tensor::zeros(z.shape());
    let data = z.data();

    let partials: Vec<f64> = k::par_rows_map_mut(grad.data_mut(), rows, l, move |_b, r0, chunk| {
        let mut block_total = 0.0f64;
        let mut y = vec![0.0f32; l];
        let mut gy = vec![0.0f32; l];
        for (i, out) in chunk.chunks_exact_mut(l).enumerate() {
            let row = &data[(r0 + i) * l..(r0 + i + 1) * l];
            let mean = kred::sum_seq(tier, row) / l as f32;
            for (yt, &zt) in y.iter_mut().zip(row) {
                *yt = zt - mean;
            }
            let d = kred::dot_seq(tier, &y, &y);
            if d < 1e-9 {
                continue;
            }
            gy.iter_mut().for_each(|g| *g = 0.0);
            let inv_d = 1.0 / d;
            // Accumulated Σ_j w_j · a_j for the −2·a_j·y_s term.
            let mut wa_sum = 0.0f32;
            for j in 1..l {
                let n = kred::dot_seq(tier, &y[j..], &y[..l - j]);
                let a = n * inv_d;
                let excess = a.abs() - c;
                if excess <= 0.0 {
                    continue;
                }
                block_total += excess as f64;
                let w = a.signum() * norm;
                wa_sum += w * a;
                // ∂N_j/∂y_s contributions (exact per-element scatter).
                let wd = w * inv_d;
                for s in j..l {
                    gy[s] += wd * y[s - j];
                    gy[s - j] += wd * y[s];
                }
            }
            if wa_sum != 0.0 {
                let kk = 2.0 * wa_sum * inv_d;
                for (g, &yv) in gy.iter_mut().zip(&y) {
                    *g -= kk * yv;
                }
            }
            // Chain through the centring: dz_s = g_s − mean(g).
            let gmean = kred::sum_seq(tier, &gy) / l as f32;
            for (o, &g) in out.iter_mut().zip(&gy) {
                *o = g - gmean;
            }
        }
        block_total
    });
    // Block partials fold in block order — same bits for any thread count.
    let total: f64 = partials.into_iter().fold(0.0f64, |acc, p| acc + p);

    (Tensor::scalar((total * norm as f64) as f32), grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use msd_tensor::rng::Rng;
    use msd_tensor::stats::acf;

    #[test]
    fn white_noise_has_near_zero_loss() {
        let mut rng = Rng::seed_from(2);
        let z = Tensor::randn(&[1, 2, 256], 1.0, &mut rng);
        let g = Graph::new();
        let v = g.input(z);
        let loss = g.acf_hinge_loss(v, 2.0);
        assert!(g.value(loss).item() < 5e-3, "loss {}", g.value(loss).item());
    }

    #[test]
    fn periodic_residual_has_large_loss() {
        let l = 96;
        let data: Vec<f32> = (0..l)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 12.0).sin())
            .collect();
        let z = Tensor::from_vec(&[1, 1, l], data);
        let g = Graph::new();
        let v = g.input(z);
        let loss = g.acf_hinge_loss(v, 2.0);
        assert!(g.value(loss).item() > 0.05, "loss {}", g.value(loss).item());
    }

    #[test]
    fn constant_residual_contributes_nothing() {
        let z = Tensor::full(&[1, 1, 32], 7.0);
        let g = Graph::new();
        let v = g.param(0, z);
        let loss = g.acf_hinge_loss(v, 2.0);
        assert_eq!(g.value(loss).item(), 0.0);
        let grads = g.backward(loss);
        assert!(grads.get(0).unwrap().data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn forward_matches_direct_acf_computation() {
        // Recompute the hinge loss from the reference acf() and compare.
        let mut rng = Rng::seed_from(4);
        let l = 48;
        let mut data = Vec::new();
        for _ in 0..2 {
            // A mix of signal and noise so some lags violate the band.
            for i in 0..l {
                let s = (2.0 * std::f32::consts::PI * i as f32 / 8.0).sin();
                data.push(s + 0.3 * rng.normal());
            }
        }
        let z = Tensor::from_vec(&[1, 2, l], data.clone());
        let g = Graph::new();
        let v = g.input(z);
        let alpha = 2.0;
        let fused = g.value(g.acf_hinge_loss(v, alpha)).item();

        let c = alpha / (l as f32).sqrt();
        let mut reference = 0.0f32;
        for ch in 0..2 {
            let row = &data[ch * l..(ch + 1) * l];
            for a in acf(row, l - 1) {
                reference += (a.abs() - c).max(0.0);
            }
        }
        reference /= 2.0 * (l - 1) as f32;
        assert!(
            (fused - reference).abs() < 1e-4,
            "fused {fused} vs reference {reference}"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(5);
        let l = 16;
        let z0 = {
            // signal + noise so the hinge is active at several lags
            let data: Vec<f32> = (0..2 * l)
                .map(|i| {
                    (2.0 * std::f32::consts::PI * (i % l) as f32 / 4.0).sin()
                        + 0.2 * rng.normal()
                })
                .collect();
            Tensor::from_vec(&[1, 2, l], data)
        };
        let f = |t: &Tensor| -> f32 {
            let g = Graph::new();
            let v = g.input(t.clone());
            g.value(g.acf_hinge_loss(v, 2.0)).item()
        };
        let g = Graph::new();
        let v = g.param(0, z0.clone());
        let loss = g.acf_hinge_loss(v, 2.0);
        let grads = g.backward(loss);
        let analytic = grads.get(0).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 3, 7, 15, 16, 25, 31] {
            let mut plus = z0.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = z0.clone();
            minus.data_mut()[idx] -= eps;
            let fd = (f(&plus) - f(&minus)) / (2.0 * eps);
            let an = analytic.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "idx {idx}: fd {fd} vs analytic {an}"
            );
        }
    }
}
