//! Layout graph ops: permute, reshape, pad, narrow, concat.

use crate::graph::{Graph, Node, Op, Var};

impl Graph {
    /// Axis reorder; output axis `i` is input axis `perm[i]`.
    pub fn permute(&self, a: Var, perm: &[usize]) -> Var {
        let value = self.with_value(a, |t| t.permute(perm));
        self.push_unary(a, value, Op::Permute(perm.to_vec()))
    }

    /// Shape reinterpretation with unchanged element count.
    pub fn reshape(&self, a: Var, shape: &[usize]) -> Var {
        let value = self.with_value(a, |t| t.reshape(shape));
        self.push_unary(a, value, Op::Reshape)
    }

    /// Zero-pads `axis` with `before`/`after` positions (the paper pads the
    /// time axis at the beginning before patching, Sec. III-C).
    pub fn pad_axis(&self, a: Var, axis: usize, before: usize, after: usize) -> Var {
        let orig_len = self.with_value(a, |t| t.shape()[axis]);
        let value = self.with_value(a, |t| t.pad_axis(axis, before, after));
        self.push_unary(
            a,
            value,
            Op::PadAxis {
                axis,
                before,
                orig_len,
            },
        )
    }

    /// Slices `len` positions starting at `start` along `axis`.
    pub fn narrow(&self, a: Var, axis: usize, start: usize, len: usize) -> Var {
        let orig_len = self.with_value(a, |t| t.shape()[axis]);
        let value = self.with_value(a, |t| t.narrow(axis, start, len));
        self.push_unary(
            a,
            value,
            Op::Narrow {
                axis,
                start,
                orig_len,
            },
        )
    }

    /// Concatenates along `axis`. All non-axis extents must match.
    pub fn concat(&self, parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let (value, extents) = {
            let nodes = self.nodes.borrow();
            let tensors: Vec<&msd_tensor::Tensor> =
                parts.iter().map(|v| &nodes[v.0 as usize].value).collect();
            let extents: Vec<usize> = tensors.iter().map(|t| t.shape()[axis]).collect();
            (msd_tensor::Tensor::concat(&tensors, axis), extents)
        };
        let needs_grad = {
            let nodes = self.nodes.borrow();
            parts.iter().any(|p| nodes[p.0 as usize].needs_grad)
        };
        self.push(Node {
            value,
            op: Op::Concat { axis, extents },
            parents: parts.to_vec(),
            needs_grad,
            param: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;
    use msd_tensor::Tensor;

    #[test]
    fn permute_grad_is_inverse_permute() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()));
        let y = g.permute(x, &[1, 0]);
        // Weight the loss so the gradient is position-dependent.
        let w = Tensor::from_vec(&[3, 2], (0..6).map(|i| i as f32).collect());
        let yw = g.mul_const(y, &w);
        let loss = g.sum_all(yw);
        let grads = g.backward(loss);
        let gx = grads.get(0).unwrap();
        assert_eq!(gx.shape(), &[2, 3]);
        // grad at x[i][j] = w[j][i]
        assert_eq!(gx.at(&[0, 1]), w.at(&[1, 0]));
        assert_eq!(gx.at(&[1, 2]), w.at(&[2, 1]));
    }

    #[test]
    fn pad_grad_strips_padding() {
        let g = Graph::new();
        let x = g.param(0, Tensor::ones(&[1, 3]));
        let p = g.pad_axis(x, 1, 2, 1);
        assert_eq!(g.shape_of(p), vec![1, 6]);
        let loss = g.sum_all(p);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn narrow_grad_scatters_back() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]));
        let n = g.narrow(x, 1, 1, 2);
        let loss = g.sum_all(n);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_grad_splits() {
        let g = Graph::new();
        let a = g.param(0, Tensor::ones(&[2, 1]));
        let b = g.param(1, Tensor::ones(&[2, 2]));
        let c = g.concat(&[a, b], 1);
        assert_eq!(g.shape_of(c), vec![2, 3]);
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let cw = g.mul_const(c, &w);
        let loss = g.sum_all(cw);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[1.0, 4.0]);
        assert_eq!(grads.get(1).unwrap().data(), &[2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_grad_restores_shape() {
        let g = Graph::new();
        let x = g.param(0, Tensor::ones(&[2, 3]));
        let r = g.reshape(x, &[3, 2]);
        let loss = g.sum_all(r);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().shape(), &[2, 3]);
    }
}
