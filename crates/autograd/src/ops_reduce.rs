//! Reduction graph ops and their broadcast adjoint helper.

use crate::graph::{Graph, Op, Var};
use msd_tensor::Tensor;

impl Graph {
    /// Sum of all elements, producing a scalar node.
    pub fn sum_all(&self, a: Var) -> Var {
        let value = self.with_value(a, |t| Tensor::scalar(t.sum_all()));
        self.push_unary(a, value, Op::SumAll)
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean_all(&self, a: Var) -> Var {
        let value = self.with_value(a, |t| Tensor::scalar(t.mean_all()));
        self.push_unary(a, value, Op::MeanAll)
    }

    /// Sum along `axis`, removing it.
    pub fn sum_axis(&self, a: Var, axis: usize) -> Var {
        let value = self.with_value(a, |t| t.sum_axis(axis));
        self.push_unary(a, value, Op::SumAxis(axis))
    }

    /// Mean along `axis`, removing it.
    pub fn mean_axis(&self, a: Var, axis: usize) -> Var {
        let value = self.with_value(a, |t| t.mean_axis(axis));
        self.push_unary(a, value, Op::MeanAxis(axis))
    }

    /// Broadcasts `a` (shape `[...]`) along a new trailing axis of extent
    /// `ext`, producing `[..., ext]`. Adjoint of a trailing-axis reduction;
    /// used for per-instance normalisation and attention score scaling.
    pub fn broadcast_last(&self, a: Var, ext: usize) -> Var {
        let value = self.with_value(a, |t| {
            let mut shape = t.shape().to_vec();
            shape.push(ext);
            let mut out = Vec::with_capacity(t.len() * ext);
            for &x in t.data() {
                out.extend(std::iter::repeat_n(x, ext));
            }
            Tensor::from_vec(&shape, out)
        });
        self.push_unary(a, value, Op::BroadcastLast(ext))
    }
}

/// Expands `reduced` back to `full_shape` along `axis`, scaling each copy by
/// `scale`. Shared by the SumAxis/MeanAxis adjoints.
pub(crate) fn broadcast_along_axis(
    reduced: &Tensor,
    full_shape: &[usize],
    axis: usize,
    scale: f32,
) -> Tensor {
    let ext = full_shape[axis];
    let inner: usize = full_shape[axis + 1..].iter().product();
    let outer: usize = full_shape[..axis].iter().product();
    debug_assert_eq!(reduced.len(), outer * inner);
    let mut out = Vec::with_capacity(outer * ext * inner);
    for o in 0..outer {
        let row = &reduced.data()[o * inner..(o + 1) * inner];
        for _ in 0..ext {
            out.extend(row.iter().map(|&x| x * scale));
        }
    }
    Tensor::from_vec(full_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn sum_all_grad_is_ones() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]));
        let loss = g.sum_all(x);
        assert_eq!(g.value(loss).item(), 26.0);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn mean_all_grad_divides() {
        let g = Graph::new();
        let x = g.param(0, Tensor::ones(&[4]));
        let loss = g.mean_all(x);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn sum_axis_grad_broadcasts() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2, 3], vec![1.0; 6]));
        let s = g.sum_axis(x, 1);
        // Weight so each output position has a distinct gradient.
        let w = Tensor::from_vec(&[2], vec![2.0, 5.0]);
        let sw = g.mul_const(s, &w);
        let loss = g.sum_all(sw);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[2.0, 2.0, 2.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn mean_axis_middle_grad() {
        let g = Graph::new();
        let x = g.param(0, Tensor::ones(&[2, 4, 3]));
        let m = g.mean_axis(x, 1);
        assert_eq!(g.shape_of(m), vec![2, 3]);
        let loss = g.sum_all(m);
        let grads = g.backward(loss);
        assert!(grads.get(0).unwrap().data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn broadcast_last_repeats_and_sums_back() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let b = g.broadcast_last(x, 3);
        assert_eq!(g.value(b).data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let loss = g.sum_all(b);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn broadcast_along_axis_helper() {
        let r = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = broadcast_along_axis(&r, &[2, 3], 1, 0.5);
        assert_eq!(b.data(), &[0.5, 0.5, 0.5, 1.0, 1.0, 1.0]);
    }
}
