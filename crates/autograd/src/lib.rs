#![warn(missing_docs)]

//! # msd-autograd
//!
//! Tape-based reverse-mode automatic differentiation over [`msd_tensor`].
//!
//! A [`Graph`] is a single-use tape: a training step builds the forward
//! computation by calling op methods on the graph (each returns a [`Var`]
//! handle), then calls [`Graph::backward`] on a scalar loss to obtain
//! gradients for every parameter leaf. Model parameters live *outside* the
//! graph (see `msd-nn`'s parameter store); they enter a step as parameter
//! leaves tagged with an opaque [`ParamId`], and [`Gradients`] maps those ids
//! back to gradient tensors.
//!
//! The op surface covers exactly what MSD-Mixer and the baseline models
//! need, including two fused ops with hand-derived adjoints:
//!
//! * [`Graph::softmax_cross_entropy`] — classification loss;
//! * [`Graph::acf_hinge_loss`] — the autocorrelation term of the paper's
//!   Residual Loss (Eq. 5–6), whose gradient is computed analytically during
//!   the forward pass.
//!
//! Every op's adjoint is validated against central finite differences in
//! this crate's test-suite (see `tests/gradcheck.rs` and [`check`]).

mod graph;
mod ops_acf;
mod ops_basic;
mod ops_layout;
mod ops_linalg;
mod ops_nn;
mod ops_reduce;

pub mod check;
pub mod plan;

pub use graph::{Gradients, Graph, ParamId, TapeArena, Var, ALL_OPS};
pub use plan::{CompiledPlan, ParamSource, PlanArena, PlanError};
