//! Finite-difference gradient checking.
//!
//! Used by this crate's tests and re-used by `msd-nn` and `msd-mixer` to
//! validate composed models end to end.

use crate::{Graph, Var};
use msd_tensor::Tensor;

/// Checks the analytic gradient of a scalar-valued graph function against
/// central finite differences.
///
/// `build` receives a fresh [`Graph`] and the parameter leaf (registered with
/// `ParamId` 0 and value `x0`) and must return a scalar loss [`Var`].
///
/// Returns the worst relative error across all elements of `x0`.
///
/// # Panics
/// Panics if `build` produces a non-scalar loss or no gradient for the
/// parameter.
pub fn gradcheck(x0: &Tensor, eps: f32, build: impl Fn(&Graph, Var) -> Var) -> f32 {
    // Analytic gradient.
    let g = Graph::new();
    let x = g.param(0, x0.clone());
    let loss = build(&g, x);
    let grads = g.backward(loss);
    let analytic = grads
        .get(0)
        .expect("gradcheck: no gradient reached the parameter")
        .clone();

    let eval = |t: &Tensor| -> f32 {
        let g = Graph::new();
        let x = g.input(t.clone());
        let loss = build(&g, x);
        g.value(loss).item()
    };

    let mut worst = 0.0f32;
    for idx in 0..x0.len() {
        let mut plus = x0.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[idx] -= eps;
        let fd = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let an = analytic.data()[idx];
        let denom = 1.0f32.max(fd.abs()).max(an.abs());
        let rel = (fd - an).abs() / denom;
        if rel > worst {
            worst = rel;
        }
    }
    worst
}

/// Asserts that [`gradcheck`] passes below `tol`, with a helpful message.
pub fn assert_gradcheck(x0: &Tensor, eps: f32, tol: f32, build: impl Fn(&Graph, Var) -> Var) {
    let worst = gradcheck(x0, eps, build);
    assert!(
        worst < tol,
        "gradient check failed: worst relative error {worst} >= {tol}"
    );
}
