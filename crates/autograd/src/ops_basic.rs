//! Elementwise and scalar graph ops.

use crate::graph::{Graph, Op, Var};
use msd_tensor::Tensor;

impl Graph {
    /// Elementwise `a + b` (same shapes).
    pub fn add(&self, a: Var, b: Var) -> Var {
        let value = self.with_value(a, |ta| self.with_value(b, |tb| ta.add(tb)));
        self.push_binary(a, b, value, Op::Add)
    }

    /// Elementwise `a - b` (same shapes).
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let value = self.with_value(a, |ta| self.with_value(b, |tb| ta.sub(tb)));
        self.push_binary(a, b, value, Op::Sub)
    }

    /// Elementwise `a * b` (same shapes).
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let value = self.with_value(a, |ta| self.with_value(b, |tb| ta.mul(tb)));
        self.push_binary(a, b, value, Op::Mul)
    }

    /// Elementwise `a / b` (same shapes).
    pub fn div(&self, a: Var, b: Var) -> Var {
        let value = self.with_value(a, |ta| self.with_value(b, |tb| ta.div(tb)));
        self.push_binary(a, b, value, Op::Div)
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::neg);
        self.push_unary(a, value, Op::Neg)
    }

    /// Multiplies by the scalar `s`.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let value = self.with_value(a, |t| t.scale(s));
        self.push_unary(a, value, Op::Scale(s))
    }

    /// Adds the scalar `s` (constant shift; gradient passes through).
    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        let value = self.with_value(a, |t| t.add_scalar(s));
        self.push_unary(a, value, Op::AddScalar(s))
    }

    /// Elementwise multiplication by a constant tensor `c` (no gradient into
    /// `c`) — used for dropout/droppath masks and imputation masks.
    pub fn mul_const(&self, a: Var, c: &Tensor) -> Var {
        let value = self.with_value(a, |t| t.mul(c));
        self.push_unary(a, value, Op::MulConst(c.clone()))
    }

    /// Elementwise addition of a constant tensor (no gradient into the
    /// constant).
    pub fn add_const(&self, a: Var, c: &Tensor) -> Var {
        let value = self.with_value(a, |t| t.add(c));
        self.push_unary(a, value, Op::AddConst(c.clone()))
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::square);
        self.push_unary(a, value, Op::Square)
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::abs);
        self.push_unary(a, value, Op::Abs)
    }

    /// Elementwise square root.
    pub fn sqrt(&self, a: Var) -> Var {
        let value = self.with_value(a, Tensor::sqrt);
        self.push_unary(a, value, Op::Sqrt)
    }

    /// Elementwise reciprocal `1/x`.
    pub fn recip(&self, a: Var) -> Var {
        let value = self.with_value(a, |t| t.map(|x| 1.0 / x));
        self.push_unary(a, value, Op::Recip)
    }

    /// Broadcast multiply over the last axis: `y[..., j] = a[..., j] * b[j]`
    /// with `b` 1-D. Gradient flows to both operands (used by LayerNorm's
    /// gain).
    pub fn mul_bcast_last(&self, a: Var, b: Var) -> Var {
        let value = self.with_value(a, |ta| {
            self.with_value(b, |tb| {
                let d = tb.shape()[0];
                assert_eq!(
                    *ta.shape().last().expect("mul_bcast_last on scalar"),
                    d,
                    "mul_bcast_last dim mismatch"
                );
                let mut out = ta.clone();
                for chunk in out.data_mut().chunks_exact_mut(d) {
                    for (x, &bv) in chunk.iter_mut().zip(tb.data()) {
                        *x *= bv;
                    }
                }
                out
            })
        });
        self.push_binary(a, b, value, Op::MulBcastLast)
    }

    /// Broadcast add over the last axis: `y[..., j] = a[..., j] + b[j]` with
    /// `b` 1-D. Gradient flows to both operands (used by LayerNorm's shift).
    pub fn add_bcast_last(&self, a: Var, b: Var) -> Var {
        let value = self.with_value(a, |ta| self.with_value(b, |tb| ta.add_bias(tb)));
        self.push_binary(a, b, value, Op::AddBcastLast)
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;
    use msd_tensor::Tensor;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(&[v.len()], v.to_vec())
    }

    #[test]
    fn forward_values_match_tensor_ops() {
        let g = Graph::new();
        let a = g.input(t(&[1.0, 2.0]));
        let b = g.input(t(&[3.0, 4.0]));
        assert_eq!(g.value(g.add(a, b)).data(), &[4.0, 6.0]);
        assert_eq!(g.value(g.sub(a, b)).data(), &[-2.0, -2.0]);
        assert_eq!(g.value(g.mul(a, b)).data(), &[3.0, 8.0]);
        assert_eq!(g.value(g.div(b, a)).data(), &[3.0, 2.0]);
        assert_eq!(g.value(g.neg(a)).data(), &[-1.0, -2.0]);
        assert_eq!(g.value(g.scale(a, 3.0)).data(), &[3.0, 6.0]);
        assert_eq!(g.value(g.add_scalar(a, 1.0)).data(), &[2.0, 3.0]);
        assert_eq!(g.value(g.square(a)).data(), &[1.0, 4.0]);
    }

    #[test]
    fn div_gradients_follow_quotient_rule() {
        let g = Graph::new();
        let a = g.param(0, t(&[6.0]));
        let b = g.param(1, t(&[2.0]));
        let q = g.div(a, b);
        let loss = g.sum_all(q);
        let grads = g.backward(loss);
        assert!((grads.get(0).unwrap().data()[0] - 0.5).abs() < 1e-6);
        assert!((grads.get(1).unwrap().data()[0] + 1.5).abs() < 1e-6);
    }

    #[test]
    fn mul_const_blocks_constant_grad() {
        let g = Graph::new();
        let x = g.param(0, t(&[2.0, 3.0]));
        let y = g.mul_const(x, &t(&[10.0, 0.0]));
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[10.0, 0.0]);
    }

    #[test]
    fn abs_gradient_is_sign() {
        let g = Graph::new();
        let x = g.param(0, t(&[-2.0, 0.0, 5.0]));
        let y = g.abs(x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[-1.0, 0.0, 1.0]);
    }
}
