//! The tape: node storage, leaf creation, and the backward driver.

use msd_tensor::Tensor;
use std::cell::RefCell;

/// Handle to a node on a [`Graph`]'s tape. Cheap to copy; only valid for the
/// graph that produced it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) u32);

/// Opaque identity of a trainable parameter, assigned by the caller
/// (`msd-nn`'s parameter store). [`Gradients`] is indexed by it.
pub type ParamId = usize;

/// Declares the op registry: the `Op` enum, [`Op::name`], and the public
/// [`ALL_OPS`] name list, all generated from ONE variant list so they can
/// never drift apart. The gradcheck completeness test enumerates
/// [`ALL_OPS`] and fails if any op lacks a gradcheck entry, so adding a
/// variant here forces adding a gradient test.
macro_rules! define_ops {
    (
        $( $(#[$m:meta])* $name:ident
            $(( $($tty:ty),+ $(,)? ))?
            $({ $( $(#[$fm:meta])* $fname:ident : $ftype:ty ),+ $(,)? })?
        ),+ $(,)?
    ) => {
        /// Backward rule selector, with whatever forward context the
        /// adjoint needs.
        pub(crate) enum Op {
            $(
                $(#[$m])*
                $name
                    $(( $($tty),+ ))?
                    $({ $( $(#[$fm])* $fname: $ftype ),+ })?
            ),+
        }

        impl Op {
            /// The variant's registry name, as listed in [`ALL_OPS`].
            pub(crate) fn name(&self) -> &'static str {
                match self {
                    $( Op::$name { .. } => stringify!($name) ),+
                }
            }
        }

        impl std::fmt::Debug for Op {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(self.name())
            }
        }

        /// Name of every registered op, in declaration order. Enumerated by
        /// the gradcheck completeness test (`tests/op_coverage.rs`): every
        /// entry must have a matching `// gradcheck: <Name>` marker in
        /// `tests/gradcheck.rs`.
        pub const ALL_OPS: &[&str] = &[ $( stringify!($name) ),+ ];
    };
}

define_ops! {
    /// Input or parameter leaf; nothing to propagate further.
    Leaf,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Scale(f32),
    /// Multiplication by a constant (non-differentiable) tensor, e.g. a
    /// dropout or imputation mask.
    MulConst(Tensor),
    /// Addition of a scalar constant to every element.
    AddScalar(f32),
    /// Addition of a constant (non-differentiable) tensor; stores the
    /// constant so compiled plans can replay the op.
    AddConst(Tensor),
    Linear,
    /// Fused `gelu(x · W + b)`; stores the pre-activation for the backward
    /// pass. Parents are `(x, w[, b])`, exactly like [`Op::Linear`].
    LinearGelu {
        pre: Tensor,
    },
    /// `bias` is parent 2 when present.
    Matmul {
        rhs_is_2d: bool,
    },
    Permute(Vec<usize>),
    Reshape,
    PadAxis {
        axis: usize,
        before: usize,
        orig_len: usize,
    },
    Narrow {
        axis: usize,
        start: usize,
        orig_len: usize,
    },
    Concat {
        axis: usize,
        /// Extent of each parent along `axis`, in order.
        extents: Vec<usize>,
    },
    Gelu,
    Relu,
    Tanh,
    Square,
    Abs,
    Sqrt,
    Recip,
    SumAll,
    MeanAll,
    SumAxis(usize),
    MeanAxis(usize),
    /// Broadcast a reduced tensor back along a new trailing axis.
    BroadcastLast(usize),
    /// `y[..., j] = a[..., j] * b[j]` with `b` 1-D over the last axis.
    MulBcastLast,
    /// `y[..., j] = a[..., j] + b[j]` with `b` 1-D over the last axis.
    AddBcastLast,
    /// Fused LayerNorm over the last axis; stores the per-row statistics
    /// for the backward pass. Parents are `(x, gamma, beta)`.
    LayerNorm {
        mean: Tensor,
        rstd: Tensor,
        eps: f32,
    },
    /// Non-overlapping max pooling over the last axis; stores the winning
    /// flat indices for the backward scatter.
    MaxPoolLast {
        argmax: Vec<u32>,
    },
    SoftmaxLast,
    /// Fused log-softmax + NLL; stores softmax probabilities and the labels.
    SoftmaxCe {
        probs: Tensor,
        labels: Vec<usize>,
    },
    /// Fused ACF hinge loss; the input gradient is computed during forward.
    AcfHinge {
        input_grad: Tensor,
    },
    /// Fused Huber/MSE/MAE style losses store their input gradient directly.
    FusedLoss {
        input_grad: Tensor,
    },
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub parents: Vec<Var>,
    /// Whether any ancestor is a parameter leaf (gradients needed).
    pub needs_grad: bool,
    /// Set on parameter leaves only.
    pub param: Option<ParamId>,
}

/// A single-use reverse-mode tape.
///
/// Interior mutability lets op methods take `&self`, which keeps model
/// forward passes free of `&mut` plumbing.
pub struct Graph {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// Whether stochastic regularisation (dropout / droppath) is active.
    train: bool,
}

/// Reusable node storage for repeated eval forwards.
///
/// A [`Graph`] is single-use, so a serving loop that runs one forward per
/// request would reallocate the tape's node vector every time. An arena
/// carries the (cleared) vector across tapes: build the next graph with
/// [`Graph::eval_with`] and give the storage back with [`Graph::recycle`].
/// Only the capacity survives recycling — never any values — so forwards
/// through an arena-backed tape are identical to fresh-graph forwards.
#[derive(Default)]
pub struct TapeArena {
    nodes: Vec<Node>,
}

impl TapeArena {
    /// Creates an empty arena; capacity grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current node capacity held for reuse.
    pub fn capacity(&self) -> usize {
        self.nodes.capacity()
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape in training mode.
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(256)),
            train: true,
        }
    }

    /// Creates an empty tape in evaluation mode (dropout and droppath become
    /// identity ops).
    pub fn eval() -> Self {
        Self {
            nodes: RefCell::new(Vec::with_capacity(256)),
            train: false,
        }
    }

    /// Creates an empty eval-mode tape backed by a recycled [`TapeArena`],
    /// avoiding node-vector reallocation across repeated forwards.
    pub fn eval_with(arena: TapeArena) -> Self {
        Self {
            nodes: RefCell::new(arena.nodes),
            train: false,
        }
    }

    /// Consumes the graph, clearing the tape but keeping its allocation for
    /// the next [`Graph::eval_with`].
    pub fn recycle(self) -> TapeArena {
        let mut nodes = self.nodes.into_inner();
        nodes.clear();
        TapeArena { nodes }
    }

    /// Whether the graph applies stochastic regularisation.
    #[inline]
    pub fn is_train(&self) -> bool {
        self.train
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Adds a non-differentiable input leaf (data, targets, masks).
    pub fn input(&self, value: Tensor) -> Var {
        self.push(Node {
            value,
            op: Op::Leaf,
            parents: vec![],
            needs_grad: false,
            param: None,
        })
    }

    /// Adds a trainable parameter leaf tagged with `id`. Its gradient appears
    /// in the [`Gradients`] returned by [`Graph::backward`].
    pub fn param(&self, id: ParamId, value: Tensor) -> Var {
        self.push(Node {
            value,
            op: Op::Leaf,
            parents: vec![],
            needs_grad: true,
            param: Some(id),
        })
    }

    /// The forward value of `v` (cloned out of the tape).
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0 as usize].value.clone()
    }

    /// Shape of the forward value of `v`.
    pub fn shape_of(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0 as usize].value.shape().to_vec()
    }

    /// Runs `f` with a borrow of the forward value, avoiding a clone.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[v.0 as usize].value)
    }

    pub(crate) fn push(&self, node: Node) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        assert!(id <= u32::MAX as usize, "tape overflow");
        nodes.push(node);
        Var(id as u32)
    }

    pub(crate) fn push_unary(&self, parent: Var, value: Tensor, op: Op) -> Var {
        let needs_grad = self.nodes.borrow()[parent.0 as usize].needs_grad;
        self.push(Node {
            value,
            op,
            parents: vec![parent],
            needs_grad,
            param: None,
        })
    }

    pub(crate) fn push_binary(&self, a: Var, b: Var, value: Tensor, op: Op) -> Var {
        let needs_grad = {
            let nodes = self.nodes.borrow();
            nodes[a.0 as usize].needs_grad || nodes[b.0 as usize].needs_grad
        };
        self.push(Node {
            value,
            op,
            parents: vec![a, b],
            needs_grad,
            param: None,
        })
    }

    /// Reverse pass from the scalar `loss`, returning parameter gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        let n = nodes.len();
        assert_eq!(
            nodes[loss.0 as usize].value.len(),
            1,
            "backward() requires a scalar loss, got shape {:?}",
            nodes[loss.0 as usize].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.0 as usize] = Some(Tensor::full(
            nodes[loss.0 as usize].value.shape(),
            1.0,
        ));

        for idx in (0..n).rev() {
            if !nodes[idx].needs_grad {
                continue;
            }
            let Some(grad_out) = grads[idx].take() else {
                continue;
            };
            let node = &nodes[idx];
            if node.param.is_some() {
                // Parameter leaf: keep the gradient for collection below.
                grads[idx] = Some(grad_out);
                continue;
            }
            if matches!(node.op, Op::Leaf) {
                continue;
            }
            let parent_grads = crate::graph::backward_op(node, &grad_out, &nodes);
            debug_assert_eq!(parent_grads.len(), node.parents.len());
            for (pv, pg) in node.parents.iter().zip(parent_grads) {
                let Some(pg) = pg else { continue };
                if !nodes[pv.0 as usize].needs_grad {
                    continue;
                }
                match &mut grads[pv.0 as usize] {
                    Some(acc) => acc.add_assign(&pg),
                    slot @ None => *slot = Some(pg),
                }
            }
        }

        // Collect per-parameter gradients, merging duplicate leaves (a
        // parameter registered twice on one tape, e.g. weight sharing).
        let mut by_param: Vec<(ParamId, Tensor)> = Vec::new();
        for (idx, node) in nodes.iter().enumerate() {
            if let Some(pid) = node.param {
                if let Some(g) = grads[idx].take() {
                    match by_param.iter_mut().find(|(p, _)| *p == pid) {
                        Some((_, acc)) => acc.add_assign(&g),
                        None => by_param.push((pid, g)),
                    }
                }
            }
        }
        Gradients { by_param }
    }
}

/// Parameter gradients produced by [`Graph::backward`], keyed by [`ParamId`].
pub struct Gradients {
    by_param: Vec<(ParamId, Tensor)>,
}

impl Gradients {
    /// Gradient for parameter `id`, if it participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.iter().find(|(p, _)| *p == id).map(|(_, g)| g)
    }

    /// Iterates `(ParamId, gradient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.by_param.iter().map(|(p, g)| (*p, g))
    }

    /// Number of parameters that received a gradient.
    pub fn len(&self) -> usize {
        self.by_param.len()
    }

    /// Whether no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.by_param.is_empty()
    }

    /// Global L2 norm across all parameter gradients.
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .iter()
            .map(|(_, g)| g.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Whether every gradient element is finite (no NaN/±inf anywhere).
    ///
    /// Cheaper than [`Gradients::global_norm`] as a poison check: it
    /// short-circuits on the first bad element and cannot be fooled by
    /// squared-sum overflow of large-but-finite gradients.
    pub fn all_finite(&self) -> bool {
        self.by_param
            .iter()
            .all(|(_, g)| g.data().iter().all(|v| v.is_finite()))
    }

    /// L2 norm of one parameter's gradient, if it received one.
    pub fn param_norm(&self, id: ParamId) -> Option<f32> {
        self.get(id).map(|g| g.sq_norm().sqrt())
    }
}

/// Dispatches the adjoint computation for one node. Returns one optional
/// gradient per parent (in parent order); `None` means "no gradient flows to
/// this parent" (e.g. constants).
pub(crate) fn backward_op(node: &Node, grad_out: &Tensor, nodes: &[Node]) -> Vec<Option<Tensor>> {
    let pv = |i: usize| -> &Tensor { &nodes[node.parents[i].0 as usize].value };
    match &node.op {
        Op::Leaf => vec![],
        Op::Add => vec![Some(grad_out.clone()), Some(grad_out.clone())],
        Op::Sub => vec![Some(grad_out.clone()), Some(grad_out.neg())],
        Op::Mul => vec![
            Some(grad_out.mul(pv(1))),
            Some(grad_out.mul(pv(0))),
        ],
        Op::Div => {
            // y = a / b: da = g / b; db = -g * a / b^2
            let b = pv(1);
            let da = grad_out.div(b);
            let db = grad_out.mul(pv(0)).div(&b.square()).neg();
            vec![Some(da), Some(db)]
        }
        Op::Neg => vec![Some(grad_out.neg())],
        Op::Scale(s) => vec![Some(grad_out.scale(*s))],
        Op::MulConst(c) => vec![Some(grad_out.mul(c))],
        Op::AddScalar(_) => vec![Some(grad_out.clone())],
        Op::AddConst(_) => vec![Some(grad_out.clone())],
        Op::Linear => crate::ops_linalg::linear_backward(node, grad_out, nodes),
        Op::Matmul { rhs_is_2d } => {
            crate::ops_linalg::matmul_backward(node, grad_out, nodes, *rhs_is_2d)
        }
        Op::Permute(perm) => {
            let mut inv = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inv[p] = i;
            }
            vec![Some(grad_out.permute(&inv))]
        }
        Op::Reshape => vec![Some(grad_out.reshape(pv(0).shape()))],
        Op::PadAxis { axis, before, orig_len } => {
            vec![Some(grad_out.narrow(*axis, *before, *orig_len))]
        }
        Op::Narrow { axis, start, orig_len } => {
            vec![Some(grad_out.widen(*axis, *start, *orig_len))]
        }
        Op::Concat { axis, extents } => {
            let mut out = Vec::with_capacity(extents.len());
            let mut offset = 0;
            for &ext in extents {
                out.push(Some(grad_out.narrow(*axis, offset, ext)));
                offset += ext;
            }
            out
        }
        Op::Gelu => {
            // Fused dy * gelu'(x) in one SIMD sweep.
            let x = pv(0);
            let mut dx = vec![0.0f32; x.len()];
            msd_tensor::ops::kernels::ew::gelu_bwd(x.data(), grad_out.data(), &mut dx);
            vec![Some(Tensor::from_vec(x.shape(), dx))]
        }
        Op::LinearGelu { pre } => {
            // Chain rule through the activation first, then reuse the
            // shared linear adjoint with dpre in place of grad_out.
            let mut dpre = vec![0.0f32; pre.len()];
            msd_tensor::ops::kernels::ew::gelu_bwd(pre.data(), grad_out.data(), &mut dpre);
            let dpre = Tensor::from_vec(pre.shape(), dpre);
            crate::ops_linalg::linear_backward(node, &dpre, nodes)
        }
        Op::LayerNorm { mean, rstd, eps: _ } => {
            let x = pv(0);
            let gamma = pv(1);
            let d = gamma.len();
            let mut dx = vec![0.0f32; x.len()];
            let mut dgamma = vec![0.0f32; d];
            let mut dbeta = vec![0.0f32; d];
            msd_tensor::ops::kernels::norm::layernorm_bwd(
                x.data(),
                d,
                gamma.data(),
                mean.data(),
                rstd.data(),
                grad_out.data(),
                &mut dx,
                &mut dgamma,
                &mut dbeta,
            );
            vec![
                Some(Tensor::from_vec(x.shape(), dx)),
                Some(Tensor::from_vec(&[d], dgamma)),
                Some(Tensor::from_vec(&[d], dbeta)),
            ]
        }
        Op::Relu => {
            let mask = pv(0).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
            vec![Some(grad_out.mul(&mask))]
        }
        Op::Tanh => {
            // d tanh = 1 - tanh^2; node.value holds tanh(x).
            let d = node.value.map(|t| 1.0 - t * t);
            vec![Some(grad_out.mul(&d))]
        }
        Op::Square => vec![Some(grad_out.mul(&pv(0).scale(2.0)))],
        Op::Abs => {
            let sign = pv(0).map(|x| {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            });
            vec![Some(grad_out.mul(&sign))]
        }
        Op::Sqrt => {
            // d sqrt(x) = 1/(2 sqrt(x)); node.value holds sqrt(x).
            let d = node.value.map(|s| 0.5 / s.max(1e-12));
            vec![Some(grad_out.mul(&d))]
        }
        Op::Recip => {
            // d (1/x) = -1/x^2 = -value^2
            let d = node.value.map(|v| -v * v);
            vec![Some(grad_out.mul(&d))]
        }
        Op::SumAll => {
            let g = grad_out.item();
            vec![Some(Tensor::full(pv(0).shape(), g))]
        }
        Op::MeanAll => {
            let n = pv(0).len() as f32;
            let g = grad_out.item() / n;
            vec![Some(Tensor::full(pv(0).shape(), g))]
        }
        Op::SumAxis(axis) => {
            vec![Some(crate::ops_reduce::broadcast_along_axis(
                grad_out,
                pv(0).shape(),
                *axis,
                1.0,
            ))]
        }
        Op::MeanAxis(axis) => {
            let ext = pv(0).shape()[*axis] as f32;
            vec![Some(crate::ops_reduce::broadcast_along_axis(
                grad_out,
                pv(0).shape(),
                *axis,
                1.0 / ext,
            ))]
        }
        Op::BroadcastLast(ext) => {
            // y[..., j] = x[...]: adjoint sums over the trailing axis.
            let nd = grad_out.ndim();
            debug_assert_eq!(grad_out.shape()[nd - 1], *ext);
            vec![Some(grad_out.sum_axis(nd - 1))]
        }
        Op::MulBcastLast => {
            // a: [..., d], b: [d].
            let a = pv(0);
            let b = pv(1);
            let d = b.shape()[0];
            let mut da = grad_out.clone();
            {
                let bd = b.data();
                for chunk in da.data_mut().chunks_exact_mut(d) {
                    for (x, &bv) in chunk.iter_mut().zip(bd) {
                        *x *= bv;
                    }
                }
            }
            let mut db = vec![0.0f32; d];
            for (gchunk, achunk) in grad_out
                .data()
                .chunks_exact(d)
                .zip(a.data().chunks_exact(d))
            {
                for ((acc, &g), &av) in db.iter_mut().zip(gchunk).zip(achunk) {
                    *acc += g * av;
                }
            }
            vec![Some(da), Some(Tensor::from_vec(&[d], db))]
        }
        Op::AddBcastLast => {
            let b = pv(1);
            let d = b.shape()[0];
            let mut db = vec![0.0f32; d];
            for gchunk in grad_out.data().chunks_exact(d) {
                for (acc, &g) in db.iter_mut().zip(gchunk) {
                    *acc += g;
                }
            }
            vec![Some(grad_out.clone()), Some(Tensor::from_vec(&[d], db))]
        }
        Op::MaxPoolLast { argmax } => {
            let mut dx = Tensor::zeros(pv(0).shape());
            for (&idx, &g) in argmax.iter().zip(grad_out.data()) {
                dx.data_mut()[idx as usize] += g;
            }
            vec![Some(dx)]
        }
        Op::SoftmaxLast => {
            // s = softmax(x): dx = s * (g - sum(g * s, last))
            let s = &node.value;
            let gs = grad_out.mul(s);
            let last = s.shape().len() - 1;
            let dot = gs.sum_axis(last);
            let dot_b = crate::ops_reduce::broadcast_along_axis(
                &dot,
                s.shape(),
                last,
                1.0,
            );
            vec![Some(s.mul(&grad_out.sub(&dot_b)))]
        }
        Op::SoftmaxCe { probs, labels } => {
            // dL/dlogits = (softmax - onehot) / batch
            let batch = labels.len();
            let classes = probs.shape()[1];
            let mut dx = probs.clone();
            for (i, &lbl) in labels.iter().enumerate() {
                dx.data_mut()[i * classes + lbl] -= 1.0;
            }
            let g = grad_out.item() / batch as f32;
            vec![Some(dx.scale(g))]
        }
        Op::AcfHinge { input_grad } | Op::FusedLoss { input_grad } => {
            vec![Some(input_grad.scale(grad_out.item()))]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_registry_names_are_unique_and_consistent() {
        assert_eq!(Op::Add.name(), "Add");
        assert_eq!(Op::Scale(2.0).name(), "Scale");
        assert_eq!(
            Op::FusedLoss { input_grad: Tensor::zeros(&[1]) }.name(),
            "FusedLoss"
        );
        let mut names: Vec<&str> = ALL_OPS.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_OPS.len(), "duplicate op names in registry");
        assert!(ALL_OPS.contains(&"Leaf"));
        assert!(ALL_OPS.contains(&"LinearGelu"));
        assert!(ALL_OPS.contains(&"LayerNorm"));
    }

    #[test]
    fn leaf_values_round_trip() {
        let g = Graph::new();
        let t = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let v = g.input(t.clone());
        assert_eq!(g.value(v), t);
        assert_eq!(g.shape_of(v), vec![2]);
    }

    #[test]
    fn backward_through_simple_chain() {
        // loss = mean((2x)^2); dloss/dx = 8x/n
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![1.0, 3.0]));
        let y = g.scale(x, 2.0);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        let gx = grads.get(0).unwrap();
        assert!((gx.data()[0] - 4.0).abs() < 1e-5);
        assert!((gx.data()[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_accumulate_over_shared_use() {
        // loss = sum(x * x) — x used as both parents of Mul.
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]));
        let prod = g.mul(x, x);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        let gx = grads.get(0).unwrap();
        assert_eq!(gx.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn no_gradient_for_inputs() {
        let g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        let w = g.param(7, Tensor::ones(&[2]));
        let y = g.mul(x, w);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.len(), 1);
        assert!(grads.get(7).is_some());
        assert!(grads.get(0).is_none());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let g = Graph::new();
        let x = g.param(0, Tensor::ones(&[3]));
        let y = g.scale(x, 2.0);
        let _ = g.backward(y);
    }

    #[test]
    fn global_norm_is_l2() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![3.0, 4.0]));
        let loss = g.sum_all(x);
        let grads = g.backward(loss);
        // grad = [1, 1]; norm = sqrt(2)
        assert!((grads.global_norm() - 2f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn all_finite_detects_nan_gradient() {
        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![3.0, 4.0]));
        let loss = g.sum_all(g.scale(x, f32::NAN));
        let grads = g.backward(loss);
        assert!(!grads.all_finite());
        assert!(grads.global_norm().is_nan());

        let g = Graph::new();
        let x = g.param(0, Tensor::from_vec(&[2], vec![3.0, 4.0]));
        let loss = g.sum_all(x);
        assert!(g.backward(loss).all_finite());
    }

    #[test]
    fn recycled_arena_keeps_capacity_not_values() {
        let g = Graph::eval();
        let x = g.input(Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]));
        let _ = g.square(x);
        let cap_before = g.nodes.borrow().capacity();
        let arena = g.recycle();
        assert!(arena.capacity() >= cap_before.min(2));

        let g2 = Graph::eval_with(arena);
        assert!(g2.is_empty(), "recycled tape must start empty");
        assert!(!g2.is_train());
        let y = g2.input(Tensor::from_vec(&[2], vec![5.0, 6.0]));
        let z = g2.scale(y, 2.0);
        assert_eq!(g2.value(z).data(), &[10.0, 12.0]);
    }

    /// Property test: one arena threaded through a random sequence of
    /// shape-changing evals must produce bit-identical results to a fresh
    /// graph per eval — recycling may reuse capacity but never values.
    #[test]
    fn recycled_arena_matches_fresh_eval_over_random_shape_sequences() {
        use msd_tensor::rng::Rng;

        let forward = |g: &Graph, x: Tensor, w: &Tensor| {
            let rows = x.shape()[0];
            let xv = g.input(x);
            let wv = g.input(w.clone());
            let h = g.linear(xv, wv, None);
            let h = g.gelu(h);
            let y = g.add(h, g.scale(h, -0.5));
            let p = g.mean_axis(y, 1);
            let out = g.concat(&[g.reshape(p, &[rows, 1]), y], 1);
            g.value(out).clone()
        };

        let mut rng = Rng::seed_from(0xA2E7);
        let w = Tensor::randn(&[5, 3], 0.7, &mut rng);
        let mut arena = TapeArena::default();
        for step in 0..24 {
            // Random row count 1..=9 drives both tape length and tensor
            // sizes, so shrinking and growing shapes both get exercised.
            let rows = 1 + (rng.next_u64() % 9) as usize;
            let x = Tensor::randn(&[rows, 5], 1.0, &mut rng);

            let recycled = Graph::eval_with(arena);
            assert!(recycled.is_empty(), "step {step}: recycled tape not empty");
            let got = forward(&recycled, x.clone(), &w);
            arena = recycled.recycle();

            let fresh = Graph::eval();
            let want = forward(&fresh, x, &w);

            assert_eq!(got.shape(), want.shape(), "step {step}: shape drift");
            for (i, (a, b)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {step}: byte mismatch at element {i}"
                );
            }
        }
    }

    #[test]
    fn param_norm_is_per_parameter() {
        let g = Graph::new();
        let a = g.param(0, Tensor::from_vec(&[2], vec![1.0, 1.0]));
        let b = g.param(1, Tensor::from_vec(&[1], vec![1.0]));
        let loss = g.add(g.sum_all(g.scale(a, 3.0)), g.sum_all(b));
        let grads = g.backward(loss);
        // grad_a = [3, 3] → norm 3√2; grad_b = [1] → norm 1; param 2 absent.
        assert!((grads.param_norm(0).unwrap() - 3.0 * 2f32.sqrt()).abs() < 1e-6);
        assert!((grads.param_norm(1).unwrap() - 1.0).abs() < 1e-6);
        assert!(grads.param_norm(2).is_none());
    }
}
