//! Linear-algebra graph ops: fused linear and (batched) matmul.

use crate::graph::{Graph, Node, Op, Var};
use msd_tensor::Tensor;

impl Graph {
    /// Affine map over the last axis: `y = x · W (+ b)`.
    ///
    /// `x` is `[..., in]`, `weight` is `[in, out]`, `bias` (optional) is
    /// `[out]`. Gradients flow to all differentiable parents.
    pub fn linear(&self, x: Var, weight: Var, bias: Option<Var>) -> Var {
        let value = self.with_value(x, |tx| {
            self.with_value(weight, |tw| match bias {
                Some(b) => self.with_value(b, |tb| tx.linear(tw, Some(tb))),
                None => tx.linear(tw, None),
            })
        });
        let mut parents = vec![x, weight];
        if let Some(b) = bias {
            parents.push(b);
        }
        let needs_grad = {
            let nodes = self.nodes.borrow();
            parents.iter().any(|p| nodes[p.0 as usize].needs_grad)
        };
        self.push(Node {
            value,
            op: Op::Linear,
            parents,
            needs_grad,
            param: None,
        })
    }

    /// Fused `gelu(x · W (+ b))` — the hot composition of every MLP block.
    ///
    /// One node instead of two: the linear result (pre-activation) is kept
    /// for the backward pass instead of re-deriving it, and both the
    /// activation and its adjoint run through the SIMD GELU kernel.
    /// Numerically identical to `g.gelu(g.linear(x, w, b))`.
    pub fn linear_gelu(&self, x: Var, weight: Var, bias: Option<Var>) -> Var {
        let pre = self.with_value(x, |tx| {
            self.with_value(weight, |tw| match bias {
                Some(b) => self.with_value(b, |tb| tx.linear(tw, Some(tb))),
                None => tx.linear(tw, None),
            })
        });
        let mut out = vec![0.0f32; pre.len()];
        msd_tensor::ops::kernels::ew::gelu(pre.data(), &mut out);
        let value = Tensor::from_vec(pre.shape(), out);
        let mut parents = vec![x, weight];
        if let Some(b) = bias {
            parents.push(b);
        }
        let needs_grad = {
            let nodes = self.nodes.borrow();
            parents.iter().any(|p| nodes[p.0 as usize].needs_grad)
        };
        self.push(Node {
            value,
            op: Op::LinearGelu { pre },
            parents,
            needs_grad,
            param: None,
        })
    }

    /// Matrix product with the same shape rules as [`Tensor::matmul`]:
    /// either `[..., m, k] · [k, n]` (2-D right-hand side broadcast over
    /// batches) or equal-rank batched `[..., m, k] · [..., k, n]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let rhs_is_2d = self.with_value(b, |tb| tb.ndim() == 2)
            && self.with_value(a, |ta| ta.ndim() > 2);
        let value = self.with_value(a, |ta| self.with_value(b, |tb| ta.matmul(tb)));
        self.push_binary(a, b, value, Op::Matmul { rhs_is_2d })
    }
}

/// Adjoint of [`Graph::linear`].
///
/// With `x: [R, in]` flattened over leading axes, `W: [in, out]`:
/// `dX = dY · Wᵀ`, `dW = Xᵀ · dY`, `db = Σ_rows dY`. The transposed
/// products go through [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`], which
/// read the transposed operand through strides — no transposed copy of `W`
/// or `X` is ever materialised.
pub(crate) fn linear_backward(
    node: &Node,
    grad_out: &Tensor,
    nodes: &[Node],
) -> Vec<Option<Tensor>> {
    let x = &nodes[node.parents[0].0 as usize].value;
    let w = &nodes[node.parents[1].0 as usize].value;
    let in_dim = w.shape()[0];
    let out_dim = w.shape()[1];
    let rows = x.len() / in_dim;

    let x2 = x.reshape(&[rows, in_dim]);
    let g2 = grad_out.reshape(&[rows, out_dim]);

    let dx = g2.matmul_nt(w).reshape(x.shape());
    let dw = x2.matmul_tn(&g2);

    let mut out = vec![Some(dx), Some(dw)];
    if node.parents.len() == 3 {
        out.push(Some(g2.sum_axis(0)));
    }
    out
}

/// Adjoint of [`Graph::matmul`].
pub(crate) fn matmul_backward(
    node: &Node,
    grad_out: &Tensor,
    nodes: &[Node],
    rhs_is_2d: bool,
) -> Vec<Option<Tensor>> {
    let a = &nodes[node.parents[0].0 as usize].value;
    let b = &nodes[node.parents[1].0 as usize].value;
    if rhs_is_2d {
        // a: [..., m, k], b: [k, n]
        let k = b.shape()[0];
        let n = b.shape()[1];
        let m = a.shape()[a.ndim() - 2];
        let batch = a.len() / (m * k);
        // dA = G · Bᵀ, batched with 2-D rhs, read through strides.
        let da = grad_out.matmul_nt(b);
        // dB = Σ_batches Aᵀ · G: flatten batches into rows.
        let a2 = a.reshape(&[batch * m, k]);
        let g2 = grad_out.reshape(&[batch * m, n]);
        let db = a2.matmul_tn(&g2);
        vec![Some(da), Some(db)]
    } else {
        // Equal-rank batched: dA = G · Bᵀ, dB = Aᵀ · G, per batch.
        let da = grad_out.matmul_nt(b);
        let db = a.matmul_tn(grad_out);
        vec![Some(da), Some(db)]
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;
    use msd_tensor::Tensor;

    #[test]
    fn linear_forward_matches_tensor() {
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()));
        let w = g.param(0, Tensor::from_vec(&[3, 2], vec![1.0; 6]));
        let b = g.param(1, Tensor::from_vec(&[2], vec![0.5, -0.5]));
        let y = g.linear(x, w, Some(b));
        let expect = g.value(x).linear(&g.value(w), Some(&g.value(b)));
        assert_eq!(g.value(y), expect);
    }

    #[test]
    fn linear_weight_grad_known_values() {
        // loss = sum(x·W), x = [[1, 2]], W: [2,1] => dW = [[1],[2]]
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(&[1, 2], vec![1.0, 2.0]));
        let w = g.param(0, Tensor::from_vec(&[2, 1], vec![0.0, 0.0]));
        let y = g.linear(x, w, None);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn linear_bias_grad_counts_rows() {
        let g = Graph::new();
        let x = g.input(Tensor::zeros(&[4, 3]));
        let w = g.param(0, Tensor::zeros(&[3, 2]));
        let b = g.param(1, Tensor::zeros(&[2]));
        let y = g.linear(x, w, Some(b));
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(1).unwrap().data(), &[4.0, 4.0]);
    }

    #[test]
    fn matmul_batched_grads_have_right_shapes() {
        let g = Graph::new();
        let mut rng = msd_tensor::rng::Rng::seed_from(0);
        let a = g.param(0, Tensor::randn(&[2, 3, 4], 1.0, &mut rng));
        let b = g.param(1, Tensor::randn(&[2, 4, 5], 1.0, &mut rng));
        let y = g.matmul(a, b);
        assert_eq!(g.shape_of(y), vec![2, 3, 5]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().shape(), &[2, 3, 4]);
        assert_eq!(grads.get(1).unwrap().shape(), &[2, 4, 5]);
    }

    #[test]
    fn matmul_2d_rhs_broadcast_grads() {
        let g = Graph::new();
        let mut rng = msd_tensor::rng::Rng::seed_from(1);
        let a = g.param(0, Tensor::randn(&[3, 2, 4], 1.0, &mut rng));
        let b = g.param(1, Tensor::randn(&[4, 2], 1.0, &mut rng));
        let y = g.matmul(a, b);
        assert_eq!(g.shape_of(y), vec![3, 2, 2]);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(0).unwrap().shape(), &[3, 2, 4]);
        assert_eq!(grads.get(1).unwrap().shape(), &[4, 2]);
    }
}
